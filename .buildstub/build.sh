#!/bin/bash
# Bare-rustc build + test driver for this container (no registry access).
# Usage:
#   .buildstub/build.sh            # build all libs
#   .buildstub/build.sh test       # build libs, then build & run every test target
#   .buildstub/build.sh test NAME  # run only test targets whose path matches NAME
set -e
cd "$(dirname "$0")/.."
ROOT=$PWD
OUT=$ROOT/.buildstub/out
mkdir -p "$OUT"
RUSTC="rustc --edition 2021 -O -L $OUT --out-dir $OUT"

lib() { # lib <crate_name> <src> [--extern a=...]
  local name=$1 src=$2; shift 2
  $RUSTC --crate-type lib --crate-name "$name" "$src" "$@"
}

# Stubs
lib crossbeam .buildstub/crossbeam/lib.rs
lib parking_lot .buildstub/parking_lot/lib.rs
lib criterion .buildstub/criterion/lib.rs

E_CORE="--extern gstm_core=$OUT/libgstm_core.rlib"
E_TL2="--extern gstm_tl2=$OUT/libgstm_tl2.rlib --extern crossbeam=$OUT/libcrossbeam.rlib --extern parking_lot=$OUT/libparking_lot.rlib"
E_STRUCTS="--extern gstm_structs=$OUT/libgstm_structs.rlib"
E_LIBTM="--extern gstm_libtm=$OUT/libgstm_libtm.rlib"
E_STAMP="--extern gstm_stamp=$OUT/libgstm_stamp.rlib"
E_SYNQ="--extern gstm_synquake=$OUT/libgstm_synquake.rlib"
E_HARNESS="--extern gstm_harness=$OUT/libgstm_harness.rlib"
E_SERVER="--extern gstm_server=$OUT/libgstm_server.rlib"
E_ALL="$E_CORE $E_TL2 $E_STRUCTS $E_LIBTM $E_STAMP $E_SYNQ $E_HARNESS $E_SERVER"

# Workspace libs, dependency order
lib gstm_core crates/core/src/lib.rs
lib gstm_tl2 crates/tl2/src/lib.rs $E_CORE --extern crossbeam=$OUT/libcrossbeam.rlib --extern parking_lot=$OUT/libparking_lot.rlib
lib gstm_structs crates/structs/src/lib.rs $E_CORE $E_TL2
lib gstm_libtm crates/libtm/src/lib.rs $E_CORE --extern parking_lot=$OUT/libparking_lot.rlib
lib gstm_stamp crates/stamp/src/lib.rs $E_CORE $E_TL2 $E_STRUCTS
lib gstm_synquake crates/synquake/src/lib.rs $E_CORE $E_LIBTM
lib gstm_harness crates/harness/src/lib.rs $E_CORE $E_TL2 $E_STRUCTS $E_LIBTM $E_STAMP $E_SYNQ
lib gstm_analyze crates/analyze/src/lib.rs $E_CORE
lib gstm_server crates/server/src/lib.rs $E_CORE $E_LIBTM $E_SYNQ

# Binaries
rustc --edition 2021 -O -L "$OUT" -o "$OUT/gstm-mck" --crate-name gstm_mck crates/mck/src/main.rs $E_CORE
rustc --edition 2021 -O -L "$OUT" -o "$OUT/gstm-server" --crate-name gstm_server_bin crates/server/src/main.rs $E_CORE $E_LIBTM $E_SYNQ $E_SERVER
rustc --edition 2021 -O -L "$OUT" -o "$OUT/gstm-loadgen" --crate-name gstm_loadgen crates/loadgen/src/main.rs $E_CORE $E_SERVER
rustc --edition 2021 -O -L "$OUT" -o "$OUT/gstm-analyze" --crate-name gstm_analyze_bin crates/analyze/src/main.rs $E_CORE --extern gstm_analyze=$OUT/libgstm_analyze.rlib

echo "libs OK"

run_test() { # run_test <crate_name> <src> <externs...>
  local name=$1 src=$2; shift 2
  local bin=$OUT/test_$name
  rustc --edition 2021 -O -L "$OUT" --test --crate-name "test_$name" -o "$bin" "$src" "$@"
  "$bin" --test-threads=4 -q
}

if [ "$1" = test ]; then
  FILTER=${2:-}
  match() { [ -z "$FILTER" ] || [[ $1 == *$FILTER* ]]; }
  match crates/core/src/lib.rs        && run_test gstm_core crates/core/src/lib.rs
  match crates/tl2/src/lib.rs         && run_test gstm_tl2 crates/tl2/src/lib.rs $E_CORE --extern crossbeam=$OUT/libcrossbeam.rlib --extern parking_lot=$OUT/libparking_lot.rlib
  match crates/structs/src/lib.rs     && run_test gstm_structs crates/structs/src/lib.rs $E_CORE $E_TL2
  match crates/libtm/src/lib.rs       && run_test gstm_libtm crates/libtm/src/lib.rs $E_CORE --extern parking_lot=$OUT/libparking_lot.rlib
  match crates/stamp/src/lib.rs       && run_test gstm_stamp crates/stamp/src/lib.rs $E_CORE $E_TL2 $E_STRUCTS
  match crates/synquake/src/lib.rs    && run_test gstm_synquake crates/synquake/src/lib.rs $E_CORE $E_LIBTM
  match crates/harness/src/lib.rs     && run_test gstm_harness crates/harness/src/lib.rs $E_ALL
  match crates/analyze/src/lib.rs     && run_test gstm_analyze crates/analyze/src/lib.rs $E_CORE
  match crates/server/src/lib.rs      && run_test gstm_server crates/server/src/lib.rs $E_CORE $E_LIBTM $E_SYNQ
  for t in tests/tests/*.rs; do
    base=$(basename "$t" .rs)
    match "$t" || continue
    run_test "$base" "$t" $E_ALL --extern gstm_analyze=$OUT/libgstm_analyze.rlib
  done
  echo "tests OK"
fi
