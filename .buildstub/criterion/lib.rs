//! Local build stub for `criterion`: enough surface to compile the bench
//! targets with bare rustc and produce usable ns/iter numbers (median of
//! timed batches). Cargo builds use the real crate; this exists only
//! because the container has no registry access.

use std::time::Instant;

pub struct Criterion {
    _priv: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _priv: () }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { best_ns: f64::INFINITY };
        f(&mut b);
        println!("{name:<48} {:>12.2} ns/iter", b.best_ns);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _c: self }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { best_ns: f64::INFINITY };
        f(&mut b);
        println!("{}/{name:<40} {:>12.2} ns/iter", self.name, b.best_ns);
        self
    }

    pub fn finish(self) {}
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    best_ns: f64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut f: R) {
        // Warm up, then take the best of 5 timed batches.
        for _ in 0..64 {
            std::hint::black_box(f());
        }
        let mut iters = 64u64;
        // Scale the batch until it runs >= 2ms so timer noise stays small.
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let el = t.elapsed();
            if el.as_millis() >= 2 || iters >= 1 << 24 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

impl Bencher {
    pub fn iter_custom<F: FnMut(u64) -> std::time::Duration>(&mut self, mut f: F) {
        let mut iters = 16u64;
        loop {
            let el = f(iters);
            if el.as_millis() >= 2 || iters >= 1 << 22 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..5 {
            let ns = f(iters).as_nanos() as f64 / iters as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
