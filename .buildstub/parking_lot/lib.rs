//! Local build stub for `parking_lot` (Mutex/RwLock over std, poison
//! transparent). Used only by the bare-rustc tier-1 build in this
//! container; cargo builds use the real crate.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(v: T) -> Self {
        Mutex(std::sync::Mutex::new(v))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(v: T) -> Self {
        RwLock(std::sync::RwLock::new(v))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
