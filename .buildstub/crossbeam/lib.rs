//! Local build stub for `crossbeam` (epoch surface only).
//!
//! The container has no registry access, so tier-1 tests build against
//! this conservative epoch-GC implementation: `pin()` bumps a global pin
//! count, `defer_destroy` queues garbage, and the queue drains only when
//! the pin count returns to zero (no active guard can still hold a
//! `Shared` to an unlinked node, so draining at zero pins is safe).
//! NEVER committed into the cargo build — `cargo` uses the real crate.

pub mod epoch {
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    static PINS: AtomicUsize = AtomicUsize::new(0);
    static GARBAGE: Mutex<Vec<Deferred>> = Mutex::new(Vec::new());

    struct Deferred {
        ptr: *mut (),
        drop_fn: unsafe fn(*mut ()),
    }
    unsafe impl Send for Deferred {}

    pub struct Guard {
        _priv: (),
    }

    pub fn pin() -> Guard {
        PINS.fetch_add(1, Ordering::SeqCst);
        Guard { _priv: () }
    }

    impl Guard {
        /// # Safety
        /// `ptr` must be unlinked: no subsequent `load` may return it.
        pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
            unsafe fn dropper<T>(p: *mut ()) {
                drop(Box::from_raw(p as *mut T));
            }
            if ptr.raw.is_null() {
                return;
            }
            GARBAGE.lock().unwrap().push(Deferred {
                ptr: ptr.raw as *mut (),
                drop_fn: dropper::<T>,
            });
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            if PINS.fetch_sub(1, Ordering::SeqCst) == 1 {
                let drained: Vec<Deferred> = {
                    let mut g = GARBAGE.lock().unwrap();
                    std::mem::take(&mut *g)
                };
                for d in drained {
                    unsafe { (d.drop_fn)(d.ptr) }
                }
            }
        }
    }

    pub struct Atomic<T> {
        ptr: std::sync::atomic::AtomicPtr<T>,
    }
    unsafe impl<T: Send + Sync> Send for Atomic<T> {}
    unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

    impl<T> Atomic<T> {
        pub fn new(v: T) -> Self {
            Atomic {
                ptr: std::sync::atomic::AtomicPtr::new(Box::into_raw(Box::new(v))),
            }
        }

        pub fn null() -> Self {
            Atomic {
                ptr: std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()),
            }
        }

        pub fn load<'g>(&self, ord: Ordering, _: &'g Guard) -> Shared<'g, T> {
            Shared {
                raw: self.ptr.load(ord),
                _m: PhantomData,
            }
        }

        pub fn swap<'g>(&self, new: Owned<T>, ord: Ordering, _: &'g Guard) -> Shared<'g, T> {
            Shared {
                raw: self.ptr.swap(new.into_raw(), ord),
                _m: PhantomData,
            }
        }

        /// # Safety
        /// Caller must have unique access (matches the real crate's contract).
        pub unsafe fn try_into_owned(self) -> Option<Owned<T>> {
            let p = self.ptr.into_inner();
            if p.is_null() {
                None
            } else {
                Some(Owned { raw: p })
            }
        }
    }

    pub struct Owned<T> {
        raw: *mut T,
    }

    impl<T> Owned<T> {
        pub fn new(v: T) -> Self {
            Owned {
                raw: Box::into_raw(Box::new(v)),
            }
        }

        fn into_raw(self) -> *mut T {
            let p = self.raw;
            std::mem::forget(self);
            p
        }
    }

    impl<T> Drop for Owned<T> {
        fn drop(&mut self) {
            unsafe { drop(Box::from_raw(self.raw)) }
        }
    }

    pub struct Shared<'g, T> {
        raw: *mut T,
        _m: PhantomData<&'g Guard>,
    }

    impl<'g, T> Clone for Shared<'g, T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'g, T> Copy for Shared<'g, T> {}

    impl<'g, T> Shared<'g, T> {
        /// # Safety
        /// The pointee must still be live (guard pinned since the load).
        pub unsafe fn deref(&self) -> &'g T {
            &*self.raw
        }

        pub fn is_null(&self) -> bool {
            self.raw.is_null()
        }
    }
}
