//! Transactional objects with visible readers.

use gstm_core::ThreadId;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Writer-lock states for [`ObjectInner::writer`].
const UNLOCKED: u32 = u32::MAX;

pub(crate) struct ObjectInner<T> {
    /// Committed version of the object; bumped by every writer commit.
    pub(crate) version: AtomicU64,
    /// Writer lock: [`UNLOCKED`] or the owner's thread id.
    writer: AtomicU32,
    /// Visible reader registry: thread ids currently holding a read
    /// dependency on this object.
    readers: Mutex<Vec<u16>>,
    /// The committed value. The RwLock makes snapshot reads safe; the STM
    /// protocol (versions + writer lock) provides transactional semantics
    /// on top.
    value: RwLock<T>,
}

impl<T: Clone> ObjectInner<T> {
    pub(crate) fn snapshot(&self) -> T {
        self.value.read().clone()
    }

    pub(crate) fn store(&self, v: T) {
        *self.value.write() = v;
    }
}

impl<T> ObjectInner<T> {
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    pub(crate) fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Try to take the writer lock.
    pub(crate) fn try_lock_writer(&self, me: ThreadId) -> bool {
        self.writer
            .compare_exchange(
                UNLOCKED,
                me.0 as u32,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Current writer, if locked.
    pub(crate) fn writer(&self) -> Option<ThreadId> {
        match self.writer.load(Ordering::Acquire) {
            UNLOCKED => None,
            id => Some(ThreadId(id as u16)),
        }
    }

    pub(crate) fn unlock_writer(&self, me: ThreadId) {
        let prev = self.writer.swap(UNLOCKED, Ordering::AcqRel);
        debug_assert_eq!(prev, me.0 as u32, "unlocking a lock we do not hold");
        let _ = me;
    }

    /// Register `me` as a visible reader. Idempotent.
    pub(crate) fn add_reader(&self, me: ThreadId) {
        let mut rs = self.readers.lock();
        if !rs.contains(&me.0) {
            rs.push(me.0);
        }
    }

    /// Deregister `me`.
    pub(crate) fn remove_reader(&self, me: ThreadId) {
        let mut rs = self.readers.lock();
        rs.retain(|&r| r != me.0);
    }

    /// Snapshot the readers other than `me`.
    pub(crate) fn other_readers(&self, me: ThreadId) -> Vec<ThreadId> {
        self.readers
            .lock()
            .iter()
            .filter(|&&r| r != me.0)
            .map(|&r| ThreadId(r))
            .collect()
    }

    pub(crate) fn has_other_readers(&self, me: ThreadId) -> bool {
        self.readers.lock().iter().any(|&r| r != me.0)
    }

    pub(crate) fn key(&self) -> usize {
        self as *const Self as *const () as usize
    }
}

/// An object-granularity transactional location for [`crate::LibTm`].
///
/// Cloning clones the handle; both handles denote the same object.
pub struct TObject<T> {
    pub(crate) inner: Arc<ObjectInner<T>>,
}

impl<T> Clone for TObject<T> {
    fn clone(&self) -> Self {
        TObject {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TObject<T> {
    /// A new object at version 0.
    pub fn new(value: T) -> Self {
        TObject {
            inner: Arc::new(ObjectInner {
                version: AtomicU64::new(0),
                writer: AtomicU32::new(UNLOCKED),
                readers: Mutex::new(Vec::new()),
                value: RwLock::new(value),
            }),
        }
    }

    /// Read the committed value outside any transaction (setup and
    /// post-run verification).
    pub fn load_quiesced(&self) -> T {
        self.inner.snapshot()
    }

    /// Whether two handles denote the same object.
    pub fn same_object(&self, other: &TObject<T>) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_lock_is_exclusive() {
        let o = TObject::new(0u32);
        assert!(o.inner.try_lock_writer(ThreadId(1)));
        assert!(!o.inner.try_lock_writer(ThreadId(2)));
        assert_eq!(o.inner.writer(), Some(ThreadId(1)));
        o.inner.unlock_writer(ThreadId(1));
        assert_eq!(o.inner.writer(), None);
        assert!(o.inner.try_lock_writer(ThreadId(2)));
    }

    #[test]
    fn reader_registry_tracks_membership() {
        let o = TObject::new(());
        o.inner.add_reader(ThreadId(1));
        o.inner.add_reader(ThreadId(1)); // idempotent
        o.inner.add_reader(ThreadId(2));
        assert_eq!(o.inner.other_readers(ThreadId(1)), vec![ThreadId(2)]);
        assert!(o.inner.has_other_readers(ThreadId(3)));
        o.inner.remove_reader(ThreadId(2));
        assert!(!o.inner.has_other_readers(ThreadId(1)));
    }

    #[test]
    fn version_bumps_and_value_store() {
        let o = TObject::new(10u64);
        assert_eq!(o.inner.version(), 0);
        o.inner.bump_version();
        assert_eq!(o.inner.version(), 1);
        o.inner.store(42);
        assert_eq!(o.load_quiesced(), 42);
    }
}
