//! The LibTM runtime: detection/resolution configuration, doomed-flag
//! table for abort-readers, and the retry loop wired to the guidance hook.

use crate::txn::{LtAbort, LtResult, LtTxn};
use crate::MAX_THREADS;
use gstm_core::contention::ContentionTracker;
use gstm_core::events::{AbortCause, ConflictSite};
use gstm_core::faultinject::{spin_for, FaultPlan, FaultSite};
use gstm_core::telemetry::{Telemetry, TraceKind};
use gstm_core::{GuidanceHook, NoopHook, Pair, ThreadId, TxnId};
use gstm_core::ThreadStats;
use std::cell::Cell;
use std::sync::atomic::{AtomicU16, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Conflict-detection mode (the four points on LibTM's pessimistic ↔
/// optimistic spectrum).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DetectionMode {
    /// Read and write locks acquired before access.
    FullyPessimistic,
    /// Reads lock (block writers via the registry); writes lock at commit.
    PessimisticRead,
    /// Reads are optimistic (version-validated); writes lock at encounter.
    PessimisticWrite,
    /// Reads are optimistic; write locks are acquired at commit — the mode
    /// the SynQuake experiments use.
    FullyOptimistic,
}

/// Conflict-resolution policy applied by committing writers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resolution {
    /// Spin until the object's visible readers drain.
    WaitForReaders,
    /// Doom the readers and proceed — the SynQuake experiments' policy.
    AbortReaders,
}

/// Tunables of one LibTM instance.
#[derive(Clone, Copy, Debug)]
pub struct LibTmConfig {
    /// Conflict-detection mode.
    pub detection: DetectionMode,
    /// Conflict-resolution policy.
    pub resolution: Resolution,
    /// Bounded spin for lock acquisition / reader draining.
    pub commit_spin: u32,
    /// Interleave injection, as in gstm-tl2's `StmConfig::yield_prob_log2`.
    pub yield_prob_log2: Option<u32>,
}

impl Default for LibTmConfig {
    fn default() -> Self {
        LibTmConfig {
            detection: DetectionMode::FullyOptimistic,
            resolution: Resolution::AbortReaders,
            commit_spin: 64,
            yield_prob_log2: None,
        }
    }
}

/// One LibTM instance.
pub struct LibTm {
    pub(crate) config: LibTmConfig,
    pub(crate) hook: Arc<dyn GuidanceHook>,
    /// Doomed flags: slot t holds 0 (clear) or dooming-writer id + 1.
    doomed: Vec<AtomicU32>,
    /// The contended object key behind each doom, written (Relaxed)
    /// before the flag's Release store. Best-effort under concurrent
    /// dooms of one victim — the partition counters stay exact; only
    /// which address gets charged can race, like the flag itself.
    doomed_addr: Vec<AtomicUsize>,
    next_thread: AtomicU16,
    total_commits: AtomicU64,
    total_aborts: AtomicU64,
    /// Optional runtime telemetry; `None` keeps the hot path to a single
    /// branch per instrumentation site.
    pub(crate) telemetry: Option<Arc<Telemetry>>,
    /// Optional deterministic fault plan (chaos mode): the retry loop
    /// probes the libtm forced-abort and commit-delay sites.
    pub(crate) faults: Option<Arc<FaultPlan>>,
    /// Optional conflict-provenance tracker fed on every abort; `None`
    /// keeps the abort path at one predictable branch, like `telemetry`.
    pub(crate) contention: Option<Arc<ContentionTracker>>,
}

thread_local! {
    /// xorshift state for the interleave-injection coin flip.
    static YIELD_RNG: Cell<u64> = const { Cell::new(0x243f_6a88_85a3_08d3) };
}

impl LibTm {
    /// A plain instance (no recording, no gating).
    pub fn new(config: LibTmConfig) -> Arc<Self> {
        Self::with_hook(Arc::new(NoopHook), config)
    }

    /// An instance reporting to a guidance hook.
    pub fn with_hook(hook: Arc<dyn GuidanceHook>, config: LibTmConfig) -> Arc<Self> {
        Self::with_telemetry(hook, config, None)
    }

    /// An instance reporting to a guidance hook and, optionally, a
    /// [`Telemetry`] collector (counters, latency histograms, tracing).
    pub fn with_telemetry(
        hook: Arc<dyn GuidanceHook>,
        config: LibTmConfig,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Arc<Self> {
        Self::with_robustness(hook, config, telemetry, None)
    }

    /// [`LibTm::with_telemetry`] plus a deterministic fault plan: each
    /// attempt probes the `libtm-abort` site (forced abort through the
    /// ordinary rollback path, surfaced as [`AbortCause::Explicit`]) and
    /// the `libtm-commit-delay` site (a bounded spin before commit).
    pub fn with_robustness(
        hook: Arc<dyn GuidanceHook>,
        config: LibTmConfig,
        telemetry: Option<Arc<Telemetry>>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Arc<Self> {
        Self::with_observability(hook, config, telemetry, faults, None)
    }

    /// [`LibTm::with_robustness`] plus an optional conflict-provenance
    /// tracker: every abort is recorded with its cause, owner, and
    /// conflicting object key.
    pub fn with_observability(
        hook: Arc<dyn GuidanceHook>,
        config: LibTmConfig,
        telemetry: Option<Arc<Telemetry>>,
        faults: Option<Arc<FaultPlan>>,
        contention: Option<Arc<ContentionTracker>>,
    ) -> Arc<Self> {
        Arc::new(LibTm {
            config,
            hook,
            doomed: (0..MAX_THREADS).map(|_| AtomicU32::new(0)).collect(),
            doomed_addr: (0..MAX_THREADS).map(|_| AtomicUsize::new(0)).collect(),
            next_thread: AtomicU16::new(0),
            total_commits: AtomicU64::new(0),
            total_aborts: AtomicU64::new(0),
            telemetry,
            faults,
            contention,
        })
    }

    /// The attached conflict-provenance tracker, if any.
    pub fn contention(&self) -> Option<&Arc<ContentionTracker>> {
        self.contention.as_ref()
    }

    /// The attached telemetry collector, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Register the calling thread with the next sequential id.
    pub fn register(self: &Arc<Self>) -> LtThreadCtx {
        let id = ThreadId(self.next_thread.fetch_add(1, Ordering::Relaxed));
        self.register_as(id)
    }

    /// Register under an explicit id (stable ids across runs, as the
    /// model requires).
    pub fn register_as(self: &Arc<Self>, id: ThreadId) -> LtThreadCtx {
        assert!(
            (id.index()) < MAX_THREADS,
            "thread id {} exceeds MAX_THREADS {}",
            id.0,
            MAX_THREADS
        );
        LtThreadCtx {
            tm: Arc::clone(self),
            thread: id,
            stats: ThreadStats::new(),
        }
    }

    /// This instance's configuration.
    pub fn config(&self) -> &LibTmConfig {
        &self.config
    }

    /// The installed guidance hook.
    pub fn hook(&self) -> &Arc<dyn GuidanceHook> {
        &self.hook
    }

    /// Total commits across all threads.
    pub fn total_commits(&self) -> u64 {
        self.total_commits.load(Ordering::Relaxed)
    }

    /// Total aborts across all threads.
    pub fn total_aborts(&self) -> u64 {
        self.total_aborts.load(Ordering::Relaxed)
    }

    /// Mark `victim` as doomed by `writer` over the object keyed `addr`
    /// (abort-readers resolution). The address lands before the flag's
    /// Release store, so a victim that observes the flag also observes
    /// the address.
    pub(crate) fn doom(&self, victim: ThreadId, writer: ThreadId, addr: usize) {
        self.doomed_addr[victim.index()].store(addr, Ordering::Relaxed);
        self.doomed[victim.index()].store(writer.0 as u32 + 1, Ordering::Release);
    }

    /// Consume `me`'s doomed flag, returning the dooming writer and the
    /// contended object key if set.
    pub(crate) fn take_doom(&self, me: ThreadId) -> Option<(ThreadId, usize)> {
        match self.doomed[me.index()].swap(0, Ordering::AcqRel) {
            0 => None,
            w => Some((
                ThreadId((w - 1) as u16),
                self.doomed_addr[me.index()].load(Ordering::Relaxed),
            )),
        }
    }

    /// Begin-of-transaction interleave injection: yield with p = 1/2 when
    /// injection is enabled.
    #[inline]
    pub(crate) fn maybe_yield_begin(&self) {
        if self.config.yield_prob_log2.is_some() {
            let flip = YIELD_RNG.with(|c| {
                let mut x = c.get();
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                c.set(x);
                x
            });
            if flip & 1 == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Interleave-injection coin flip (see `gstm-tl2`'s equivalent).
    #[inline]
    pub(crate) fn maybe_yield(&self) {
        if let Some(k) = self.config.yield_prob_log2 {
            let flip = YIELD_RNG.with(|c| {
                let mut x = c.get();
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                c.set(x);
                x
            });
            if flip & ((1u64 << k) - 1) == 0 {
                std::thread::yield_now();
            }
        }
    }
}

/// A worker thread's handle onto a [`LibTm`] instance.
pub struct LtThreadCtx {
    tm: Arc<LibTm>,
    thread: ThreadId,
    stats: ThreadStats,
}

impl LtThreadCtx {
    /// This thread's id.
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// The owning instance.
    pub fn tm(&self) -> &Arc<LibTm> {
        &self.tm
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ThreadStats {
        &self.stats
    }

    /// Take the statistics, resetting the counters.
    pub fn take_stats(&mut self) -> ThreadStats {
        std::mem::take(&mut self.stats)
    }

    /// Run `f` transactionally at site `txid`, retrying until commit.
    pub fn atomically<R>(
        &mut self,
        txid: TxnId,
        mut f: impl FnMut(&mut LtTxn) -> LtResult<R>,
    ) -> R {
        let me = Pair::new(txid, self.thread);
        let mut retries: u32 = 0;
        // One Arc clone per transaction (free when telemetry is off);
        // keeps the instrumentation borrows disjoint from `&mut self`.
        let tel = self.tm.telemetry.clone();
        // Timestamp taken when an attempt aborts; the gap to the next
        // attempt's start is the abort-to-retry backoff histogram sample.
        let mut backoff_from: Option<u64> = None;
        loop {
            if let Some(t) = &tel {
                let t0 = t.now_ns();
                if let Some(prev) = backoff_from.take() {
                    t.record_backoff(me, t0.saturating_sub(prev));
                }
                self.tm.hook.gate(me);
                let wait_ns = t.now_ns().saturating_sub(t0);
                t.record_gate_wait(me, wait_ns);
                t.trace(me, TraceKind::Begin);
                // Trace a gate slice only when the wait is visible at
                // trace resolution (ungated passes are tens of ns).
                if wait_ns >= 1_000 {
                    t.trace(me, TraceKind::GateWait { wait_ns });
                }
            } else {
                self.tm.hook.gate(me);
            }
            // Per-transaction interleave injection (see gstm-tl2's
            // equivalent): sub-timeslice transactions would otherwise
            // commit in long same-thread bursts on an oversubscribed host.
            self.tm.maybe_yield_begin();
            // A doom aimed at a previous attempt must not kill this one.
            let _ = self.tm.take_doom(self.thread);
            let mut tx = LtTxn::new(&self.tm, me);
            let body = f(&mut tx);
            let mut commit_ns = 0u64;
            let mut writes = 0u32;
            let outcome = match body {
                Err(a) => Err(a),
                // Chaos sites between a successful body and the commit —
                // see gstm-tl2's equivalent. The forced abort rides the
                // ordinary rollback path (locks released, readers
                // deregistered by the transaction's drop).
                Ok(_)
                    if self.tm.faults.as_ref().is_some_and(|f| {
                        f.should_fire(FaultSite::LibtmAbort, self.thread.index()).is_some()
                    }) =>
                {
                    Err(LtAbort {
                        cause: AbortCause::Explicit,
                        site: ConflictSite::UNKNOWN,
                    })
                }
                Ok(r) => {
                    if let Some(f) = &self.tm.faults {
                        if let Some(fault) =
                            f.should_fire(FaultSite::LibtmCommitDelay, self.thread.index())
                        {
                            spin_for(fault.spins);
                        }
                    }
                    if let Some(t) = &tel {
                        writes = tx.write_set_size() as u32;
                        let c0 = t.now_ns();
                        let res = tx.commit();
                        commit_ns = t.now_ns().saturating_sub(c0);
                        res.map(|()| r)
                    } else {
                        tx.commit().map(|()| r)
                    }
                }
            };
            match outcome {
                Ok(r) => {
                    self.tm.hook.on_commit(me);
                    self.tm.total_commits.fetch_add(1, Ordering::Relaxed);
                    self.stats.record_commit(retries);
                    if let Some(t) = &tel {
                        t.record_commit(me, commit_ns);
                        t.trace(me, TraceKind::Commit { commit_ns, writes });
                    }
                    return r;
                }
                Err(abort) => {
                    self.tm.hook.on_abort(me, abort.cause);
                    self.tm.total_aborts.fetch_add(1, Ordering::Relaxed);
                    self.stats.record_abort(abort.cause);
                    if let Some(ct) = &self.tm.contention {
                        ct.record(self.thread, abort.cause, abort.site);
                    }
                    if let Some(t) = &tel {
                        t.record_abort(me, abort.cause);
                        t.trace(
                            me,
                            TraceKind::Abort { cause: abort.cause, addr: abort.site.raw() },
                        );
                        backoff_from = Some(t.now_ns());
                    }
                    retries = retries.saturating_add(1);
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::TObject;

    fn all_modes() -> Vec<(DetectionMode, Resolution)> {
        let detections = [
            DetectionMode::FullyPessimistic,
            DetectionMode::PessimisticRead,
            DetectionMode::PessimisticWrite,
            DetectionMode::FullyOptimistic,
        ];
        let resolutions = [Resolution::WaitForReaders, Resolution::AbortReaders];
        detections
            .into_iter()
            .flat_map(|d| resolutions.into_iter().map(move |r| (d, r)))
            .collect()
    }

    #[test]
    fn counter_is_atomic_in_every_mode() {
        for (detection, resolution) in all_modes() {
            let tm = LibTm::new(LibTmConfig {
                detection,
                resolution,
                yield_prob_log2: Some(2),
                ..LibTmConfig::default()
            });
            let v = TObject::new(0u64);
            std::thread::scope(|s| {
                for t in 0..4u16 {
                    let tm = Arc::clone(&tm);
                    let v = v.clone();
                    s.spawn(move || {
                        let mut ctx = tm.register_as(ThreadId(t));
                        for _ in 0..100 {
                            ctx.atomically(TxnId(0), |tx| tx.modify(&v, |x| x + 1));
                        }
                    });
                }
            });
            assert_eq!(
                v.load_quiesced(),
                400,
                "lost updates under {detection:?}/{resolution:?}"
            );
        }
    }

    #[test]
    fn transfers_preserve_total_in_every_mode() {
        for (detection, resolution) in all_modes() {
            let tm = LibTm::new(LibTmConfig {
                detection,
                resolution,
                yield_prob_log2: Some(2),
                ..LibTmConfig::default()
            });
            let accounts: Vec<TObject<i64>> = (0..6).map(|_| TObject::new(100)).collect();
            std::thread::scope(|s| {
                for t in 0..3u16 {
                    let tm = Arc::clone(&tm);
                    let accounts = accounts.clone();
                    s.spawn(move || {
                        let mut ctx = tm.register_as(ThreadId(t));
                        for i in 0..100usize {
                            let from = (t as usize + i) % accounts.len();
                            let to = (t as usize + i * 5 + 1) % accounts.len();
                            if from == to {
                                continue;
                            }
                            let (a, b) = (accounts[from].clone(), accounts[to].clone());
                            ctx.atomically(TxnId(0), |tx| {
                                let av = tx.read(&a)?;
                                let bv = tx.read(&b)?;
                                tx.write(&a, av - 1)?;
                                tx.write(&b, bv + 1)?;
                                Ok(())
                            });
                        }
                    });
                }
            });
            let total: i64 = accounts.iter().map(|a| a.load_quiesced()).sum();
            assert_eq!(total, 600, "imbalance under {detection:?}/{resolution:?}");
        }
    }

    #[test]
    fn doomed_flag_round_trip() {
        let tm = LibTm::new(LibTmConfig::default());
        tm.doom(ThreadId(3), ThreadId(1), 0xbeef);
        assert_eq!(tm.take_doom(ThreadId(3)), Some((ThreadId(1), 0xbeef)));
        assert_eq!(tm.take_doom(ThreadId(3)), None, "take clears");
        assert_eq!(tm.take_doom(ThreadId(0)), None);
    }

    #[test]
    fn abort_readers_dooms_a_live_reader() {
        use std::sync::atomic::AtomicBool;
        // One thread sits in a long transaction reading `x`; a writer
        // commits to `x`; the reader's next operation must abort with
        // AbortedByWriter.
        let tm = LibTm::new(LibTmConfig::default());
        let x = TObject::new(0u32);
        let saw_doom = Arc::new(AtomicBool::new(false));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|s| {
            let tm1 = Arc::clone(&tm);
            let x1 = x.clone();
            let b1 = Arc::clone(&barrier);
            let saw = Arc::clone(&saw_doom);
            s.spawn(move || {
                let mut ctx = tm1.register_as(ThreadId(0));
                let mut first = true;
                ctx.atomically(TxnId(0), |tx| {
                    let _ = tx.read(&x1)?;
                    if first {
                        first = false;
                        b1.wait(); // writer goes now
                        b1.wait(); // writer committed
                    }
                    // This op observes the doom on the first attempt.
                    match tx.read(&x1) {
                        Err(a) => {
                            if matches!(
                                a.cause,
                                gstm_core::AbortCause::AbortedByWriter { .. }
                            ) {
                                saw.store(true, Ordering::SeqCst);
                            }
                            Err(a)
                        }
                        Ok(_) => Ok(()),
                    }
                });
            });
            let tm2 = Arc::clone(&tm);
            let x2 = x.clone();
            s.spawn(move || {
                barrier.wait();
                let mut ctx = tm2.register_as(ThreadId(1));
                ctx.atomically(TxnId(1), |tx| tx.modify(&x2, |v| v + 1));
                barrier.wait();
            });
        });
        assert!(saw_doom.load(Ordering::SeqCst), "reader was doomed");
        assert_eq!(x.load_quiesced(), 1);
    }

    #[test]
    fn registration_ids_are_bounded() {
        let tm = LibTm::new(LibTmConfig::default());
        assert_eq!(tm.register().thread_id(), ThreadId(0));
        assert_eq!(tm.register().thread_id(), ThreadId(1));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_THREADS")]
    fn oversized_thread_id_is_rejected() {
        let tm = LibTm::new(LibTmConfig::default());
        let _ = tm.register_as(ThreadId(MAX_THREADS as u16));
    }
}
