//! LibTM transactions: per-mode read/write protocols and the commit
//! protocol with reader-conflict resolution.

use crate::object::{ObjectInner, TObject};
use crate::runtime::{DetectionMode, LibTm, Resolution};
use gstm_core::{AbortCause, AddrSet, ConflictSite, Pair, ThreadId};
use std::any::Any;
use std::sync::Arc;

/// Rollback signal for a LibTM transaction attempt.
#[derive(Clone, Copy, Debug)]
pub struct LtAbort {
    /// What killed the attempt.
    pub cause: AbortCause,
    /// Where the conflict was detected (unknown for explicit retries).
    pub site: ConflictSite,
}

/// Result of a LibTM transactional operation.
pub type LtResult<T> = Result<T, LtAbort>;

/// Type-erased view of an object for read/write sets.
pub(crate) trait LtTarget: Send + Sync {
    fn version(&self) -> u64;
    fn bump_version(&self);
    fn try_lock_writer(&self, me: ThreadId) -> bool;
    fn writer(&self) -> Option<ThreadId>;
    fn unlock_writer(&self, me: ThreadId);
    fn add_reader(&self, me: ThreadId);
    fn remove_reader(&self, me: ThreadId);
    fn other_readers(&self, me: ThreadId) -> Vec<ThreadId>;
    fn has_other_readers(&self, me: ThreadId) -> bool;
    fn key(&self) -> usize;
}

impl<T: Send + Sync> LtTarget for ObjectInner<T> {
    fn version(&self) -> u64 {
        ObjectInner::version(self)
    }
    fn bump_version(&self) {
        ObjectInner::bump_version(self)
    }
    fn try_lock_writer(&self, me: ThreadId) -> bool {
        ObjectInner::try_lock_writer(self, me)
    }
    fn writer(&self) -> Option<ThreadId> {
        ObjectInner::writer(self)
    }
    fn unlock_writer(&self, me: ThreadId) {
        ObjectInner::unlock_writer(self, me)
    }
    fn add_reader(&self, me: ThreadId) {
        ObjectInner::add_reader(self, me)
    }
    fn remove_reader(&self, me: ThreadId) {
        ObjectInner::remove_reader(self, me)
    }
    fn other_readers(&self, me: ThreadId) -> Vec<ThreadId> {
        ObjectInner::other_readers(self, me)
    }
    fn has_other_readers(&self, me: ThreadId) -> bool {
        ObjectInner::has_other_readers(self, me)
    }
    fn key(&self) -> usize {
        ObjectInner::key(self)
    }
}

/// A buffered write awaiting publication.
trait LtWriteEntry: Send {
    fn target_arc(&self) -> Arc<dyn LtTarget>;
    fn key(&self) -> usize;
    fn publish(&self);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

struct TypedWrite<T> {
    obj: TObject<T>,
    value: T,
}

impl<T: Clone + Send + Sync + 'static> LtWriteEntry for TypedWrite<T> {
    fn target_arc(&self) -> Arc<dyn LtTarget> {
        self.obj.inner.clone()
    }
    fn key(&self) -> usize {
        self.obj.inner.key()
    }
    fn publish(&self) {
        self.obj.inner.store(self.value.clone());
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One in-flight LibTM transaction attempt.
///
/// Dropping an attempt (committed or aborted) releases every
/// encounter-time writer lock it still holds and deregisters its visible
/// reads, so an aborted attempt can never wedge other threads.
pub struct LtTxn<'tm> {
    tm: &'tm LibTm,
    me: Pair,
    /// Optimistic-read validation entries: `(object, observed version)`.
    read_set: Vec<(Arc<dyn LtTarget>, u64)>,
    /// Objects where this attempt registered as a visible reader.
    registered: Vec<Arc<dyn LtTarget>>,
    /// Keys of `registered`, for O(1) dedup on every read (a linear scan
    /// here made reader registration quadratic in read-set size).
    registered_keys: AddrSet,
    /// Buffered writes.
    write_set: Vec<Box<dyn LtWriteEntry>>,
    /// Writer locks acquired at encounter time (pessimistic-write modes).
    held_write: Vec<Arc<dyn LtTarget>>,
}

impl Drop for LtTxn<'_> {
    fn drop(&mut self) {
        let me = self.me.thread;
        for h in self.held_write.drain(..) {
            h.unlock_writer(me);
        }
        for r in self.registered.drain(..) {
            r.remove_reader(me);
        }
    }
}

impl<'tm> LtTxn<'tm> {
    pub(crate) fn new(tm: &'tm LibTm, me: Pair) -> Self {
        LtTxn {
            tm,
            me,
            read_set: Vec::new(),
            registered: Vec::new(),
            registered_keys: AddrSet::new(),
            write_set: Vec::new(),
            held_write: Vec::new(),
        }
    }

    /// The `<txn,thread>` identity of this attempt.
    pub fn who(&self) -> Pair {
        self.me
    }

    /// Number of distinct objects buffered in the write set (telemetry
    /// reports this per committed attempt).
    pub fn write_set_size(&self) -> usize {
        self.write_set.len()
    }

    /// Number of distinct objects tracked in the read set.
    pub fn read_set_size(&self) -> usize {
        self.read_set.len()
    }

    /// Explicitly abort and retry.
    pub fn retry(&self) -> LtAbort {
        LtAbort {
            cause: AbortCause::Explicit,
            site: ConflictSite::UNKNOWN,
        }
    }

    fn check_doomed(&self) -> LtResult<()> {
        if let Some((writer, addr)) = self.tm.take_doom(self.me.thread) {
            return Err(LtAbort {
                cause: AbortCause::AbortedByWriter {
                    writer: Some(writer),
                },
                site: ConflictSite::at(addr),
            });
        }
        Ok(())
    }

    fn write_index(&self, key: usize) -> Option<usize> {
        self.write_set.iter().position(|e| e.key() == key)
    }

    fn register_reader(&mut self, inner: &Arc<dyn LtTarget>) {
        if self.registered_keys.insert(inner.key()) {
            inner.add_reader(self.me.thread);
            self.registered.push(Arc::clone(inner));
        }
    }

    /// Transactional read under the configured detection mode.
    pub fn read<T: Clone + Send + Sync + 'static>(&mut self, obj: &TObject<T>) -> LtResult<T> {
        self.check_doomed()?;
        self.tm.maybe_yield();
        if let Some(i) = self.write_index(obj.inner.key()) {
            // Invariant, not a recoverable error: keys are allocation
            // addresses kept alive by the entry's TObject clone, so a
            // same-key entry is the same allocation and the same T.
            let e = self.write_set[i]
                .as_any()
                .downcast_ref::<TypedWrite<T>>()
                .expect("write-set entry type mismatch");
            return Ok(e.value.clone());
        }
        let target: Arc<dyn LtTarget> = obj.inner.clone();
        let me = self.me.thread;
        // A held writer lock means a commit is in flight: back off.
        if let Some(owner) = target.writer() {
            if owner != me {
                return Err(LtAbort {
                    cause: AbortCause::ReadLocked { owner: Some(owner) },
                    site: ConflictSite::at(target.key()),
                });
            }
        }
        // Visible-reader registration — the reader side of both
        // resolution policies.
        self.register_reader(&target);
        match self.tm.config.detection {
            DetectionMode::FullyOptimistic | DetectionMode::PessimisticWrite => {
                // Version-validated read.
                let v1 = target.version();
                let value = obj.inner.snapshot();
                if target.version() != v1 || target.writer().is_some_and(|w| w != me) {
                    return Err(LtAbort {
                        cause: AbortCause::ReadVersion,
                        site: ConflictSite::at(target.key()),
                    });
                }
                self.read_set.push((target, v1));
                Ok(value)
            }
            DetectionMode::FullyPessimistic | DetectionMode::PessimisticRead => {
                // Registration blocks writers (they wait for us or doom
                // us); no version record needed.
                Ok(obj.inner.snapshot())
            }
        }
    }

    /// Transactional write under the configured detection mode.
    pub fn write<T: Clone + Send + Sync + 'static>(
        &mut self,
        obj: &TObject<T>,
        value: T,
    ) -> LtResult<()> {
        self.check_doomed()?;
        self.tm.maybe_yield();
        let key = obj.inner.key();
        if let Some(i) = self.write_index(key) {
            // Same invariant as the read-own-write path above.
            let e = self.write_set[i]
                .as_any_mut()
                .downcast_mut::<TypedWrite<T>>()
                .expect("write-set entry type mismatch");
            e.value = value;
            return Ok(());
        }
        // Encounter-time locking in pessimistic-write modes.
        if matches!(
            self.tm.config.detection,
            DetectionMode::FullyPessimistic | DetectionMode::PessimisticWrite
        ) {
            let target: Arc<dyn LtTarget> = obj.inner.clone();
            if !self.held_write.iter().any(|h| h.key() == key) {
                self.acquire_writer(&target)?;
                self.held_write.push(target);
            }
        }
        self.write_set.push(Box::new(TypedWrite {
            obj: obj.clone(),
            value,
        }));
        Ok(())
    }

    /// Read-modify-write convenience.
    pub fn modify<T: Clone + Send + Sync + 'static>(
        &mut self,
        obj: &TObject<T>,
        f: impl FnOnce(T) -> T,
    ) -> LtResult<()> {
        let v = self.read(obj)?;
        self.write(obj, f(v))
    }

    fn acquire_writer(&self, target: &Arc<dyn LtTarget>) -> LtResult<()> {
        let me = self.me.thread;
        for _ in 0..self.tm.config.commit_spin {
            if target.try_lock_writer(me) {
                return Ok(());
            }
            std::thread::yield_now();
        }
        Err(LtAbort {
            cause: AbortCause::CommitLockBusy {
                owner: target.writer(),
            },
            site: ConflictSite::at(target.key()),
        })
    }

    /// Resolve this committing writer against the visible readers of one
    /// write target, per the configured policy.
    fn resolve_readers(&self, target: &dyn LtTarget) -> LtResult<()> {
        let me = self.me.thread;
        match self.tm.config.resolution {
            Resolution::AbortReaders => {
                for reader in target.other_readers(me) {
                    self.tm.doom(reader, me, target.key());
                }
                Ok(())
            }
            Resolution::WaitForReaders => {
                for _ in 0..self.tm.config.commit_spin {
                    if !target.has_other_readers(me) {
                        return Ok(());
                    }
                    std::thread::yield_now();
                }
                // Could not drain readers: give way (avoids
                // writer/reader deadlock).
                Err(LtAbort {
                    cause: AbortCause::CommitLockBusy { owner: None },
                    site: ConflictSite::at(target.key()),
                })
            }
        }
    }

    /// Commit: take commit-time writer locks (optimistic-write modes),
    /// validate optimistic reads, resolve visible readers, publish, and
    /// release everything.
    pub(crate) fn commit(mut self) -> Result<(), LtAbort> {
        let me = self.me.thread;
        let mut acquired: Vec<Arc<dyn LtTarget>> = Vec::new();
        let result = (|| -> Result<(), LtAbort> {
            self.check_doomed()?;
            if self.write_set.is_empty() {
                return Ok(());
            }
            // Commit-time locking (the "fully optimistic" side).
            if matches!(
                self.tm.config.detection,
                DetectionMode::FullyOptimistic | DetectionMode::PessimisticRead
            ) {
                self.write_set.sort_by_key(|e| e.key());
                for entry in &self.write_set {
                    let target = entry.target_arc();
                    self.acquire_writer(&target)?;
                    acquired.push(target);
                }
            }
            // Validate optimistic reads: versions unchanged and no foreign
            // writer in flight.
            for (t, v) in &self.read_set {
                if t.version() != *v || t.writer().is_some_and(|w| w != me) {
                    return Err(LtAbort {
                        cause: AbortCause::Validation,
                        site: ConflictSite::at(t.key()),
                    });
                }
            }
            self.check_doomed()?;
            // Resolve readers of each written object, then publish.
            for entry in &self.write_set {
                self.resolve_readers(&*entry.target_arc())?;
            }
            for entry in &self.write_set {
                entry.publish();
                entry.target_arc().bump_version();
            }
            Ok(())
        })();
        // Release commit-time locks; Drop releases encounter-time locks
        // and reader registrations.
        for t in acquired {
            t.unlock_writer(me);
        }
        result
    }
}
