//! # gstm-libtm — a LibTM-style object STM
//!
//! Reproduction of the STM the SynQuake experiments run on. The original
//! LibTM (Lupei et al., PPoPP'10) is closed source; the paper describes
//! its design surface precisely, which is what this crate implements:
//!
//! * **object-granularity** consistency (per-object locks and versions,
//!   eliminating false sharing),
//! * **four conflict-detection modes** ranging from fully pessimistic
//!   (read and write locks acquired before access) to fully optimistic
//!   (reads proceed without locks, write locks taken at commit),
//! * **two conflict-resolution policies** — *wait-for-readers* and
//!   *abort-readers* — applied by committing writers against the visible
//!   reader registry of each object.
//!
//! The paper's experiments (and ours) use **fully-optimistic detection
//! with abort-readers resolution**.
//!
//! Like `gstm-tl2`, every transaction reports begin/abort/commit to a
//! [`gstm_core::GuidanceHook`], so profiling and model-guided execution
//! work identically on both STMs.
//!
//! ## Example
//!
//! ```
//! use gstm_libtm::{LibTm, LibTmConfig, TObject};
//! use gstm_core::TxnId;
//!
//! let tm = LibTm::new(LibTmConfig::default()); // fully-optimistic + abort-readers
//! let hp = TObject::new(100i32);
//! let mut ctx = tm.register();
//! ctx.atomically(TxnId(0), |tx| tx.modify(&hp, |h| h - 25));
//! assert_eq!(hp.load_quiesced(), 75);
//! ```

pub mod object;
pub mod runtime;
pub mod txn;

pub use object::TObject;
pub use runtime::{DetectionMode, LibTm, LibTmConfig, LtThreadCtx, Resolution};
pub use txn::{LtAbort, LtResult, LtTxn};

/// Maximum worker threads per [`LibTm`] instance (size of the doomed-flag
/// table used by abort-readers resolution).
pub const MAX_THREADS: usize = 64;
