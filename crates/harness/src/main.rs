//! `gstm-repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! gstm-repro <command> [options]
//!
//! Commands:
//!   table1 table2 table3 table4 table5
//!   fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!   stamp      (tables I, III, IV + figures 4-10)
//!   synquake   (table V + figures 11, 12)
//!   all        (everything)
//!
//! Options:
//!   --threads A,B       thread counts            (default: 8,16)
//!   --runs N            measurement runs/mode    (default: 8)
//!   --profile-runs N    model-training runs      (default: 6)
//!   --bench a,b,...     restrict STAMP benchmarks
//!   --size s            small|medium|large test input (default: small)
//!   --train-size s      profiling input           (default: small)
//!   --players N         SynQuake players          (default: 192)
//!   --frames N          SynQuake test frames      (default: 96)
//!   --tfactor F         guidance threshold knob   (default: 4)
//!   --seed X            input seed
//!   --out DIR           also write CSVs to DIR    (default: results)
//!   --no-csv            don't write CSVs
//!   --telemetry[=DIR]   write runtime telemetry (Prometheus snapshot,
//!                       JSONL + chrome://tracing trace) for the guided
//!                       phase of each STAMP experiment (default DIR: the
//!                       --out directory)
//!   --adaptive[=W]      regenerate the guided model online: commits feed
//!                       a W-state sliding window (default 4096) and a
//!                       background manager rebuilds + hot-swaps the model
//!                       when the drift ladder reaches Drifting/Stale
//!   --profile-threads N profile at N threads instead of the measurement
//!                       width (deliberately mismatching trains a stale
//!                       model — the adaptation demo scenario)
//!   --chaos SEED[:PLAN] arm a deterministic fault plan for the guided
//!                       phase. PLAN is `+`-separated site/alias tokens,
//!                       each optionally `@permille[xbudget]`; aliases:
//!                       forced-aborts commit-delays gate-stalls storms
//!                       corrupt-model guardian-panic all (default:
//!                       forced-aborts). The same SEED:PLAN replays a
//!                       bit-identical fault schedule.
//!   --breaker           gate every guided run through its own guidance
//!                       circuit breaker: trips to fail-open unguided
//!                       execution on released-rate / off-model /
//!                       starvation bounds, re-admits via half-open
//!                       probes after cooldown
//!   --clock MODE        commit clock for the measurement phases:
//!                       `global` (TL2's single CAS word, the default) or
//!                       `sharded` (GV5-style: each committer stamps
//!                       `(epoch << 6) | shard` on its own padded shard
//!                       word; validation compares against the lazy
//!                       aggregate bound). Profiling always runs global.
//!   --pin POLICY        thread placement for the measurement phases:
//!                       `none` (default, OS scheduler), `compact`
//!                       (thread t -> core t%cores), `scatter` (spread
//!                       across cores), or `model` (cluster threads by
//!                       TSA conflict affinity: conflicting threads share
//!                       a clock shard and adjacent cores)
//!   --affinity SRC      signal behind --pin=model: `tsa` (default,
//!                       profiled-automaton affinity) or `measured`
//!                       (victim/owner abort attribution recorded by the
//!                       contention tracker during profiling)
//!   --serve ADDR        live ops plane: serve /metrics (Prometheus),
//!                       /health (SLO verdict, 503 in Incident), /vars
//!                       and /incidents from a std-only HTTP/1.1 thread
//!                       on ADDR (e.g. 127.0.0.1:9464) while the
//!                       campaign runs
//!   --slo SPEC          SLO watchdog rules over telemetry windows,
//!                       e.g. abort-ratio=30,released=5,warn=1,
//!                       incident=3,clear=3,window-ms=200; entering
//!                       Incident trips a flight-recorder dump
//!                       (incident<N>.json) that gstm-analyze ingests
//!   --duration SECS     keep the ops endpoint up until SECS after
//!                       process start (the campaign's final /metrics
//!                       body is frozen at completion, so late scrapes
//!                       equal the exported ops.prom byte-for-byte)
//! ```

use gstm_core::ops::{self, OpsPlane, OpsRoller, OpsServer, SloSpec};
use gstm_core::{AffinitySource, FaultPlan, GuidanceConfig, PinPolicy, Telemetry};
use gstm_tl2::ClockMode;
use gstm_harness::experiment::{
    run_experiment_chaos, BenchExperiment, ExperimentConfig, Robustness,
};
use gstm_harness::game::{run_game_experiment, GameExperiment, GameExperimentConfig};
use gstm_harness::report::{self, Table};
use gstm_harness::{figures, tables};
use gstm_stamp::{all_benchmarks, InputSize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Default input preset per benchmark, chosen so one run is long enough
/// for abort-driven timing effects to rise above host scheduling noise on
/// this reproduction's hardware (see EXPERIMENTS.md).
fn default_size(bench: &str) -> InputSize {
    match bench {
        "kmeans" => InputSize::Large,
        "genome" | "intruder" | "labyrinth" | "ssca2" => InputSize::Medium,
        _ => InputSize::Small,
    }
}

struct Options {
    command: String,
    threads: Vec<u16>,
    runs: usize,
    profile_runs: usize,
    benches: Option<Vec<String>>,
    size: Option<InputSize>,
    train_size: Option<InputSize>,
    players: u32,
    frames: u64,
    tfactor: f64,
    seed: u64,
    repeat: usize,
    out: Option<PathBuf>,
    /// `None` = telemetry off; `Some(None)` = on, write next to the CSVs;
    /// `Some(Some(dir))` = on, write into `dir`.
    telemetry: Option<Option<PathBuf>>,
    /// `Some(window)` = online model regeneration with that sliding
    /// window; `None` = fixed model.
    adaptive: Option<usize>,
    /// Profile-phase thread count override.
    profile_threads: Option<u16>,
    /// `--chaos=SEED[:PLAN]` spec for the deterministic fault plan armed
    /// during the guided phase; `None` = no injection.
    chaos: Option<String>,
    /// Gate every guided run through its own circuit breaker.
    breaker: bool,
    /// Commit-clock implementation (`--clock=global|sharded`).
    clock: ClockMode,
    /// Thread-placement policy (`--pin=none|compact|scatter|model`).
    pin: PinPolicy,
    /// Affinity signal for `--pin=model` (`--affinity=tsa|measured`).
    affinity: AffinitySource,
    /// `--serve=ADDR`: bind the live ops endpoint there.
    serve: Option<String>,
    /// `--slo=SPEC`: watchdog rules; also turns the ops plane on.
    slo: Option<String>,
    /// `--duration=SECS`: hold the ops endpoint up this long.
    duration: Option<u64>,
}

fn parse_size(s: &str) -> InputSize {
    match s {
        "small" => InputSize::Small,
        "medium" => InputSize::Medium,
        "large" => InputSize::Large,
        _ => {
            eprintln!("unknown size {s:?} (want small|medium|large)");
            std::process::exit(2);
        }
    }
}

fn parse_clock(s: &str) -> ClockMode {
    ClockMode::parse(s).unwrap_or_else(|e| {
        eprintln!("bad --clock: {e}");
        std::process::exit(2);
    })
}

fn parse_affinity(s: &str) -> AffinitySource {
    AffinitySource::parse(s).unwrap_or_else(|e| {
        eprintln!("bad --affinity: {e}");
        std::process::exit(2);
    })
}

fn parse_pin(s: &str) -> PinPolicy {
    PinPolicy::parse(s).unwrap_or_else(|e| {
        eprintln!("bad --pin: {e}");
        std::process::exit(2);
    })
}

/// Parse a flag's numeric value; malformed input is a usage error (exit
/// 2 with the offending flag named), never a panic.
fn parse_flag<T: std::str::FromStr>(flag: &str, val: &str) -> T {
    val.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {val:?}");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        command: String::new(),
        threads: vec![8, 16],
        runs: 20,
        profile_runs: 12,
        benches: None,
        size: None,
        train_size: None,
        players: 192,
        frames: 96,
        tfactor: 4.0,
        seed: 0x5eed_cafe,
        repeat: 3,
        out: Some(PathBuf::from("results")),
        telemetry: None,
        adaptive: None,
        profile_threads: None,
        chaos: None,
        breaker: false,
        clock: ClockMode::Global,
        pin: PinPolicy::None,
        affinity: AffinitySource::Tsa,
        serve: None,
        slo: None,
        duration: None,
    };
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                opts.threads = next(&mut args, "--threads")
                    .split(',')
                    .map(|s| parse_flag("--threads", s))
                    .collect();
            }
            "--runs" => opts.runs = parse_flag("--runs", &next(&mut args, "--runs")),
            "--profile-runs" => {
                opts.profile_runs = parse_flag("--profile-runs", &next(&mut args, "--profile-runs"))
            }
            "--bench" => {
                opts.benches = Some(
                    next(&mut args, "--bench")
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--size" => opts.size = Some(parse_size(&next(&mut args, "--size"))),
            "--train-size" => {
                opts.train_size = Some(parse_size(&next(&mut args, "--train-size")))
            }
            "--players" => {
                opts.players = parse_flag("--players", &next(&mut args, "--players"))
            }
            "--frames" => opts.frames = parse_flag("--frames", &next(&mut args, "--frames")),
            "--tfactor" => {
                opts.tfactor = parse_flag("--tfactor", &next(&mut args, "--tfactor"))
            }
            "--seed" => opts.seed = parse_flag("--seed", &next(&mut args, "--seed")),
            "--repeat" => {
                opts.repeat = parse_flag("--repeat", &next(&mut args, "--repeat"))
            }
            "--out" => opts.out = Some(PathBuf::from(next(&mut args, "--out"))),
            "--no-csv" => opts.out = None,
            "--telemetry" => opts.telemetry = Some(None),
            s if s.starts_with("--telemetry=") => {
                opts.telemetry = Some(Some(PathBuf::from(&s["--telemetry=".len()..])));
            }
            "--adaptive" => opts.adaptive = Some(4096),
            s if s.starts_with("--adaptive=") => {
                opts.adaptive =
                    Some(parse_flag("--adaptive", &s["--adaptive=".len()..]));
            }
            "--chaos" => opts.chaos = Some(next(&mut args, "--chaos")),
            s if s.starts_with("--chaos=") => {
                opts.chaos = Some(s["--chaos=".len()..].to_string());
            }
            "--breaker" => opts.breaker = true,
            "--clock" => opts.clock = parse_clock(&next(&mut args, "--clock")),
            s if s.starts_with("--clock=") => {
                opts.clock = parse_clock(&s["--clock=".len()..]);
            }
            "--pin" => opts.pin = parse_pin(&next(&mut args, "--pin")),
            s if s.starts_with("--pin=") => {
                opts.pin = parse_pin(&s["--pin=".len()..]);
            }
            "--affinity" => opts.affinity = parse_affinity(&next(&mut args, "--affinity")),
            s if s.starts_with("--affinity=") => {
                opts.affinity = parse_affinity(&s["--affinity=".len()..]);
            }
            "--serve" => opts.serve = Some(next(&mut args, "--serve")),
            s if s.starts_with("--serve=") => {
                opts.serve = Some(s["--serve=".len()..].to_string());
            }
            "--slo" => opts.slo = Some(next(&mut args, "--slo")),
            s if s.starts_with("--slo=") => {
                opts.slo = Some(s["--slo=".len()..].to_string());
            }
            "--duration" => {
                opts.duration =
                    Some(parse_flag("--duration", &next(&mut args, "--duration")))
            }
            s if s.starts_with("--duration=") => {
                opts.duration =
                    Some(parse_flag("--duration", &s["--duration=".len()..]));
            }
            "--profile-threads" => {
                opts.profile_threads =
                    Some(parse_flag("--profile-threads", &next(&mut args, "--profile-threads")))
            }
            "help" | "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            cmd if opts.command.is_empty() && !cmd.starts_with('-') => {
                opts.command = cmd.to_string();
            }
            other => {
                eprintln!("unknown argument {other:?}; try `gstm-repro help`");
                std::process::exit(2);
            }
        }
    }
    if opts.command.is_empty() {
        opts.command = "all".into();
    }
    opts
}

fn print_help() {
    // The module doc is the manual; print its code block.
    println!(
        "gstm-repro — regenerate the paper's tables and figures\n\n\
         commands: table1 table2 table3 table4 table5 fig4 fig5 fig6 fig7\n\
         \x20         fig8 fig9 fig10 fig11 fig12 stamp synquake summary repeated inspect all\n\n\
         options: --threads A,B --runs N --profile-runs N --bench a,b\n\
         \x20        --size s --train-size s --players N --frames N\n\
         \x20        --tfactor F --seed X --out DIR --no-csv --telemetry[=DIR]\n\
         \x20        --adaptive[=W] --profile-threads N --chaos SEED[:PLAN] --breaker\n\
         \x20        --clock global|sharded --pin none|compact|scatter|model --affinity tsa|measured\n\
         \x20        --serve ADDR --slo SPEC --duration SECS"
    );
}

/// Lazily computed experiment results shared by the commands of one
/// invocation.
struct Campaign {
    opts: Options,
    /// Chaos plumbing parsed once from `--chaos`/`--breaker`; one shared
    /// fault plan so injection counters accumulate across the campaign.
    robust: Robustness,
    /// Live ops plane (`--serve`/`--slo`/`--duration`); every per-run
    /// telemetry collector is attached here so live scrapes see one
    /// monotone cumulative view across the whole campaign.
    ops: Option<Arc<OpsPlane>>,
    stamp: HashMap<u16, Vec<BenchExperiment>>,
    games: Vec<GameExperiment>,
}

impl Campaign {
    fn new(opts: Options) -> Self {
        let faults = opts.chaos.as_deref().map(|spec| {
            match FaultPlan::parse_spec(spec) {
                Ok(plan) => Arc::new(plan),
                Err(e) => {
                    eprintln!("bad --chaos spec: {e}");
                    std::process::exit(2);
                }
            }
        });
        let robust = Robustness {
            faults,
            breaker: opts.breaker,
        };
        Campaign {
            opts,
            robust,
            ops: None,
            stamp: HashMap::new(),
            games: Vec::new(),
        }
    }

    fn stamp_for(&mut self, threads: u16) -> &[BenchExperiment] {
        if !self.stamp.contains_key(&threads) {
            let mut exps = Vec::new();
            for bench in all_benchmarks() {
                if let Some(filter) = &self.opts.benches {
                    if !filter.iter().any(|f| f == bench.name()) {
                        continue;
                    }
                }
                let size = self
                    .opts
                    .size
                    .unwrap_or_else(|| default_size(bench.name()));
                let cfg = ExperimentConfig {
                    threads,
                    profile_runs: self.opts.profile_runs,
                    measure_runs: self.opts.runs,
                    train_size: self.opts.train_size.unwrap_or(size),
                    test_size: size,
                    yield_k: Some(2),
                    guidance: GuidanceConfig::with_tfactor(self.opts.tfactor),
                    seed: self.opts.seed,
                    adaptive: self.opts.adaptive,
                    profile_threads: self.opts.profile_threads,
                    clock: self.opts.clock,
                    pin: self.opts.pin,
                    affinity: self.opts.affinity,
                };
                eprintln!("[gstm-repro] running {} @ {threads} threads ...", bench.name());
                // Collectors exist when artifacts were requested
                // (--telemetry) or the live ops plane is on
                // (--serve/--slo); the ops plane only needs counters, so
                // without --telemetry the tracer rings are sized to zero.
                let want_artifacts = self.opts.telemetry.is_some();
                let exp = if want_artifacts || self.ops.is_some() {
                    let dir = self
                        .opts
                        .telemetry
                        .clone()
                        .flatten()
                        .or_else(|| self.opts.out.clone())
                        .unwrap_or_else(|| PathBuf::from("results"));
                    // One collector per guided run, so repetition r+1
                    // does not overwrite repetition r's artifacts and
                    // gstm-analyze sees every run. The ring must hold a
                    // whole repetition: gstm-analyze's exact Tseq and
                    // abort-tail cross-checks degrade to "skipped" the
                    // moment one event is overwritten (default capacity
                    // wraps on the reference workloads' ~50k
                    // events/thread).
                    const TRACE_CAP_PER_THREAD: usize = 1 << 17;
                    let trace_cap = if want_artifacts { TRACE_CAP_PER_THREAD } else { 0 };
                    let tels: Vec<Arc<Telemetry>> = (0..cfg.measure_runs)
                        .map(|_| Arc::new(Telemetry::with_trace_capacity(trace_cap)))
                        .collect();
                    let ops = self.ops.clone();
                    let e = run_experiment_chaos(
                        &*bench,
                        &cfg,
                        |r| {
                            let tel = tels.get(r).cloned();
                            // The outgoing collector folds into the ops
                            // plane's cumulative base, so live /metrics
                            // totals stay monotone across repetitions.
                            if let (Some(ops), Some(tel)) = (ops.as_ref(), tel.as_ref()) {
                                ops.attach(tel);
                            }
                            tel
                        },
                        &self.robust,
                    );
                    // Each run's snapshot must agree with the harness's
                    // own accounting for that run; a divergence means an
                    // instrumentation hole, so say so loudly.
                    // Panicked guided reps leave their collectors unused,
                    // so only the first `per_run_hists.len()` telemetry
                    // slots correspond to recorded runs (failed reps are
                    // compacted out by the experiment driver).
                    for (r, tel) in
                        tels.iter().take(e.guided_m.per_run_hists.len()).enumerate()
                    {
                        let snap = tel.snapshot();
                        let hists = &e.guided_m.per_run_hists[r];
                        let hc: u64 = hists.iter().map(|h| h.total_commits()).sum();
                        let ha: u64 = hists.iter().map(|h| h.total_aborts()).sum();
                        if snap.commits != hc || snap.aborts_total() != ha {
                            eprintln!(
                                "[gstm-repro] WARNING: run {r} telemetry totals diverge \
                                 from harness counts (commits {}/{hc}, aborts {}/{ha})",
                                snap.commits,
                                snap.aborts_total(),
                            );
                        }
                        if !want_artifacts {
                            continue;
                        }
                        let stem =
                            format!("{}_{}t_run{r}_telemetry", bench.name(), threads);
                        match report::save_telemetry(&dir, &stem, tel) {
                            Ok(paths) => {
                                for p in paths {
                                    eprintln!("[gstm-repro] wrote {}", p.display());
                                }
                            }
                            Err(err) => eprintln!(
                                "[gstm-repro] failed to write telemetry {stem}: {err}"
                            ),
                        }
                    }
                    if want_artifacts {
                        match report::save_run_metrics(&dir, &e) {
                            Ok(paths) => {
                                for p in paths {
                                    eprintln!("[gstm-repro] wrote {}", p.display());
                                }
                            }
                            Err(err) => {
                                eprintln!("[gstm-repro] failed to write run metrics: {err}")
                            }
                        }
                    }
                    // The drift tracker is shared across runs, so the
                    // last run's snapshot carries the full-campaign
                    // model-drift report.
                    if let Some(d) =
                        tels.last().and_then(|t| t.snapshot().model_drift)
                    {
                        eprint!("[gstm-repro] {}", d.render());
                    }
                    e
                } else {
                    run_experiment_chaos(&*bench, &cfg, |_| None, &self.robust)
                };
                if self.opts.adaptive.is_some() {
                    eprintln!(
                        "[gstm-repro] {} @ {threads}t: {} model swap(s) during guided runs",
                        bench.name(),
                        exp.model_swaps
                    );
                }
                if self.robust.faults.is_some() || self.robust.breaker {
                    let failed =
                        exp.default_m.failed.len() + exp.guided_m.failed.len();
                    eprintln!(
                        "[gstm-repro] {} @ {threads}t degradation: {} breaker trip(s), \
                         {} re-close(s), model rejected: {}, failed rep(s): {}{}",
                        bench.name(),
                        exp.breaker_trips,
                        exp.breaker_recloses,
                        exp.model_rejected,
                        failed,
                        self.robust
                            .faults
                            .as_ref()
                            .map(|f| format!(", {} fault(s) injected so far", f.injected_total()))
                            .unwrap_or_default(),
                    );
                }
                exps.push(exp);
            }
            self.stamp.insert(threads, exps);
        }
        &self.stamp[&threads]
    }

    fn stamp_pair(&mut self) -> (Vec<BenchExperiment>, Vec<BenchExperiment>) {
        let ts = self.opts.threads.clone();
        let t8 = ts.first().copied().unwrap_or(8);
        let t16 = ts.get(1).copied().unwrap_or(t8);
        let a = self.stamp_for(t8).to_vec();
        let b = if t16 == t8 {
            a.clone()
        } else {
            self.stamp_for(t16).to_vec()
        };
        (a, b)
    }

    fn games(&mut self) -> &[GameExperiment] {
        if self.games.is_empty() {
            for &threads in &self.opts.threads.clone() {
                eprintln!("[gstm-repro] running SynQuake @ {threads} threads ...");
                let cfg = GameExperimentConfig {
                    threads,
                    players: self.opts.players,
                    train_frames: self.opts.frames / 2,
                    test_frames: self.opts.frames,
                    yield_k: Some(2),
                    guidance: GuidanceConfig::with_tfactor(self.opts.tfactor),
                    seed: self.opts.seed,
                };
                self.games.push(run_game_experiment(&cfg));
            }
        }
        &self.games
    }

    fn emit(&self, name: &str, table: &Table) {
        println!("{}", table.render());
        if let Some(dir) = &self.opts.out {
            if let Err(e) = table.save_csv(dir, name) {
                eprintln!("[gstm-repro] failed to write {name}.csv: {e}");
            }
        }
    }
}

/// Running pieces of the live ops plane: the shared state, its timer
/// driver, the HTTP service thread, and where to write end-of-run
/// artifacts.
struct OpsRig {
    plane: Arc<OpsPlane>,
    roller: Option<OpsRoller>,
    server: Option<OpsServer>,
    started: std::time::Instant,
    duration: Option<u64>,
    dir: PathBuf,
}

/// Build the ops plane when any of `--serve`/`--slo`/`--duration` is
/// present: parse the SLO spec, bind the endpoint, start the window
/// roller on the spec's cadence.
fn build_ops(opts: &Options) -> Option<OpsRig> {
    if opts.serve.is_none() && opts.slo.is_none() && opts.duration.is_none() {
        return None;
    }
    let spec = match opts.slo.as_deref() {
        Some(s) => SloSpec::parse(s).unwrap_or_else(|e| {
            eprintln!("bad --slo: {e}");
            std::process::exit(2);
        }),
        None => SloSpec::default(),
    };
    let cadence = std::time::Duration::from_millis(spec.window_ms);
    let plane = Arc::new(OpsPlane::new(spec));
    let server = opts.serve.as_deref().map(|addr| {
        match ops::serve(Arc::clone(&plane), addr) {
            Ok(s) => {
                eprintln!(
                    "[gstm-repro] ops endpoint on http://{} \
                     (/metrics /health /vars /incidents)",
                    s.addr
                );
                s
            }
            Err(e) => {
                eprintln!("failed to bind --serve={addr}: {e}");
                std::process::exit(2);
            }
        }
    });
    let roller = ops::start_roller(Arc::clone(&plane), cadence);
    let dir = opts
        .telemetry
        .clone()
        .flatten()
        .or_else(|| opts.out.clone())
        .unwrap_or_else(|| PathBuf::from("results"));
    Some(OpsRig {
        plane,
        roller: Some(roller),
        server,
        started: std::time::Instant::now(),
        duration: opts.duration,
        dir,
    })
}

/// Campaign's over: stop the roller, close the final window, freeze the
/// exposition, export `ops.prom` + `incident<N>.json`, self-check the
/// window partition, then hold the endpoint up until `--duration`
/// elapses (serving the frozen body, so a late scrape equals the
/// exported file exactly).
fn finalize_ops(mut rig: OpsRig) {
    if let Some(r) = rig.roller.take() {
        r.stop();
    }
    let frozen = rig.plane.freeze();
    match report::save_ops(&rig.dir, &rig.plane, &frozen) {
        Ok(paths) => {
            for p in paths {
                eprintln!("[gstm-repro] wrote {}", p.display());
            }
        }
        Err(e) => eprintln!("[gstm-repro] failed to write ops artifacts: {e}"),
    }
    if let Err(e) = rig.plane.check_partition() {
        eprintln!("[gstm-repro] WARNING: {e}");
    }
    eprintln!(
        "[gstm-repro] ops: SLO {} after {} window(s), {} breached, {} incident(s)",
        rig.plane.state().label(),
        rig.plane.windows_closed(),
        rig.plane.breached_windows(),
        rig.plane.incidents().len(),
    );
    if let (Some(server), Some(secs)) = (rig.server.as_ref(), rig.duration) {
        let deadline = rig.started + std::time::Duration::from_secs(secs);
        let now = std::time::Instant::now();
        if now < deadline {
            eprintln!(
                "[gstm-repro] holding ops endpoint http://{} until --duration={secs}s elapses ...",
                server.addr
            );
            std::thread::sleep(deadline - now);
        }
    }
    if let Some(s) = rig.server.take() {
        s.stop();
    }
}

fn main() {
    let opts = parse_args();
    let command = opts.command.clone();
    let threads = opts.threads.clone();
    let t_lo = threads.first().copied().unwrap_or(8);
    let t_hi = threads.get(1).copied().unwrap_or(t_lo);
    let rig = build_ops(&opts);
    let mut c = Campaign::new(opts);
    c.ops = rig.as_ref().map(|r| Arc::clone(&r.plane));

    let run_stamp_cmd = |c: &mut Campaign, which: &str| {
        let (e8, e16) = c.stamp_pair();
        match which {
            "summary" => {
                let mut seen = std::collections::HashSet::new();
                let all: Vec<&gstm_harness::experiment::BenchExperiment> = e8
                    .iter()
                    .chain(e16.iter())
                    .filter(|e| seen.insert((e.name, e.threads)))
                    .collect();
                c.emit("summary", &tables::summary(&all));
            }
            "table1" => c.emit("table1", &tables::table1(&e8, &e16)),
            "table3" => c.emit("table3", &tables::table3(&e8, &e16)),
            "table4" => c.emit("table4", &tables::table4(&e8, &e16)),
            "fig4" => c.emit("fig4", &figures::fig_variance(&e8, t_lo)),
            "fig5" => c.emit("fig5", &figures::fig_abort_tail(&e8, t_lo)),
            "fig6" => c.emit("fig6", &figures::fig_variance(&e16, t_hi)),
            "fig7" => c.emit("fig7", &figures::fig_abort_tail(&e16, t_hi)),
            "fig8" => c.emit("fig8", &figures::fig8_ssca2(&e8, &e16)),
            "fig9" => c.emit("fig9", &figures::fig9_nondeterminism(&e8, &e16)),
            "fig10" => c.emit("fig10", &figures::fig10_slowdown(&e8, &e16)),
            "stamp" => {
                c.emit("table1", &tables::table1(&e8, &e16));
                c.emit("table3", &tables::table3(&e8, &e16));
                c.emit("table4", &tables::table4(&e8, &e16));
                c.emit("fig4", &figures::fig_variance(&e8, t_lo));
                c.emit("fig5", &figures::fig_abort_tail(&e8, t_lo));
                c.emit("fig6", &figures::fig_variance(&e16, t_hi));
                c.emit("fig7", &figures::fig_abort_tail(&e16, t_hi));
                c.emit("fig8", &figures::fig8_ssca2(&e8, &e16));
                c.emit("fig9", &figures::fig9_nondeterminism(&e8, &e16));
                c.emit("fig10", &figures::fig10_slowdown(&e8, &e16));
            }
            _ => unreachable!(),
        }
    };
    let run_game_cmd = |c: &mut Campaign, which: &str| {
        let games = c.games().to_vec();
        match which {
            "table5" => c.emit("table5", &tables::table5(&games)),
            "fig11" => c.emit("fig11", &figures::fig_synquake(&games, true)),
            "fig12" => c.emit("fig12", &figures::fig_synquake(&games, false)),
            "synquake" => {
                c.emit("table5", &tables::table5(&games));
                c.emit("fig11", &figures::fig_synquake(&games, true));
                c.emit("fig12", &figures::fig_synquake(&games, false));
            }
            _ => unreachable!(),
        }
    };

    match command.as_str() {
        "inspect" => {
            // Train a model for one benchmark (default kmeans, override
            // with --bench) and print its hottest states, Figure 3-style.
            let name = c
                .opts
                .benches
                .as_ref()
                .and_then(|b| b.first().cloned())
                .unwrap_or_else(|| "kmeans".into());
            let bench = gstm_stamp::by_name(&name).unwrap_or_else(|| {
                eprintln!("unknown benchmark {name:?}");
                std::process::exit(2);
            });
            let threads = c.opts.threads.first().copied().unwrap_or(8);
            let size = c.opts.size.unwrap_or_else(|| default_size(&name));
            let cfg = ExperimentConfig {
                threads,
                profile_runs: c.opts.profile_runs,
                measure_runs: 0,
                train_size: c.opts.train_size.unwrap_or(size),
                test_size: size,
                yield_k: Some(2),
                guidance: GuidanceConfig::with_tfactor(c.opts.tfactor),
                seed: c.opts.seed,
                adaptive: c.opts.adaptive,
                profile_threads: c.opts.profile_threads,
                clock: c.opts.clock,
                pin: c.opts.pin,
                affinity: c.opts.affinity,
            };
            eprintln!("[gstm-repro] training {name} @ {threads} threads ...");
            let model = gstm_harness::experiment::train_model(&*bench, &cfg);
            println!("{}", figures::fig3_excerpt(&model, 6));
        }
        "repeated" => {
            // Mean ± sd over full pipeline repeats — the statistically
            // honest view on a noisy host. Uses --repeat (default 3).
            let mut aggs = Vec::new();
            for &threads in &c.opts.threads.clone() {
                for bench in all_benchmarks() {
                    if let Some(filter) = &c.opts.benches {
                        if !filter.iter().any(|f| f == bench.name()) {
                            continue;
                        }
                    }
                    let size = c
                        .opts
                        .size
                        .unwrap_or_else(|| default_size(bench.name()));
                    let cfg = ExperimentConfig {
                        threads,
                        profile_runs: c.opts.profile_runs,
                        measure_runs: c.opts.runs,
                        train_size: c.opts.train_size.unwrap_or(size),
                        test_size: size,
                        yield_k: Some(2),
                        guidance: GuidanceConfig::with_tfactor(c.opts.tfactor),
                        seed: c.opts.seed,
                        adaptive: c.opts.adaptive,
                        profile_threads: c.opts.profile_threads,
                        clock: c.opts.clock,
                        pin: c.opts.pin,
                        affinity: c.opts.affinity,
                    };
                    eprintln!(
                        "[gstm-repro] repeating {} @ {threads} threads x{} ...",
                        bench.name(),
                        c.opts.repeat
                    );
                    aggs.push(gstm_harness::experiment::run_repeated(
                        &*bench,
                        &cfg,
                        c.opts.repeat,
                    ));
                }
            }
            c.emit("repeated", &tables::repeated_summary(&aggs));
        }
        "table2" => c.emit("table2", &tables::table2()),
        "table1" | "table3" | "table4" | "fig4" | "fig5" | "fig6" | "fig7" | "fig8" | "fig9"
        | "fig10" | "stamp" | "summary" => run_stamp_cmd(&mut c, &command),
        "table5" | "fig11" | "fig12" | "synquake" => run_game_cmd(&mut c, &command),
        "all" => {
            c.emit("table2", &tables::table2());
            run_stamp_cmd(&mut c, "stamp");
            run_game_cmd(&mut c, "synquake");
        }
        other => {
            eprintln!("unknown command {other:?}");
            print_help();
            std::process::exit(2);
        }
    }

    if let Some(rig) = rig {
        finalize_ops(rig);
    }
}
