//! # gstm-harness — experiment harness for the paper's evaluation
//!
//! This crate is the Rust equivalent of the paper artifact's `exec.sh`:
//! it orchestrates the profile → model → analyze → guided/default
//! pipeline over the STAMP suite ([`experiment`]) and the SynQuake game
//! ([`game`]), and renders every table and figure of the paper
//! ([`tables`], [`figures`]). The `gstm-repro` binary exposes one
//! subcommand per table/figure; see `gstm-repro help`.

pub mod experiment;
pub mod figures;
pub mod game;
pub mod report;
pub mod tables;

pub use experiment::{run_experiment, BenchExperiment, ExperimentConfig, ModeMeasurement};
pub use game::{run_game_experiment, GameExperiment, GameExperimentConfig};
