//! Renderers for the paper's tables.

use crate::experiment::BenchExperiment;
use crate::game::GameExperiment;
use crate::report::{f1, Table};

/// Pair up experiments by benchmark name across the two thread counts,
/// preserving the 8-thread ordering.
fn paired<'a>(
    eight: &'a [BenchExperiment],
    sixteen: &'a [BenchExperiment],
) -> Vec<(&'a BenchExperiment, Option<&'a BenchExperiment>)> {
    eight
        .iter()
        .map(|e| (e, sixteen.iter().find(|s| s.name == e.name)))
        .collect()
}

/// Table I: model analyzer guidance metric percentage (lower is better).
pub fn table1(eight: &[BenchExperiment], sixteen: &[BenchExperiment]) -> Table {
    let mut t = Table::new(
        "Table I: model analyzer guidance metric % (lower is better)",
        &["Application", "8 threads", "16 threads"],
    );
    for (e, s) in paired(eight, sixteen) {
        t.row(vec![
            e.name.to_string(),
            f1(e.analyzer.guidance_metric_pct),
            s.map(|s| f1(s.analyzer.guidance_metric_pct))
                .unwrap_or_default(),
        ]);
    }
    t
}

/// Table II: configuration of the machine used for the experiments.
/// (The paper lists its two testbeds; we report the actual host.)
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table II: configuration of the machine used for experiments",
        &["Feature", "value"],
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get().to_string())
        .unwrap_or_else(|_| "unknown".into());
    t.row(vec!["Core count".into(), cores]);
    t.row(vec!["OS".into(), std::env::consts::OS.to_string()]);
    t.row(vec!["Arch".into(), std::env::consts::ARCH.to_string()]);
    t.row(vec![
        "Concurrency substitute".into(),
        "oversubscribed threads + yield injection (see DESIGN.md)".into(),
    ]);
    t
}

/// Table III: number of states in each application's model.
pub fn table3(eight: &[BenchExperiment], sixteen: &[BenchExperiment]) -> Table {
    let kb = |bytes: usize| format!("{:.1} KB", bytes as f64 / 1024.0);
    let mut t = Table::new(
        "Table III: number of states in the model (+ encoded size)",
        &["Application", "8 threads", "size", "16 threads", "size"],
    );
    for (e, s) in paired(eight, sixteen) {
        t.row(vec![
            e.name.to_string(),
            e.model_states.to_string(),
            kb(e.model_bytes),
            s.map(|s| s.model_states.to_string()).unwrap_or_default(),
            s.map(|s| kb(s.model_bytes)).unwrap_or_default(),
        ]);
    }
    t
}

/// Table IV: average % improvement in the abort-tail metric across all
/// threads.
pub fn table4(eight: &[BenchExperiment], sixteen: &[BenchExperiment]) -> Table {
    let mut t = Table::new(
        "Table IV: average % improvement in the tail distribution of aborts",
        &["Application", "8 threads", "16 threads"],
    );
    for (e, s) in paired(eight, sixteen) {
        t.row(vec![
            e.name.to_string(),
            f1(e.tail_improvement_pct()),
            s.map(|s| f1(s.tail_improvement_pct())).unwrap_or_default(),
        ]);
    }
    t
}

/// Table V: SynQuake guidance metric (lower is better).
pub fn table5(games: &[GameExperiment]) -> Table {
    let mut t = Table::new(
        "Table V: SynQuake guidance metric % (lower is better)",
        &["Application", "threads", "metric"],
    );
    for g in games {
        t.row(vec![
            "SynQuake".into(),
            g.threads.to_string(),
            f1(g.analyzer.guidance_metric_pct),
        ]);
    }
    t
}

/// A compact cross-metric summary: one row per benchmark × thread count
/// with every derived quantity the paper reports (not a paper table; a
/// convenience for eyeballing a whole campaign).
pub fn summary(exps: &[&BenchExperiment]) -> Table {
    use crate::report::f2;
    use gstm_core::metrics;
    let mut t = Table::new(
        "Campaign summary (all derived metrics per benchmark)",
        &[
            "Application",
            "threads",
            "metric %",
            "states",
            "var imp %",
            "nd red %",
            "tail imp %",
            "slowdown x",
            "gate pass/wait/rel",
        ],
    );
    for e in exps {
        let imp = e.variance_improvement_pct();
        t.row(vec![
            e.name.to_string(),
            e.threads.to_string(),
            f1(e.analyzer.guidance_metric_pct),
            e.model_states.to_string(),
            f1(metrics::mean(&imp)),
            f1(e.nondeterminism_reduction_pct()),
            f1(e.tail_improvement_pct()),
            f2(e.slowdown()),
            format!("{}/{}/{}", e.gate.passed, e.gate.waited, e.gate.released),
        ]);
    }
    t
}

/// Summary of repeated campaigns: mean ± sd per derived metric.
pub fn repeated_summary(aggs: &[crate::experiment::AggregatedExperiment]) -> Table {
    let mut t = Table::new(
        "Repeated-campaign summary (mean ± sd over pipeline repeats)",
        &[
            "Application",
            "threads",
            "repeats",
            "metric %",
            "var imp %",
            "nd red %",
            "tail imp %",
            "slowdown x",
        ],
    );
    for a in aggs {
        t.row(vec![
            a.name.to_string(),
            a.threads.to_string(),
            a.repeats.to_string(),
            a.metric_pct.to_string(),
            a.var_improvement.to_string(),
            a.nd_reduction.to_string(),
            a.tail_improvement.to_string(),
            format!("{:.2} ± {:.2}", a.slowdown.mean, a.slowdown.sd),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::analyzer::{AnalyzerReport, ModelVerdict};
    use gstm_core::guidance::GateStats;

    fn fake_exp(name: &'static str, threads: u16, metric: f64, states: usize) -> BenchExperiment {
        BenchExperiment {
            name,
            threads,
            model_states: states,
            model_bytes: states * 10,
            analyzer: AnalyzerReport {
                guidance_metric_pct: metric,
                num_states: states,
                num_edges: states * 2,
                total_destinations: 10,
                kept_destinations: 5,
                verdict: ModelVerdict::Fit,
            },
            default_m: Default::default(),
            guided_m: Default::default(),
            gate: GateStats::default(),
            model_swaps: 0,
            model_rejected: false,
            breaker_trips: 0,
            breaker_recloses: 0,
        }
    }

    #[test]
    fn table1_pairs_thread_counts() {
        let e8 = vec![fake_exp("kmeans", 8, 26.0, 100)];
        let e16 = vec![fake_exp("kmeans", 16, 37.0, 200)];
        let s = table1(&e8, &e16).render();
        assert!(s.contains("kmeans"));
        assert!(s.contains("26.0"));
        assert!(s.contains("37.0"));
    }

    #[test]
    fn table3_reports_state_counts() {
        let e8 = vec![fake_exp("yada", 8, 19.0, 27120)];
        let s = table3(&e8, &[]).render();
        assert!(s.contains("27120"));
    }

    #[test]
    fn table2_reports_host() {
        let s = table2().render();
        assert!(s.contains("Core count"));
        assert!(s.contains(std::env::consts::ARCH));
    }
}
