//! The profile → model → analyze → measure pipeline for one STAMP
//! benchmark (the paper's Section II-C framework).

use gstm_core::prelude::*;
use gstm_core::{analyzer, metrics, placement};
use gstm_stamp::{Benchmark, InputSize, RunConfig};
use gstm_tl2::{clock, ClockMode, StmBuilder, StmConfig};
use std::sync::Arc;

/// Parameters of one benchmark experiment.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Worker threads (the paper evaluates 8 and 16).
    pub threads: u16,
    /// Profiling runs used to train the model (paper: 20).
    pub profile_runs: usize,
    /// Measurement runs per mode (paper: 20).
    pub measure_runs: usize,
    /// Input preset for profiling (the paper trains on medium).
    pub train_size: InputSize,
    /// Input preset for measurement (the artifact tests on small by
    /// default).
    pub test_size: InputSize,
    /// Interleave injection exponent (see
    /// [`gstm_tl2::StmConfig::yield_prob_log2`]); `Some(2)` reproduces
    /// dense interleaving on a host with fewer cores than threads.
    pub yield_k: Option<u32>,
    /// Guidance tunables (Tfactor etc.).
    pub guidance: GuidanceConfig,
    /// Input seed.
    pub seed: u64,
    /// Online model regeneration for the guided phase: `Some(window)`
    /// gates through an adaptive hook whose [`ModelManager`] rebuilds
    /// the model from a `window`-state sliding window when the drift
    /// ladder reaches Drifting/Stale (the `--adaptive[=window]` flag);
    /// `None` keeps the offline fixed-model pipeline.
    pub adaptive: Option<usize>,
    /// Profile at a different thread count than measurement (the
    /// `--profile-threads` flag). Deliberately mismatching it trains a
    /// stale model — the drift/adaptation demo scenario.
    pub profile_threads: Option<u16>,
    /// Commit-clock implementation for the measurement phases (the
    /// `--clock` flag). Profiling always runs on the global clock so the
    /// trained model is identical across clock modes.
    pub clock: ClockMode,
    /// Thread-placement policy for the measurement phases (the `--pin`
    /// flag): `Model` derives a conflict-affinity plan from the phase-2
    /// TSA; `Compact`/`Scatter` are the classic baselines; `None` leaves
    /// the OS scheduler alone and assigns clock shards round-robin.
    pub pin: PinPolicy,
    /// Affinity signal for `--pin=model` (the `--affinity` flag):
    /// `Tsa` builds the matrix from the profiled automaton; `Measured`
    /// rides a contention tracker on the profiling runs and builds it
    /// from the observed victim/owner abort matrix instead.
    pub affinity: AffinitySource,
}

impl ExperimentConfig {
    /// A scaled-down default suitable for this reproduction's host.
    pub fn quick(threads: u16) -> Self {
        ExperimentConfig {
            threads,
            profile_runs: 6,
            measure_runs: 8,
            train_size: InputSize::Small,
            test_size: InputSize::Small,
            yield_k: Some(2),
            guidance: GuidanceConfig::default(),
            seed: 0x5eed_cafe,
            adaptive: None,
            profile_threads: None,
            clock: ClockMode::Global,
            pin: PinPolicy::None,
            affinity: AffinitySource::Tsa,
        }
    }
}

/// Chaos-campaign plumbing for one experiment (the `--chaos` /
/// `--breaker` flags): a deterministic fault plan armed during the
/// *guided* measurement phase — profiling and the default baseline stay
/// clean so the model is trained honestly and the comparison remains
/// valid — and the guidance circuit breaker that degrades gating to
/// fail-open unguided execution when the model misbehaves under fire.
#[derive(Clone, Default)]
pub struct Robustness {
    /// Deterministic fault plan (`--chaos=SEED[:PLAN]`); `None` = no
    /// injection.
    pub faults: Option<Arc<FaultPlan>>,
    /// Arm one circuit breaker per guided run (`--breaker`).
    pub breaker: bool,
}

/// A measurement repetition that panicked instead of completing.
#[derive(Clone, Debug)]
pub struct RepFailure {
    /// Index in the phase's attempt sequence (0-based, counting failed
    /// and successful repetitions alike).
    pub rep: usize,
    /// The panic payload, rendered as a string.
    pub cause: String,
}

/// Measurements of one execution mode (default or guided) across runs.
#[derive(Clone, Debug, Default)]
pub struct ModeMeasurement {
    /// `[run][thread]` execution time of each thread function, seconds.
    pub per_thread_times: Vec<Vec<f64>>,
    /// Per-thread abort histograms, merged across runs.
    pub per_thread_hists: Vec<AbortHistogram>,
    /// `[run][thread]` abort histograms before merging — the per-run
    /// commit/abort accounting `gstm-analyze` cross-checks against.
    pub per_run_hists: Vec<Vec<AbortHistogram>>,
    /// Wall-clock time of each run.
    pub wall_secs: Vec<f64>,
    /// Number of distinct thread transactional states observed across all
    /// runs — the paper's non-determinism measure.
    pub non_determinism: usize,
    /// Repetitions that panicked. Every other vector here covers only the
    /// successful repetitions, so a chaos campaign with casualties still
    /// yields a well-formed (if smaller) sample.
    pub failed: Vec<RepFailure>,
}

impl ModeMeasurement {
    /// Per-thread standard deviation of execution time over runs.
    pub fn per_thread_std_dev(&self) -> Vec<f64> {
        let threads = self
            .per_thread_times
            .first()
            .map(Vec::len)
            .unwrap_or(0);
        (0..threads)
            .map(|t| {
                let series: Vec<f64> =
                    self.per_thread_times.iter().map(|run| run[t]).collect();
                metrics::std_dev(&series)
            })
            .collect()
    }

    /// Mean wall-clock time over runs.
    pub fn mean_wall(&self) -> f64 {
        metrics::mean(&self.wall_secs)
    }

    /// Per-thread abort-tail metrics.
    pub fn per_thread_tails(&self) -> Vec<u64> {
        self.per_thread_hists
            .iter()
            .map(AbortHistogram::tail_metric)
            .collect()
    }

    /// Total aborts across threads and runs.
    pub fn total_aborts(&self) -> u64 {
        self.per_thread_hists
            .iter()
            .map(AbortHistogram::total_aborts)
            .sum()
    }

    /// Total commits across threads and runs.
    pub fn total_commits(&self) -> u64 {
        self.per_thread_hists
            .iter()
            .map(AbortHistogram::total_commits)
            .sum()
    }
}

/// Everything the pipeline produced for one benchmark at one thread count.
#[derive(Clone, Debug)]
pub struct BenchExperiment {
    /// Benchmark name.
    pub name: &'static str,
    /// Worker threads.
    pub threads: u16,
    /// Number of states in the trained model (Table III).
    pub model_states: usize,
    /// Size of the model in the compact on-disk encoding, in bytes (the
    /// paper quotes ~118 KB at 8 threads, ~1.3 MB at 16).
    pub model_bytes: usize,
    /// The analyzer's report on the trained model (Table I).
    pub analyzer: AnalyzerReport,
    /// Default (unguided) measurements.
    pub default_m: ModeMeasurement,
    /// Guided measurements.
    pub guided_m: ModeMeasurement,
    /// Gate behaviour during the guided runs.
    pub gate: gstm_core::guidance::GateStats,
    /// Guided-model hot-swaps across the guided runs (0 unless the
    /// experiment ran with [`ExperimentConfig::adaptive`]).
    pub model_swaps: u64,
    /// Whether the round-tripped model file was rejected at load (the
    /// chaos corrupt-model site fired and the integrity header caught
    /// it), starting the guided phase fail-open.
    pub model_rejected: bool,
    /// Breaker trips (Closed/Half-Open → Open) summed over guided runs.
    pub breaker_trips: u64,
    /// Breaker re-closes (Half-Open → Closed) summed over guided runs.
    pub breaker_recloses: u64,
}

impl BenchExperiment {
    /// Per-thread percentage improvement in execution-time standard
    /// deviation, guided over default (Figures 4/6; negative =
    /// degradation, as for ssca2 in Figure 8).
    pub fn variance_improvement_pct(&self) -> Vec<f64> {
        self.default_m
            .per_thread_std_dev()
            .iter()
            .zip(self.guided_m.per_thread_std_dev())
            .map(|(&d, g)| metrics::pct_improvement(d, g))
            .collect()
    }

    /// Average percentage improvement of the abort-tail metric across
    /// threads (Table IV).
    pub fn tail_improvement_pct(&self) -> f64 {
        let d = self.default_m.per_thread_tails();
        let g = self.guided_m.per_thread_tails();
        let per: Vec<f64> = d
            .iter()
            .zip(&g)
            .map(|(&d, &g)| metrics::pct_improvement(d as f64, g as f64))
            .collect();
        metrics::mean(&per)
    }

    /// Percentage reduction in non-determinism (Figure 9).
    pub fn nondeterminism_reduction_pct(&self) -> f64 {
        metrics::pct_improvement(
            self.default_m.non_determinism as f64,
            self.guided_m.non_determinism as f64,
        )
    }

    /// Slowdown (×) of guided over default (Figure 10).
    pub fn slowdown(&self) -> f64 {
        metrics::slowdown(self.default_m.mean_wall(), self.guided_m.mean_wall())
    }
}

fn stm_config(cfg: &ExperimentConfig) -> StmConfig {
    StmConfig {
        yield_prob_log2: cfg.yield_k,
        ..StmConfig::default()
    }
}

/// Run `runs` measured executions, collecting timings, histograms, and
/// recorded state sequences. `hook_for_run` supplies the guidance hook
/// and `telemetry_for_run` the (optional) telemetry collector for each
/// run — a constant closure shares one instance across runs; per-run
/// instances give each run its own artifacts.
/// Render a `catch_unwind` payload for the failures record.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

fn measure<H: GuidanceHook + 'static>(
    bench: &dyn Benchmark,
    cfg: &ExperimentConfig,
    runs: usize,
    size: InputSize,
    clock: ClockMode,
    plan: Option<Arc<PlacementPlan>>,
    faults: Option<Arc<FaultPlan>>,
    // A caller-owned contention tracker accumulating across every run of
    // the phase (the measured-affinity profiling signal). When absent,
    // each *telemetry-collected* run gets its own fresh tracker so the
    // per-run snapshot's attribution partitions exactly against that
    // run's abort counters; uncollected runs pay only the disabled-path
    // branch.
    shared_contention: Option<Arc<ContentionTracker>>,
    hook_for_run: impl Fn(usize) -> Arc<H>,
    telemetry_for_run: impl Fn(usize) -> Option<Arc<Telemetry>>,
    take_run: impl Fn(&H) -> Vec<StateKey>,
) -> (ModeMeasurement, Vec<Vec<StateKey>>) {
    let mut m = ModeMeasurement {
        per_thread_hists: vec![AbortHistogram::new(); cfg.threads as usize],
        ..Default::default()
    };
    let mut recorded = Vec::new();
    // Successful repetitions take consecutive indices regardless of
    // earlier casualties, so per-run hooks/collectors (and the run0,
    // run1, ... artifact files built from them) never have holes.
    let mut ok = 0usize;
    for rep in 0..runs {
        let hook = hook_for_run(ok);
        let tel = telemetry_for_run(ok);
        let contention = shared_contention
            .clone()
            .or_else(|| tel.as_ref().map(|_| Arc::new(ContentionTracker::new())));
        let stm = StmBuilder::new(stm_config(cfg))
            .hook(hook.clone())
            .telemetry(tel.clone())
            .faults(faults.clone())
            .clock(clock)
            .placement(plan.clone())
            .contention(contention.clone())
            .build();
        let run_cfg = RunConfig {
            threads: cfg.threads,
            size,
            // Identical input every run: variation comes from scheduling.
            seed: cfg.seed,
        };
        let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bench.run(&stm, &run_cfg)
        })) {
            Ok(r) => r,
            Err(payload) => {
                // Campaign resilience: one poisoned repetition must not
                // void the rest. Record it with its cause and drain the
                // hook so a partial state sequence cannot leak into the
                // next repetition's non-determinism accounting.
                let _ = take_run(&hook);
                m.failed.push(RepFailure {
                    rep,
                    cause: panic_message(payload.as_ref()),
                });
                continue;
            }
        };
        m.per_thread_times.push(result.per_thread_secs.clone());
        m.wall_secs.push(result.wall_secs);
        let mut run_hists = vec![AbortHistogram::new(); cfg.threads as usize];
        for (t, stats) in result.per_thread_stats.iter().enumerate() {
            m.per_thread_hists[t].merge(&stats.abort_hist);
            run_hists[t].merge(&stats.abort_hist);
        }
        m.per_run_hists.push(run_hists);
        recorded.push(take_run(&hook));
        // Stamp the run's collector with this repetition's clock deltas
        // and the placement plan it executed under, so the exported
        // Prometheus snapshot carries the gstm_clock_*/gstm_placement_*
        // families gstm-analyze cross-checks.
        if let Some(tel) = &tel {
            tel.set_clock_stats(stm.clock_stats());
            if let Some(p) = &plan {
                tel.set_placement(PlacementStats::from_plan(p));
            }
            if let Some(ct) = &contention {
                tel.set_contention(ct.snapshot());
            }
        }
        ok += 1;
    }
    m.non_determinism = metrics::non_determinism(&recorded);
    (m, recorded)
}

/// Profile a benchmark and build its guided model without measuring —
/// used by `gstm-repro inspect` for model exploration.
pub fn train_model(bench: &dyn Benchmark, cfg: &ExperimentConfig) -> GuidedModel {
    let profile_cfg = ExperimentConfig {
        threads: cfg.profile_threads.unwrap_or(cfg.threads),
        ..*cfg
    };
    let recorder = Arc::new(RecorderHook::new());
    let (_, train_runs) = measure(
        bench,
        &profile_cfg,
        cfg.profile_runs,
        cfg.train_size,
        ClockMode::Global,
        None,
        None,
        None,
        |_| recorder.clone(),
        |_| None,
        |h| h.take_run(),
    );
    GuidedModel::build(Tsa::from_runs(&train_runs), &cfg.guidance)
}

/// Derive the measurement-phase placement plan from the freshly trained
/// TSA. `Model` clusters threads by conflict affinity (shared clock
/// shard, adjacent cores); `Compact`/`Scatter` are the classic layouts;
/// `None` returns no plan — unpinned threads, round-robin shard default.
///
/// With `--affinity=measured`, `measured` carries the contention
/// tracker's profiling-phase snapshot and its victim/owner matrix
/// replaces the TSA-derived one. An empty measured matrix (profiling
/// observed no attributable conflicts) falls back to the TSA signal
/// rather than degrading `model` to unclustered compact geometry.
fn placement_plan(
    cfg: &ExperimentConfig,
    tsa: &Tsa,
    measured: Option<&ContentionStats>,
) -> Option<Arc<PlacementPlan>> {
    let cores = placement::online_cpus();
    let threads = cfg.threads as usize;
    match cfg.pin {
        PinPolicy::None => None,
        PinPolicy::Model => {
            let m = measured
                .filter(|s| !s.pairs.is_empty())
                .map(|s| AffinityMatrix::from_contention(s, threads))
                .unwrap_or_else(|| AffinityMatrix::from_tsa(tsa, threads));
            Some(Arc::new(PlacementPlan::model_driven(&m, cores, clock::MAX_SHARDS)))
        }
        policy => Some(Arc::new(PlacementPlan::trivial(
            policy,
            threads,
            cores,
            clock::MAX_SHARDS,
        ))),
    }
}

/// Run the full pipeline for one benchmark at one thread count.
pub fn run_experiment(bench: &dyn Benchmark, cfg: &ExperimentConfig) -> BenchExperiment {
    run_experiment_instrumented(bench, cfg, None)
}

/// [`run_experiment`] with an optional telemetry collector attached to the
/// *guided* measurement phase (phase 4). Scoping telemetry to that phase
/// makes the snapshot directly checkable: its commit/abort totals must
/// equal what the harness's own per-thread statistics count for the
/// guided runs. One collector accumulates across all guided runs; use
/// [`run_experiment_observed`] for per-run collectors.
pub fn run_experiment_instrumented(
    bench: &dyn Benchmark,
    cfg: &ExperimentConfig,
    telemetry: Option<Arc<Telemetry>>,
) -> BenchExperiment {
    run_experiment_observed(bench, cfg, |_| telemetry.clone())
}

/// [`run_experiment`] with a telemetry collector *per guided run*:
/// `telemetry_for_run(r)` supplies the collector for guided run `r`
/// (return a clone of one `Arc` to share it across runs, or distinct
/// instances so every run exports its own artifacts — what `--telemetry`
/// does, so repetition `r+1` no longer overwrites repetition `r`).
///
/// When any run is collected, a [`DriftTracker`] over the freshly
/// trained model is created, fed by every guided run's hook, and
/// attached to every collector, so each exported snapshot carries the
/// cumulative [`gstm_core::drift::ModelDrift`] report up to that run.
pub fn run_experiment_observed(
    bench: &dyn Benchmark,
    cfg: &ExperimentConfig,
    telemetry_for_run: impl Fn(usize) -> Option<Arc<Telemetry>>,
) -> BenchExperiment {
    run_experiment_chaos(bench, cfg, telemetry_for_run, &Robustness::default())
}

/// [`run_experiment_observed`] under a chaos campaign: the fault plan is
/// armed for the guided measurement phase (the trained model and the
/// default baseline stay clean), the model is round-tripped through its
/// on-disk encoding with the corrupt-model site given a shot at the
/// bytes, and — when requested or when the model file was rejected —
/// every guided run gates through its own circuit breaker, attached to
/// that run's telemetry collector so each exported snapshot carries its
/// own trip/re-close history.
pub fn run_experiment_chaos(
    bench: &dyn Benchmark,
    cfg: &ExperimentConfig,
    telemetry_for_run: impl Fn(usize) -> Option<Arc<Telemetry>>,
    robust: &Robustness,
) -> BenchExperiment {
    // ---- Phase 1: profile (the artifact's `mcmc_data` option) ----
    // `profile_threads` lets the model be trained at a different thread
    // count than it is asked to guide — the canonical way to hand the
    // guided phase a stale model (drift_demo / the adapt-smoke CI job).
    let profile_cfg = ExperimentConfig {
        threads: cfg.profile_threads.unwrap_or(cfg.threads),
        ..*cfg
    };
    let recorder = Arc::new(RecorderHook::new());
    // `--pin=model --affinity=measured`: a contention tracker rides every
    // profiling run (one shared instance — the matrix should integrate
    // all training evidence) and its snapshot feeds the placement plan.
    let profile_contention = (cfg.pin == PinPolicy::Model
        && cfg.affinity == AffinitySource::Measured)
        .then(|| Arc::new(ContentionTracker::new()));
    let (_, train_runs) = measure(
        bench,
        &profile_cfg,
        cfg.profile_runs,
        cfg.train_size,
        ClockMode::Global,
        None,
        None,
        profile_contention.clone(),
        |_| recorder.clone(),
        |_| None,
        |h| h.take_run(),
    );

    // ---- Phase 2: model generation + analysis ----
    let tsa = Tsa::from_runs(&train_runs);
    let model_states = tsa.num_states();
    // The placement plan must come off the TSA before `GuidedModel::build`
    // consumes it. Both measurement phases share the plan so the guided/
    // default comparison holds clock and placement fixed.
    let measured_affinity = profile_contention.as_ref().map(|ct| ct.snapshot());
    let plan = placement_plan(cfg, &tsa, measured_affinity.as_ref());
    // Round-trip the model through its on-disk encoding exactly as a
    // load from disk would see it, letting the chaos plan's corrupt-model
    // site tamper with the bytes in between. The integrity header must
    // then reject the file at decode; the campaign proceeds on the
    // in-memory model with every guided run's breaker pre-tripped
    // (fail-open), which half-open probes can later re-close — the
    // degradation ladder, never a panic.
    let mut encoded = gstm_core::model_io::encode(&tsa);
    let model_bytes = encoded.len();
    let mut model_rejected = false;
    if let Some(mode) = robust.faults.as_ref().and_then(|f| f.corrupt_model(&mut encoded)) {
        if gstm_core::model_io::decode(&encoded).is_err() {
            eprintln!("[harness] model file rejected at load (chaos corruption: {mode})");
            model_rejected = true;
        }
    }
    let model = Arc::new(GuidedModel::build(tsa, &cfg.guidance));
    let analyzer_report = analyzer::analyze_with(&model, &cfg.guidance);

    // ---- Phase 3: default measurement (`default` + `ND_only`) ----
    // The recorder stays installed so default and guided runs carry the
    // same instrumentation overhead and both yield state sequences for
    // the non-determinism comparison.
    let default_rec = Arc::new(RecorderHook::new());
    let (default_m, _) = measure(
        bench,
        cfg,
        cfg.measure_runs,
        cfg.test_size,
        cfg.clock,
        plan.clone(),
        None,
        None,
        |_| default_rec.clone(),
        |_| None,
        |h| h.take_run(),
    );

    // ---- Phase 4: guided measurement (`model` + `ND_mcmc`) ----
    // One hook per run (a fresh hook resets no cross-run state the old
    // shared hook kept: the tracker drains and the current state resets
    // at every take_run), so each run can bind its own collector. Drift
    // accumulates across runs in one shared tracker.
    let tels: Vec<Option<Arc<Telemetry>>> =
        (0..cfg.measure_runs).map(&telemetry_for_run).collect();
    // Fixed-model observability shares one drift tracker across runs;
    // adaptive hooks instead carry a tracker per model epoch (the
    // manager re-attaches the live epoch's tracker to telemetry at
    // every swap).
    let drift = (cfg.adaptive.is_none() && tels.iter().any(Option::is_some))
        .then(|| Arc::new(DriftTracker::new(&model)));
    // One breaker per guided run (paired with that run's collector). A
    // model-file rejection arms breakers even without `--breaker` and
    // trips each one before its run starts: the run opens fail-open and
    // re-admits guidance only via half-open probes.
    let breakers: Vec<Option<Arc<Breaker>>> = tels
        .iter()
        .map(|tel| {
            (robust.breaker || model_rejected).then(|| {
                let b = Arc::new(Breaker::new(BreakerConfig::default(), tel.clone()));
                if model_rejected {
                    b.reject_model();
                }
                b
            })
        })
        .collect();
    let guided_hooks: Vec<Arc<GuidedHook>> = tels
        .iter()
        .zip(&breakers)
        .map(|(tel, breaker)| match cfg.adaptive {
            Some(window) => GuidedHook::adaptive_with_robustness(
                model.clone(),
                cfg.guidance,
                AdaptConfig::with_window(window),
                tel.clone(),
                breaker.clone(),
                robust.faults.clone(),
            ),
            None => {
                if let (Some(t), Some(d)) = (tel, &drift) {
                    t.attach_drift(d.clone());
                }
                Arc::new(GuidedHook::with_robustness(
                    model.clone(),
                    cfg.guidance,
                    tel.clone(),
                    drift.clone(),
                    breaker.clone(),
                    robust.faults.clone(),
                ))
            }
        })
        .collect();
    let (guided_m, _) = measure(
        bench,
        cfg,
        cfg.measure_runs,
        cfg.test_size,
        cfg.clock,
        plan.clone(),
        robust.faults.clone(),
        None,
        |r| guided_hooks[r].clone(),
        |r| tels[r].clone(),
        |h| h.take_run(),
    );
    let mut gate = gstm_core::guidance::GateStats::default();
    let mut model_swaps = 0u64;
    for hook in &guided_hooks {
        gate.merge(&hook.stats());
        if let Some(mgr) = hook.manager() {
            // Join the guardian before reading the final swap count so
            // no regeneration lands after the experiment is reported.
            mgr.stop();
            model_swaps += mgr.swaps();
        }
    }
    let (mut breaker_trips, mut breaker_recloses) = (0u64, 0u64);
    for b in breakers.iter().flatten() {
        breaker_trips += b.trips();
        breaker_recloses += b.recloses();
    }

    BenchExperiment {
        name: bench.name(),
        threads: cfg.threads,
        model_states,
        model_bytes,
        analyzer: analyzer_report,
        default_m,
        guided_m,
        gate,
        model_swaps,
        model_rejected,
        breaker_trips,
        breaker_recloses,
    }
}

/// Mean and sample standard deviation of a derived metric across
/// repeated campaigns.
#[derive(Clone, Copy, Debug)]
pub struct MeanSd {
    /// Mean over repeats.
    pub mean: f64,
    /// Sample standard deviation over repeats.
    pub sd: f64,
}

impl MeanSd {
    fn of(xs: &[f64]) -> Self {
        MeanSd {
            mean: metrics::mean(xs),
            sd: metrics::std_dev(xs),
        }
    }
}

impl std::fmt::Display for MeanSd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} ± {:.1}", self.mean, self.sd)
    }
}

/// Derived metrics aggregated over repeated pipelines — the antidote to
/// single-campaign sampling noise on this reproduction's host (see
/// EXPERIMENTS.md's reading guide).
#[derive(Clone, Debug)]
pub struct AggregatedExperiment {
    /// Benchmark name.
    pub name: &'static str,
    /// Worker threads.
    pub threads: u16,
    /// How many full pipelines were run.
    pub repeats: usize,
    /// Analyzer guidance metric %.
    pub metric_pct: MeanSd,
    /// Per-thread variance improvement %, averaged over threads then
    /// aggregated over repeats.
    pub var_improvement: MeanSd,
    /// Non-determinism reduction %.
    pub nd_reduction: MeanSd,
    /// Abort-tail improvement %.
    pub tail_improvement: MeanSd,
    /// Slowdown ×.
    pub slowdown: MeanSd,
}

/// Run the full pipeline `repeats` times and aggregate the derived
/// metrics. Each repeat retrains its own model (scheduling differs), so
/// the spread covers the whole pipeline, not just measurement.
pub fn run_repeated(
    bench: &dyn Benchmark,
    cfg: &ExperimentConfig,
    repeats: usize,
) -> AggregatedExperiment {
    let mut metric = Vec::new();
    let mut var = Vec::new();
    let mut nd = Vec::new();
    let mut tail = Vec::new();
    let mut slow = Vec::new();
    let mut name = "";
    for _ in 0..repeats.max(1) {
        let e = run_experiment(bench, cfg);
        name = e.name;
        metric.push(e.analyzer.guidance_metric_pct);
        var.push(metrics::mean(&e.variance_improvement_pct()));
        nd.push(e.nondeterminism_reduction_pct());
        tail.push(e.tail_improvement_pct());
        slow.push(e.slowdown());
    }
    AggregatedExperiment {
        name,
        threads: cfg.threads,
        repeats: repeats.max(1),
        metric_pct: MeanSd::of(&metric),
        var_improvement: MeanSd::of(&var),
        nd_reduction: MeanSd::of(&nd),
        tail_improvement: MeanSd::of(&tail),
        slowdown: MeanSd::of(&slow),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_stamp::by_name;
    use gstm_tl2::Stm;

    fn tiny_cfg(threads: u16) -> ExperimentConfig {
        ExperimentConfig {
            threads,
            profile_runs: 2,
            measure_runs: 3,
            train_size: InputSize::Small,
            test_size: InputSize::Small,
            yield_k: Some(3),
            guidance: GuidanceConfig::default(),
            seed: 77,
            adaptive: None,
            profile_threads: None,
            clock: ClockMode::Global,
            pin: PinPolicy::None,
            affinity: AffinitySource::Tsa,
        }
    }

    #[test]
    fn pipeline_produces_complete_experiment() {
        let bench = by_name("kmeans").unwrap();
        let e = run_experiment(&*bench, &tiny_cfg(2));
        assert_eq!(e.name, "kmeans");
        assert!(e.model_states > 0, "profiling saw states");
        assert_eq!(e.default_m.per_thread_times.len(), 3);
        assert_eq!(e.default_m.per_thread_times[0].len(), 2);
        assert_eq!(e.guided_m.per_thread_times.len(), 3);
        assert!(e.default_m.non_determinism > 0);
        assert!(e.slowdown() > 0.0);
        assert_eq!(e.variance_improvement_pct().len(), 2);
    }

    #[test]
    fn repeated_aggregation_reports_spread() {
        let bench = by_name("ssca2").unwrap();
        let agg = run_repeated(&*bench, &tiny_cfg(2), 2);
        assert_eq!(agg.repeats, 2);
        assert_eq!(agg.name, "ssca2");
        assert!(agg.slowdown.mean > 0.0);
        assert!(agg.metric_pct.mean >= 0.0 && agg.metric_pct.mean <= 100.0);
        // Display renders mean ± sd.
        assert!(agg.slowdown.to_string().contains('±'));
    }

    #[test]
    fn telemetry_totals_match_harness_counts() {
        // The acceptance check behind `--telemetry`: the snapshot's
        // commit/abort totals must equal what the harness's own
        // per-thread statistics count for the guided phase.
        let bench = by_name("kmeans").unwrap();
        let tel = Arc::new(Telemetry::new());
        let e = run_experiment_instrumented(&*bench, &tiny_cfg(2), Some(tel.clone()));
        let snap = tel.snapshot();
        assert_eq!(snap.commits, e.guided_m.total_commits());
        assert_eq!(snap.aborts_total(), e.guided_m.total_aborts());
        assert!(snap.commit_ns.count == snap.commits);
        // Gate outcomes recorded by the hook partition the gate calls:
        // one gate call per attempt = commits + aborts.
        assert_eq!(snap.gate_total(), snap.commits + snap.aborts_total());
        let prom = snap.render_prometheus();
        assert!(prom.contains("gstm_commits_total"));
    }

    #[test]
    fn per_run_collectors_partition_guided_totals() {
        // Per-run telemetry (what `--telemetry` writes as run-stamped
        // artifacts): each run's snapshot must match the harness's own
        // accounting for that run, the per-run histograms must sum to
        // the merged ones, and every snapshot must carry a drift report.
        let bench = by_name("kmeans").unwrap();
        let cfg = tiny_cfg(2);
        let tels: Vec<Arc<Telemetry>> =
            (0..cfg.measure_runs).map(|_| Arc::new(Telemetry::new())).collect();
        let e = run_experiment_observed(&*bench, &cfg, |r| tels.get(r).cloned());
        assert_eq!(e.guided_m.per_run_hists.len(), cfg.measure_runs);
        let (mut commits, mut aborts) = (0u64, 0u64);
        for (r, tel) in tels.iter().enumerate() {
            let snap = tel.snapshot();
            let run_commits: u64 =
                e.guided_m.per_run_hists[r].iter().map(|h| h.total_commits()).sum();
            let run_aborts: u64 =
                e.guided_m.per_run_hists[r].iter().map(|h| h.total_aborts()).sum();
            assert_eq!(snap.commits, run_commits, "run {r} commits");
            assert_eq!(snap.aborts_total(), run_aborts, "run {r} aborts");
            assert_eq!(snap.gate_total(), snap.commits + snap.aborts_total());
            assert!(snap.model_drift.is_some(), "drift attached to run {r}");
            commits += snap.commits;
            aborts += snap.aborts_total();
        }
        assert_eq!(commits, e.guided_m.total_commits());
        assert_eq!(aborts, e.guided_m.total_aborts());
        // The drift tracker is shared: the last run's report covers all
        // guided transitions (one per commit).
        let d = tels.last().unwrap().snapshot().model_drift.unwrap();
        assert_eq!(d.transitions_total(), commits);
    }

    #[test]
    fn adaptive_pipeline_completes_and_reports_swaps() {
        // The guided phase runs through an adaptive hook (guardian
        // polling in the background); whether a swap actually fires
        // depends on drift, so the invariants here are structural: the
        // pipeline completes, totals still partition, and the swap count
        // agrees with what telemetry recorded.
        let bench = by_name("kmeans").unwrap();
        let cfg = ExperimentConfig {
            adaptive: Some(512),
            // Train at 1 thread, measure at 2: a deliberately stale
            // model, so drift has something to find.
            profile_threads: Some(1),
            ..tiny_cfg(2)
        };
        let tel = Arc::new(Telemetry::counters_only());
        let e = run_experiment_instrumented(&*bench, &cfg, Some(tel.clone()));
        assert_eq!(e.guided_m.per_thread_times.len(), 3);
        let snap = tel.snapshot();
        assert_eq!(snap.commits, e.guided_m.total_commits());
        assert_eq!(snap.gate_total(), snap.commits + snap.aborts_total());
        assert_eq!(snap.model_swaps, e.model_swaps, "harness and telemetry agree");
        assert!(snap.model_drift.is_some(), "live epoch's tracker attached");
        // Fixed-model experiments never swap.
        let fixed = run_experiment(&*bench, &tiny_cfg(2));
        assert_eq!(fixed.model_swaps, 0);
    }

    #[test]
    fn profile_threads_trains_at_the_requested_width() {
        // Profiling at 1 thread yields solo-commit states only from one
        // thread id; the model must reflect that narrower state space
        // compared to profiling at the measurement width.
        let bench = by_name("kmeans").unwrap();
        let narrow = train_model(
            &*bench,
            &ExperimentConfig { profile_threads: Some(1), ..tiny_cfg(2) },
        );
        let wide = train_model(&*bench, &tiny_cfg(2));
        assert!(narrow.num_states() >= 1);
        assert!(
            narrow.num_states() <= wide.num_states(),
            "1-thread profile ({}) cannot see more states than 2-thread ({})",
            narrow.num_states(),
            wide.num_states()
        );
    }

    #[test]
    fn chaos_campaign_rejects_model_and_completes_fail_open() {
        // corrupt-model fires at permille 1000: the round-tripped model
        // file must be rejected at load, every guided run's breaker
        // starts tripped (fail-open), forced aborts ride the ordinary
        // rollback path, and the campaign still completes with a
        // well-formed experiment.
        let bench = by_name("kmeans").unwrap();
        let faults =
            Arc::new(FaultPlan::parse_spec("42:forced-aborts+corrupt-model").unwrap());
        let robust = Robustness {
            faults: Some(faults.clone()),
            breaker: true,
        };
        let cfg = tiny_cfg(2);
        let e = run_experiment_chaos(&*bench, &cfg, |_| None, &robust);
        assert!(e.model_rejected, "corruption at permille 1000 must reject");
        assert_eq!(faults.injected(FaultSite::ModelCorrupt), 1);
        assert!(
            faults.injected(FaultSite::Tl2Abort) > 0,
            "forced aborts fired during the guided phase"
        );
        assert!(
            e.breaker_trips >= cfg.measure_runs as u64,
            "each guided run's breaker starts tripped on model rejection"
        );
        assert_eq!(
            e.guided_m.per_thread_times.len() + e.guided_m.failed.len(),
            cfg.measure_runs
        );
        assert!(e.default_m.failed.is_empty(), "baseline runs clean");
    }

    #[test]
    fn breaker_without_faults_stays_closed() {
        // A clean campaign with the breaker armed must behave exactly
        // like an unarmed one: no trips, full-size samples.
        let bench = by_name("kmeans").unwrap();
        let robust = Robustness {
            faults: None,
            breaker: true,
        };
        let e = run_experiment_chaos(&*bench, &tiny_cfg(2), |_| None, &robust);
        assert!(!e.model_rejected);
        assert_eq!(e.breaker_trips, 0, "no faults, no trips");
        assert_eq!(e.guided_m.per_thread_times.len(), 3);
        assert!(e.guided_m.failed.is_empty());
    }

    /// Wraps a real benchmark and panics on chosen global call indices —
    /// the campaign-resilience fixture.
    struct Flaky {
        inner: Arc<dyn Benchmark>,
        calls: std::sync::atomic::AtomicUsize,
        panic_on: Vec<usize>,
    }

    impl Benchmark for Flaky {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn num_txn_sites(&self) -> u16 {
            self.inner.num_txn_sites()
        }
        fn run(&self, stm: &Arc<Stm>, cfg: &RunConfig) -> gstm_stamp::BenchResult {
            let n = self
                .calls
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            assert!(!self.panic_on.contains(&n), "synthetic rep failure");
            self.inner.run(stm, cfg)
        }
    }

    #[test]
    fn panicking_rep_is_recorded_and_campaign_continues() {
        // tiny_cfg call layout: profile reps are calls 0-1, default reps
        // 2-4, guided reps 5-7. Kill guided rep 1 (call 6): the campaign
        // must finish with 2 successful guided reps and one recorded
        // casualty carrying the panic message.
        let flaky = Flaky {
            inner: by_name("kmeans").unwrap(),
            calls: std::sync::atomic::AtomicUsize::new(0),
            panic_on: vec![6],
        };
        let e = run_experiment(&flaky, &tiny_cfg(2));
        assert!(e.default_m.failed.is_empty());
        assert_eq!(e.guided_m.failed.len(), 1);
        assert_eq!(e.guided_m.failed[0].rep, 1);
        assert!(
            e.guided_m.failed[0].cause.contains("synthetic rep failure"),
            "cause must carry the panic message, got {:?}",
            e.guided_m.failed[0].cause
        );
        assert_eq!(e.guided_m.per_thread_times.len(), 2);
        assert_eq!(e.guided_m.per_run_hists.len(), 2);
        assert_eq!(e.guided_m.wall_secs.len(), 2);
    }

    #[test]
    fn sharded_clock_pipeline_partitions_commits() {
        // End-to-end `--clock=sharded --pin=model`: the pipeline completes,
        // per-run telemetry carries clock + placement stats, and each run's
        // shard commit counters partition that run's commit total exactly.
        let bench = by_name("kmeans").unwrap();
        let cfg = ExperimentConfig {
            clock: ClockMode::Sharded,
            pin: PinPolicy::Model,
            ..tiny_cfg(2)
        };
        let tels: Vec<Arc<Telemetry>> =
            (0..cfg.measure_runs).map(|_| Arc::new(Telemetry::counters_only())).collect();
        let e = run_experiment_observed(&*bench, &cfg, |r| tels.get(r).cloned());
        assert_eq!(e.guided_m.per_thread_times.len(), cfg.measure_runs);
        for (r, tel) in tels.iter().enumerate() {
            let snap = tel.snapshot();
            let clock = snap.clock.as_ref().expect("clock stats stamped");
            assert!(clock.sharded, "run {r} measured on the sharded clock");
            assert_eq!(
                clock.shard_commits_total(),
                snap.commits,
                "run {r}: shard counters partition the commit total"
            );
            for s in &clock.shards {
                assert!(
                    s.epoch_end >= s.epoch_start,
                    "run {r} shard {} epoch went backwards",
                    s.shard
                );
            }
            let placement = snap.placement.as_ref().expect("placement stamped");
            assert_eq!(placement.policy, PinPolicy::Model.code());
            assert_eq!(placement.thread_shard.len(), 2);
            let prom = snap.render_prometheus();
            assert!(prom.contains("gstm_clock_mode 1"));
            assert!(prom.contains("gstm_placement_policy"));
        }
    }

    #[test]
    fn contention_rides_telemetry_and_partitions_aborts() {
        // End-to-end observability contract behind `--telemetry`: every
        // collected guided run gets its own contention tracker, the
        // stamped snapshot's attribution partitions that run's abort
        // counter exactly, and the Prometheus export carries the
        // gstm_contention_* families.
        let bench = by_name("kmeans").unwrap();
        let cfg = tiny_cfg(2);
        let tels: Vec<Arc<Telemetry>> =
            (0..cfg.measure_runs).map(|_| Arc::new(Telemetry::counters_only())).collect();
        let e = run_experiment_observed(&*bench, &cfg, |r| tels.get(r).cloned());
        assert!(e.guided_m.total_commits() > 0);
        for (r, tel) in tels.iter().enumerate() {
            let snap = tel.snapshot();
            let c = snap.contention.as_ref().expect("contention stamped per run");
            assert_eq!(
                c.attributed + c.unattributed,
                snap.aborts_total(),
                "run {r}: attribution partitions the abort counter"
            );
            let top_sum: u64 = c.top.iter().map(|h| h.count).sum();
            assert_eq!(top_sum + c.residual, c.attributed, "run {r}: sketch conserves");
            let pair_sum: u64 = c.pairs.iter().map(|p| p.count).sum();
            assert_eq!(
                pair_sum + c.owner_unknown,
                c.total(),
                "run {r}: matrix conserves"
            );
            let prom = snap.render_prometheus();
            assert!(prom.contains("gstm_contention_attributed_total"));
        }
    }

    #[test]
    fn measured_affinity_builds_a_model_plan() {
        // `--pin=model --affinity=measured`: the pipeline completes and
        // still produces a full model-policy placement plan (thread→shard
        // and thread→core maps over every worker), now derived from the
        // profiling phase's victim/owner abort matrix.
        let bench = by_name("kmeans").unwrap();
        let cfg = ExperimentConfig {
            pin: PinPolicy::Model,
            affinity: AffinitySource::Measured,
            ..tiny_cfg(2)
        };
        let tel = Arc::new(Telemetry::counters_only());
        let e = run_experiment_instrumented(&*bench, &cfg, Some(tel.clone()));
        assert!(e.guided_m.total_commits() > 0);
        let snap = tel.snapshot();
        let placement = snap.placement.as_ref().expect("placement stamped");
        assert_eq!(placement.policy, PinPolicy::Model.code());
        assert_eq!(placement.thread_shard.len(), 2);
        assert_eq!(placement.thread_core.len(), 2);
    }

    #[test]
    fn global_clock_pipeline_reports_unsharded_stats() {
        // `--clock=global` (the default) keeps the legacy clock and says
        // so in telemetry. (No numeric bound on `global_advances` here:
        // the clock is process-wide, so parallel tests advance it too.)
        let bench = by_name("kmeans").unwrap();
        let tel = Arc::new(Telemetry::counters_only());
        let e = run_experiment_instrumented(&*bench, &tiny_cfg(2), Some(tel.clone()));
        assert!(e.guided_m.total_commits() > 0);
        let snap = tel.snapshot();
        let clock = snap.clock.as_ref().expect("clock stats stamped");
        assert!(!clock.sharded);
        assert!(clock.shards.is_empty());
        assert!(snap.placement.is_none(), "no plan without --pin");
        assert!(snap.render_prometheus().contains("gstm_clock_mode 0"));
    }

    #[test]
    fn ssca2_model_is_low_information() {
        // The shape the paper reports: ssca2 barely aborts, so its states
        // are almost all solo commits and the analyzer metric is high.
        let bench = by_name("ssca2").unwrap();
        let e = run_experiment(&*bench, &tiny_cfg(2));
        assert!(
            e.default_m.total_aborts() * 10 <= e.default_m.per_thread_hists.iter().map(|h| h.total_commits()).sum::<u64>(),
            "ssca2 must be low-contention"
        );
    }
}
