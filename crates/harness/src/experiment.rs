//! The profile → model → analyze → measure pipeline for one STAMP
//! benchmark (the paper's Section II-C framework).

use gstm_core::prelude::*;
use gstm_core::{analyzer, metrics};
use gstm_stamp::{Benchmark, InputSize, RunConfig};
use gstm_tl2::{Stm, StmConfig};
use std::sync::Arc;

/// Parameters of one benchmark experiment.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Worker threads (the paper evaluates 8 and 16).
    pub threads: u16,
    /// Profiling runs used to train the model (paper: 20).
    pub profile_runs: usize,
    /// Measurement runs per mode (paper: 20).
    pub measure_runs: usize,
    /// Input preset for profiling (the paper trains on medium).
    pub train_size: InputSize,
    /// Input preset for measurement (the artifact tests on small by
    /// default).
    pub test_size: InputSize,
    /// Interleave injection exponent (see
    /// [`gstm_tl2::StmConfig::yield_prob_log2`]); `Some(2)` reproduces
    /// dense interleaving on a host with fewer cores than threads.
    pub yield_k: Option<u32>,
    /// Guidance tunables (Tfactor etc.).
    pub guidance: GuidanceConfig,
    /// Input seed.
    pub seed: u64,
    /// Online model regeneration for the guided phase: `Some(window)`
    /// gates through an adaptive hook whose [`ModelManager`] rebuilds
    /// the model from a `window`-state sliding window when the drift
    /// ladder reaches Drifting/Stale (the `--adaptive[=window]` flag);
    /// `None` keeps the offline fixed-model pipeline.
    pub adaptive: Option<usize>,
    /// Profile at a different thread count than measurement (the
    /// `--profile-threads` flag). Deliberately mismatching it trains a
    /// stale model — the drift/adaptation demo scenario.
    pub profile_threads: Option<u16>,
}

impl ExperimentConfig {
    /// A scaled-down default suitable for this reproduction's host.
    pub fn quick(threads: u16) -> Self {
        ExperimentConfig {
            threads,
            profile_runs: 6,
            measure_runs: 8,
            train_size: InputSize::Small,
            test_size: InputSize::Small,
            yield_k: Some(2),
            guidance: GuidanceConfig::default(),
            seed: 0x5eed_cafe,
            adaptive: None,
            profile_threads: None,
        }
    }
}

/// Measurements of one execution mode (default or guided) across runs.
#[derive(Clone, Debug, Default)]
pub struct ModeMeasurement {
    /// `[run][thread]` execution time of each thread function, seconds.
    pub per_thread_times: Vec<Vec<f64>>,
    /// Per-thread abort histograms, merged across runs.
    pub per_thread_hists: Vec<AbortHistogram>,
    /// `[run][thread]` abort histograms before merging — the per-run
    /// commit/abort accounting `gstm-analyze` cross-checks against.
    pub per_run_hists: Vec<Vec<AbortHistogram>>,
    /// Wall-clock time of each run.
    pub wall_secs: Vec<f64>,
    /// Number of distinct thread transactional states observed across all
    /// runs — the paper's non-determinism measure.
    pub non_determinism: usize,
}

impl ModeMeasurement {
    /// Per-thread standard deviation of execution time over runs.
    pub fn per_thread_std_dev(&self) -> Vec<f64> {
        let threads = self
            .per_thread_times
            .first()
            .map(Vec::len)
            .unwrap_or(0);
        (0..threads)
            .map(|t| {
                let series: Vec<f64> =
                    self.per_thread_times.iter().map(|run| run[t]).collect();
                metrics::std_dev(&series)
            })
            .collect()
    }

    /// Mean wall-clock time over runs.
    pub fn mean_wall(&self) -> f64 {
        metrics::mean(&self.wall_secs)
    }

    /// Per-thread abort-tail metrics.
    pub fn per_thread_tails(&self) -> Vec<u64> {
        self.per_thread_hists
            .iter()
            .map(AbortHistogram::tail_metric)
            .collect()
    }

    /// Total aborts across threads and runs.
    pub fn total_aborts(&self) -> u64 {
        self.per_thread_hists
            .iter()
            .map(AbortHistogram::total_aborts)
            .sum()
    }

    /// Total commits across threads and runs.
    pub fn total_commits(&self) -> u64 {
        self.per_thread_hists
            .iter()
            .map(AbortHistogram::total_commits)
            .sum()
    }
}

/// Everything the pipeline produced for one benchmark at one thread count.
#[derive(Clone, Debug)]
pub struct BenchExperiment {
    /// Benchmark name.
    pub name: &'static str,
    /// Worker threads.
    pub threads: u16,
    /// Number of states in the trained model (Table III).
    pub model_states: usize,
    /// Size of the model in the compact on-disk encoding, in bytes (the
    /// paper quotes ~118 KB at 8 threads, ~1.3 MB at 16).
    pub model_bytes: usize,
    /// The analyzer's report on the trained model (Table I).
    pub analyzer: AnalyzerReport,
    /// Default (unguided) measurements.
    pub default_m: ModeMeasurement,
    /// Guided measurements.
    pub guided_m: ModeMeasurement,
    /// Gate behaviour during the guided runs.
    pub gate: gstm_core::guidance::GateStats,
    /// Guided-model hot-swaps across the guided runs (0 unless the
    /// experiment ran with [`ExperimentConfig::adaptive`]).
    pub model_swaps: u64,
}

impl BenchExperiment {
    /// Per-thread percentage improvement in execution-time standard
    /// deviation, guided over default (Figures 4/6; negative =
    /// degradation, as for ssca2 in Figure 8).
    pub fn variance_improvement_pct(&self) -> Vec<f64> {
        self.default_m
            .per_thread_std_dev()
            .iter()
            .zip(self.guided_m.per_thread_std_dev())
            .map(|(&d, g)| metrics::pct_improvement(d, g))
            .collect()
    }

    /// Average percentage improvement of the abort-tail metric across
    /// threads (Table IV).
    pub fn tail_improvement_pct(&self) -> f64 {
        let d = self.default_m.per_thread_tails();
        let g = self.guided_m.per_thread_tails();
        let per: Vec<f64> = d
            .iter()
            .zip(&g)
            .map(|(&d, &g)| metrics::pct_improvement(d as f64, g as f64))
            .collect();
        metrics::mean(&per)
    }

    /// Percentage reduction in non-determinism (Figure 9).
    pub fn nondeterminism_reduction_pct(&self) -> f64 {
        metrics::pct_improvement(
            self.default_m.non_determinism as f64,
            self.guided_m.non_determinism as f64,
        )
    }

    /// Slowdown (×) of guided over default (Figure 10).
    pub fn slowdown(&self) -> f64 {
        metrics::slowdown(self.default_m.mean_wall(), self.guided_m.mean_wall())
    }
}

fn stm_config(cfg: &ExperimentConfig) -> StmConfig {
    StmConfig {
        yield_prob_log2: cfg.yield_k,
        ..StmConfig::default()
    }
}

/// Run `runs` measured executions, collecting timings, histograms, and
/// recorded state sequences. `hook_for_run` supplies the guidance hook
/// and `telemetry_for_run` the (optional) telemetry collector for each
/// run — a constant closure shares one instance across runs; per-run
/// instances give each run its own artifacts.
fn measure<H: GuidanceHook + 'static>(
    bench: &dyn Benchmark,
    cfg: &ExperimentConfig,
    runs: usize,
    size: InputSize,
    hook_for_run: impl Fn(usize) -> Arc<H>,
    telemetry_for_run: impl Fn(usize) -> Option<Arc<Telemetry>>,
    take_run: impl Fn(&H) -> Vec<StateKey>,
) -> (ModeMeasurement, Vec<Vec<StateKey>>) {
    let mut m = ModeMeasurement {
        per_thread_hists: vec![AbortHistogram::new(); cfg.threads as usize],
        ..Default::default()
    };
    let mut recorded = Vec::new();
    for run in 0..runs {
        let hook = hook_for_run(run);
        let stm = Stm::with_telemetry(hook.clone(), stm_config(cfg), telemetry_for_run(run));
        let run_cfg = RunConfig {
            threads: cfg.threads,
            size,
            // Identical input every run: variation comes from scheduling.
            seed: cfg.seed,
        };
        let result = bench.run(&stm, &run_cfg);
        m.per_thread_times.push(result.per_thread_secs.clone());
        m.wall_secs.push(result.wall_secs);
        let mut run_hists = vec![AbortHistogram::new(); cfg.threads as usize];
        for (t, stats) in result.per_thread_stats.iter().enumerate() {
            m.per_thread_hists[t].merge(&stats.abort_hist);
            run_hists[t].merge(&stats.abort_hist);
        }
        m.per_run_hists.push(run_hists);
        recorded.push(take_run(&hook));
    }
    m.non_determinism = metrics::non_determinism(&recorded);
    (m, recorded)
}

/// Profile a benchmark and build its guided model without measuring —
/// used by `gstm-repro inspect` for model exploration.
pub fn train_model(bench: &dyn Benchmark, cfg: &ExperimentConfig) -> GuidedModel {
    let profile_cfg = ExperimentConfig {
        threads: cfg.profile_threads.unwrap_or(cfg.threads),
        ..*cfg
    };
    let recorder = Arc::new(RecorderHook::new());
    let (_, train_runs) = measure(
        bench,
        &profile_cfg,
        cfg.profile_runs,
        cfg.train_size,
        |_| recorder.clone(),
        |_| None,
        |h| h.take_run(),
    );
    GuidedModel::build(Tsa::from_runs(&train_runs), &cfg.guidance)
}

/// Run the full pipeline for one benchmark at one thread count.
pub fn run_experiment(bench: &dyn Benchmark, cfg: &ExperimentConfig) -> BenchExperiment {
    run_experiment_instrumented(bench, cfg, None)
}

/// [`run_experiment`] with an optional telemetry collector attached to the
/// *guided* measurement phase (phase 4). Scoping telemetry to that phase
/// makes the snapshot directly checkable: its commit/abort totals must
/// equal what the harness's own per-thread statistics count for the
/// guided runs. One collector accumulates across all guided runs; use
/// [`run_experiment_observed`] for per-run collectors.
pub fn run_experiment_instrumented(
    bench: &dyn Benchmark,
    cfg: &ExperimentConfig,
    telemetry: Option<Arc<Telemetry>>,
) -> BenchExperiment {
    run_experiment_observed(bench, cfg, |_| telemetry.clone())
}

/// [`run_experiment`] with a telemetry collector *per guided run*:
/// `telemetry_for_run(r)` supplies the collector for guided run `r`
/// (return a clone of one `Arc` to share it across runs, or distinct
/// instances so every run exports its own artifacts — what `--telemetry`
/// does, so repetition `r+1` no longer overwrites repetition `r`).
///
/// When any run is collected, a [`DriftTracker`] over the freshly
/// trained model is created, fed by every guided run's hook, and
/// attached to every collector, so each exported snapshot carries the
/// cumulative [`gstm_core::drift::ModelDrift`] report up to that run.
pub fn run_experiment_observed(
    bench: &dyn Benchmark,
    cfg: &ExperimentConfig,
    telemetry_for_run: impl Fn(usize) -> Option<Arc<Telemetry>>,
) -> BenchExperiment {
    // ---- Phase 1: profile (the artifact's `mcmc_data` option) ----
    // `profile_threads` lets the model be trained at a different thread
    // count than it is asked to guide — the canonical way to hand the
    // guided phase a stale model (drift_demo / the adapt-smoke CI job).
    let profile_cfg = ExperimentConfig {
        threads: cfg.profile_threads.unwrap_or(cfg.threads),
        ..*cfg
    };
    let recorder = Arc::new(RecorderHook::new());
    let (_, train_runs) = measure(
        bench,
        &profile_cfg,
        cfg.profile_runs,
        cfg.train_size,
        |_| recorder.clone(),
        |_| None,
        |h| h.take_run(),
    );

    // ---- Phase 2: model generation + analysis ----
    let tsa = Tsa::from_runs(&train_runs);
    let model_states = tsa.num_states();
    let model_bytes = gstm_core::model_io::encode(&tsa).len();
    let model = Arc::new(GuidedModel::build(tsa, &cfg.guidance));
    let analyzer_report = analyzer::analyze_with(&model, &cfg.guidance);

    // ---- Phase 3: default measurement (`default` + `ND_only`) ----
    // The recorder stays installed so default and guided runs carry the
    // same instrumentation overhead and both yield state sequences for
    // the non-determinism comparison.
    let default_rec = Arc::new(RecorderHook::new());
    let (default_m, _) = measure(
        bench,
        cfg,
        cfg.measure_runs,
        cfg.test_size,
        |_| default_rec.clone(),
        |_| None,
        |h| h.take_run(),
    );

    // ---- Phase 4: guided measurement (`model` + `ND_mcmc`) ----
    // One hook per run (a fresh hook resets no cross-run state the old
    // shared hook kept: the tracker drains and the current state resets
    // at every take_run), so each run can bind its own collector. Drift
    // accumulates across runs in one shared tracker.
    let tels: Vec<Option<Arc<Telemetry>>> =
        (0..cfg.measure_runs).map(&telemetry_for_run).collect();
    // Fixed-model observability shares one drift tracker across runs;
    // adaptive hooks instead carry a tracker per model epoch (the
    // manager re-attaches the live epoch's tracker to telemetry at
    // every swap).
    let drift = (cfg.adaptive.is_none() && tels.iter().any(Option::is_some))
        .then(|| Arc::new(DriftTracker::new(&model)));
    let guided_hooks: Vec<Arc<GuidedHook>> = tels
        .iter()
        .map(|tel| match cfg.adaptive {
            Some(window) => GuidedHook::adaptive(
                model.clone(),
                cfg.guidance,
                AdaptConfig::with_window(window),
                tel.clone(),
            ),
            None => {
                if let (Some(t), Some(d)) = (tel, &drift) {
                    t.attach_drift(d.clone());
                }
                Arc::new(GuidedHook::with_observability(
                    model.clone(),
                    cfg.guidance,
                    tel.clone(),
                    drift.clone(),
                ))
            }
        })
        .collect();
    let (guided_m, _) = measure(
        bench,
        cfg,
        cfg.measure_runs,
        cfg.test_size,
        |r| guided_hooks[r].clone(),
        |r| tels[r].clone(),
        |h| h.take_run(),
    );
    let mut gate = gstm_core::guidance::GateStats::default();
    let mut model_swaps = 0u64;
    for hook in &guided_hooks {
        gate.merge(&hook.stats());
        if let Some(mgr) = hook.manager() {
            // Join the guardian before reading the final swap count so
            // no regeneration lands after the experiment is reported.
            mgr.stop();
            model_swaps += mgr.swaps();
        }
    }

    BenchExperiment {
        name: bench.name(),
        threads: cfg.threads,
        model_states,
        model_bytes,
        analyzer: analyzer_report,
        default_m,
        guided_m,
        gate,
        model_swaps,
    }
}

/// Mean and sample standard deviation of a derived metric across
/// repeated campaigns.
#[derive(Clone, Copy, Debug)]
pub struct MeanSd {
    /// Mean over repeats.
    pub mean: f64,
    /// Sample standard deviation over repeats.
    pub sd: f64,
}

impl MeanSd {
    fn of(xs: &[f64]) -> Self {
        MeanSd {
            mean: metrics::mean(xs),
            sd: metrics::std_dev(xs),
        }
    }
}

impl std::fmt::Display for MeanSd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} ± {:.1}", self.mean, self.sd)
    }
}

/// Derived metrics aggregated over repeated pipelines — the antidote to
/// single-campaign sampling noise on this reproduction's host (see
/// EXPERIMENTS.md's reading guide).
#[derive(Clone, Debug)]
pub struct AggregatedExperiment {
    /// Benchmark name.
    pub name: &'static str,
    /// Worker threads.
    pub threads: u16,
    /// How many full pipelines were run.
    pub repeats: usize,
    /// Analyzer guidance metric %.
    pub metric_pct: MeanSd,
    /// Per-thread variance improvement %, averaged over threads then
    /// aggregated over repeats.
    pub var_improvement: MeanSd,
    /// Non-determinism reduction %.
    pub nd_reduction: MeanSd,
    /// Abort-tail improvement %.
    pub tail_improvement: MeanSd,
    /// Slowdown ×.
    pub slowdown: MeanSd,
}

/// Run the full pipeline `repeats` times and aggregate the derived
/// metrics. Each repeat retrains its own model (scheduling differs), so
/// the spread covers the whole pipeline, not just measurement.
pub fn run_repeated(
    bench: &dyn Benchmark,
    cfg: &ExperimentConfig,
    repeats: usize,
) -> AggregatedExperiment {
    let mut metric = Vec::new();
    let mut var = Vec::new();
    let mut nd = Vec::new();
    let mut tail = Vec::new();
    let mut slow = Vec::new();
    let mut name = "";
    for _ in 0..repeats.max(1) {
        let e = run_experiment(bench, cfg);
        name = e.name;
        metric.push(e.analyzer.guidance_metric_pct);
        var.push(metrics::mean(&e.variance_improvement_pct()));
        nd.push(e.nondeterminism_reduction_pct());
        tail.push(e.tail_improvement_pct());
        slow.push(e.slowdown());
    }
    AggregatedExperiment {
        name,
        threads: cfg.threads,
        repeats: repeats.max(1),
        metric_pct: MeanSd::of(&metric),
        var_improvement: MeanSd::of(&var),
        nd_reduction: MeanSd::of(&nd),
        tail_improvement: MeanSd::of(&tail),
        slowdown: MeanSd::of(&slow),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_stamp::by_name;

    fn tiny_cfg(threads: u16) -> ExperimentConfig {
        ExperimentConfig {
            threads,
            profile_runs: 2,
            measure_runs: 3,
            train_size: InputSize::Small,
            test_size: InputSize::Small,
            yield_k: Some(3),
            guidance: GuidanceConfig::default(),
            seed: 77,
            adaptive: None,
            profile_threads: None,
        }
    }

    #[test]
    fn pipeline_produces_complete_experiment() {
        let bench = by_name("kmeans").unwrap();
        let e = run_experiment(&*bench, &tiny_cfg(2));
        assert_eq!(e.name, "kmeans");
        assert!(e.model_states > 0, "profiling saw states");
        assert_eq!(e.default_m.per_thread_times.len(), 3);
        assert_eq!(e.default_m.per_thread_times[0].len(), 2);
        assert_eq!(e.guided_m.per_thread_times.len(), 3);
        assert!(e.default_m.non_determinism > 0);
        assert!(e.slowdown() > 0.0);
        assert_eq!(e.variance_improvement_pct().len(), 2);
    }

    #[test]
    fn repeated_aggregation_reports_spread() {
        let bench = by_name("ssca2").unwrap();
        let agg = run_repeated(&*bench, &tiny_cfg(2), 2);
        assert_eq!(agg.repeats, 2);
        assert_eq!(agg.name, "ssca2");
        assert!(agg.slowdown.mean > 0.0);
        assert!(agg.metric_pct.mean >= 0.0 && agg.metric_pct.mean <= 100.0);
        // Display renders mean ± sd.
        assert!(agg.slowdown.to_string().contains('±'));
    }

    #[test]
    fn telemetry_totals_match_harness_counts() {
        // The acceptance check behind `--telemetry`: the snapshot's
        // commit/abort totals must equal what the harness's own
        // per-thread statistics count for the guided phase.
        let bench = by_name("kmeans").unwrap();
        let tel = Arc::new(Telemetry::new());
        let e = run_experiment_instrumented(&*bench, &tiny_cfg(2), Some(tel.clone()));
        let snap = tel.snapshot();
        assert_eq!(snap.commits, e.guided_m.total_commits());
        assert_eq!(snap.aborts_total(), e.guided_m.total_aborts());
        assert!(snap.commit_ns.count == snap.commits);
        // Gate outcomes recorded by the hook partition the gate calls:
        // one gate call per attempt = commits + aborts.
        assert_eq!(snap.gate_total(), snap.commits + snap.aborts_total());
        let prom = snap.render_prometheus();
        assert!(prom.contains("gstm_commits_total"));
    }

    #[test]
    fn per_run_collectors_partition_guided_totals() {
        // Per-run telemetry (what `--telemetry` writes as run-stamped
        // artifacts): each run's snapshot must match the harness's own
        // accounting for that run, the per-run histograms must sum to
        // the merged ones, and every snapshot must carry a drift report.
        let bench = by_name("kmeans").unwrap();
        let cfg = tiny_cfg(2);
        let tels: Vec<Arc<Telemetry>> =
            (0..cfg.measure_runs).map(|_| Arc::new(Telemetry::new())).collect();
        let e = run_experiment_observed(&*bench, &cfg, |r| tels.get(r).cloned());
        assert_eq!(e.guided_m.per_run_hists.len(), cfg.measure_runs);
        let (mut commits, mut aborts) = (0u64, 0u64);
        for (r, tel) in tels.iter().enumerate() {
            let snap = tel.snapshot();
            let run_commits: u64 =
                e.guided_m.per_run_hists[r].iter().map(|h| h.total_commits()).sum();
            let run_aborts: u64 =
                e.guided_m.per_run_hists[r].iter().map(|h| h.total_aborts()).sum();
            assert_eq!(snap.commits, run_commits, "run {r} commits");
            assert_eq!(snap.aborts_total(), run_aborts, "run {r} aborts");
            assert_eq!(snap.gate_total(), snap.commits + snap.aborts_total());
            assert!(snap.model_drift.is_some(), "drift attached to run {r}");
            commits += snap.commits;
            aborts += snap.aborts_total();
        }
        assert_eq!(commits, e.guided_m.total_commits());
        assert_eq!(aborts, e.guided_m.total_aborts());
        // The drift tracker is shared: the last run's report covers all
        // guided transitions (one per commit).
        let d = tels.last().unwrap().snapshot().model_drift.unwrap();
        assert_eq!(d.transitions_total(), commits);
    }

    #[test]
    fn adaptive_pipeline_completes_and_reports_swaps() {
        // The guided phase runs through an adaptive hook (guardian
        // polling in the background); whether a swap actually fires
        // depends on drift, so the invariants here are structural: the
        // pipeline completes, totals still partition, and the swap count
        // agrees with what telemetry recorded.
        let bench = by_name("kmeans").unwrap();
        let cfg = ExperimentConfig {
            adaptive: Some(512),
            // Train at 1 thread, measure at 2: a deliberately stale
            // model, so drift has something to find.
            profile_threads: Some(1),
            ..tiny_cfg(2)
        };
        let tel = Arc::new(Telemetry::counters_only());
        let e = run_experiment_instrumented(&*bench, &cfg, Some(tel.clone()));
        assert_eq!(e.guided_m.per_thread_times.len(), 3);
        let snap = tel.snapshot();
        assert_eq!(snap.commits, e.guided_m.total_commits());
        assert_eq!(snap.gate_total(), snap.commits + snap.aborts_total());
        assert_eq!(snap.model_swaps, e.model_swaps, "harness and telemetry agree");
        assert!(snap.model_drift.is_some(), "live epoch's tracker attached");
        // Fixed-model experiments never swap.
        let fixed = run_experiment(&*bench, &tiny_cfg(2));
        assert_eq!(fixed.model_swaps, 0);
    }

    #[test]
    fn profile_threads_trains_at_the_requested_width() {
        // Profiling at 1 thread yields solo-commit states only from one
        // thread id; the model must reflect that narrower state space
        // compared to profiling at the measurement width.
        let bench = by_name("kmeans").unwrap();
        let narrow = train_model(
            &*bench,
            &ExperimentConfig { profile_threads: Some(1), ..tiny_cfg(2) },
        );
        let wide = train_model(&*bench, &tiny_cfg(2));
        assert!(narrow.num_states() >= 1);
        assert!(
            narrow.num_states() <= wide.num_states(),
            "1-thread profile ({}) cannot see more states than 2-thread ({})",
            narrow.num_states(),
            wide.num_states()
        );
    }

    #[test]
    fn ssca2_model_is_low_information() {
        // The shape the paper reports: ssca2 barely aborts, so its states
        // are almost all solo commits and the analyzer metric is high.
        let bench = by_name("ssca2").unwrap();
        let e = run_experiment(&*bench, &tiny_cfg(2));
        assert!(
            e.default_m.total_aborts() * 10 <= e.default_m.per_thread_hists.iter().map(|h| h.total_commits()).sum::<u64>(),
            "ssca2 must be low-contention"
        );
    }
}
