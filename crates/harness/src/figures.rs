//! Renderers for the paper's figures (as data tables: one row per plotted
//! point/series, CSV-ready for replotting).

use crate::experiment::BenchExperiment;
use crate::game::GameExperiment;
use crate::report::{f1, f2, f4, Table};

/// Figures 4 (8 threads) and 6 (16 threads): per-thread percentage
/// improvement in execution-time standard deviation, per benchmark.
pub fn fig_variance(exps: &[BenchExperiment], threads: u16) -> Table {
    let fig = if threads == 8 { "Figure 4" } else { "Figure 6" };
    let mut t = Table::new(
        &format!("{fig}: % execution-time variance improvement per thread ({threads} threads)"),
        &["Application", "thread", "improvement %"],
    );
    for e in exps {
        for (th, imp) in e.variance_improvement_pct().iter().enumerate() {
            t.row(vec![e.name.to_string(), th.to_string(), f1(*imp)]);
        }
    }
    t
}

/// Figures 5 (8 threads) and 7 (16 threads): tail of the abort
/// distribution, default (dotted in the paper) vs guided (solid), per
/// thread.
pub fn fig_abort_tail(exps: &[BenchExperiment], threads: u16) -> Table {
    let fig = if threads == 8 { "Figure 5" } else { "Figure 7" };
    let mut t = Table::new(
        &format!("{fig}: abort distribution default vs guided ({threads} threads)"),
        &["Application", "thread", "aborts", "freq default", "freq guided"],
    );
    for e in exps {
        for (th, (dh, gh)) in e
            .default_m
            .per_thread_hists
            .iter()
            .zip(&e.guided_m.per_thread_hists)
            .enumerate()
        {
            let max_j = dh.max_aborts().max(gh.max_aborts());
            let d: std::collections::BTreeMap<u32, u64> = dh.iter().collect();
            let g: std::collections::BTreeMap<u32, u64> = gh.iter().collect();
            for j in 0..=max_j {
                let fd = d.get(&j).copied().unwrap_or(0);
                let fg = g.get(&j).copied().unwrap_or(0);
                if fd == 0 && fg == 0 {
                    continue;
                }
                t.row(vec![
                    e.name.to_string(),
                    th.to_string(),
                    j.to_string(),
                    fd.to_string(),
                    fg.to_string(),
                ]);
            }
        }
    }
    t
}

/// Figure 8: ssca2 under guidance — per-thread variance change (expected
/// negative: degradation) and its abort tails at both thread counts.
pub fn fig8_ssca2(eight: &[BenchExperiment], sixteen: &[BenchExperiment]) -> Table {
    let mut t = Table::new(
        "Figure 8: ssca2 with guided execution (degradation expected)",
        &["threads", "thread", "improvement %", "tail default", "tail guided"],
    );
    for exps in [eight, sixteen] {
        for e in exps.iter().filter(|e| e.name == "ssca2") {
            let imps = e.variance_improvement_pct();
            let td = e.default_m.per_thread_tails();
            let tg = e.guided_m.per_thread_tails();
            for th in 0..imps.len() {
                t.row(vec![
                    e.threads.to_string(),
                    th.to_string(),
                    f1(imps[th]),
                    td[th].to_string(),
                    tg[th].to_string(),
                ]);
            }
        }
    }
    t
}

/// Figure 9: percentage reduction in non-determinism, guided vs default.
pub fn fig9_nondeterminism(eight: &[BenchExperiment], sixteen: &[BenchExperiment]) -> Table {
    let mut t = Table::new(
        "Figure 9: % reduction in non-determinism (distinct TSS)",
        &["Application", "threads", "default", "guided", "reduction %"],
    );
    for exps in [eight, sixteen] {
        for e in exps {
            t.row(vec![
                e.name.to_string(),
                e.threads.to_string(),
                e.default_m.non_determinism.to_string(),
                e.guided_m.non_determinism.to_string(),
                f1(e.nondeterminism_reduction_pct()),
            ]);
        }
    }
    t
}

/// Figure 10: slowdown (×) of guided over default execution.
pub fn fig10_slowdown(eight: &[BenchExperiment], sixteen: &[BenchExperiment]) -> Table {
    let mut t = Table::new(
        "Figure 10: slowdown of guided vs default execution (x)",
        &["Application", "threads", "default s", "guided s", "slowdown x"],
    );
    for exps in [eight, sixteen] {
        for e in exps {
            t.row(vec![
                e.name.to_string(),
                e.threads.to_string(),
                f4(e.default_m.mean_wall()),
                f4(e.guided_m.mean_wall()),
                f2(e.slowdown()),
            ]);
        }
    }
    t
}

/// Figures 11 (4quadrants) and 12 (4center_spread6): frame-rate variance
/// improvement, abort-ratio reduction, and slowdown for SynQuake.
pub fn fig_synquake(games: &[GameExperiment], quadrants: bool) -> Table {
    let (fig, quest) = if quadrants {
        ("Figure 11", "4quadrants")
    } else {
        ("Figure 12", "4center_spread6")
    };
    let mut t = Table::new(
        &format!("{fig}: SynQuake on {quest}"),
        &[
            "threads",
            "frame variance improvement %",
            "abort ratio reduction %",
            "slowdown x",
        ],
    );
    for g in games {
        let q = if quadrants {
            &g.quadrants
        } else {
            &g.center_spread
        };
        t.row(vec![
            g.threads.to_string(),
            f1(q.frame_variance_improvement_pct()),
            f1(q.abort_reduction_pct()),
            f2(q.slowdown()),
        ]);
    }
    t
}

/// Figure 3-style model excerpt: the automaton's hottest states with
/// their outbound transition probabilities in the paper's tuple notation
/// (`{<a6>, <b7>}` etc.), marking which destinations guidance keeps.
pub fn fig3_excerpt(model: &gstm_core::GuidedModel, top_k: usize) -> String {
    use std::fmt::Write as _;
    let tsa = model.tsa();
    // Rank states by outbound traffic (≈ visit count).
    let mut ranked: Vec<_> = tsa
        .state_ids()
        .map(|id| {
            let total: u64 = tsa.outbound(id).iter().map(|&(_, f)| f).sum();
            (id, total)
        })
        .filter(|&(_, f)| f > 0)
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 3-style excerpt: top {top_k} states by visits (Tfactor {}) ==",
        model.tfactor()
    );
    for &(id, total) in ranked.iter().take(top_k) {
        let _ = writeln!(out, "state {} (visited {total}x):", tsa.state(id));
        let kept: std::collections::HashSet<u32> = model
            .kept_destinations(id)
            .iter()
            .map(|d| d.0)
            .collect();
        for &(dst, f) in tsa.outbound(id).iter().take(8) {
            let p = f as f64 / total as f64;
            let mark = if kept.contains(&dst.0) { "keep " } else { "prune" };
            let _ = writeln!(out, "  --{p:>6.3}--> {}  [{mark}]", tsa.state(dst));
        }
        let extra = tsa.outbound(id).len().saturating_sub(8);
        if extra > 0 {
            let _ = writeln!(out, "  ... and {extra} more destinations");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ModeMeasurement;
    use gstm_core::analyzer::{AnalyzerReport, ModelVerdict};
    use gstm_core::guidance::GateStats;
    use gstm_core::AbortHistogram;

    fn mode(times: Vec<Vec<f64>>, hist: Vec<AbortHistogram>, nd: usize) -> ModeMeasurement {
        ModeMeasurement {
            per_thread_times: times,
            per_thread_hists: hist,
            wall_secs: vec![1.0],
            non_determinism: nd,
            ..Default::default()
        }
    }

    fn fake() -> BenchExperiment {
        let dh: AbortHistogram = [(0u32, 10u64), (3, 2)].into_iter().collect();
        let gh: AbortHistogram = [(0u32, 12u64)].into_iter().collect();
        BenchExperiment {
            name: "kmeans",
            threads: 8,
            model_states: 5,
            model_bytes: 50,
            analyzer: AnalyzerReport {
                guidance_metric_pct: 30.0,
                num_states: 5,
                num_edges: 8,
                total_destinations: 8,
                kept_destinations: 3,
                verdict: ModelVerdict::Fit,
            },
            default_m: mode(
                vec![vec![1.0, 2.0], vec![3.0, 2.0]],
                vec![dh.clone(), dh],
                10,
            ),
            guided_m: mode(
                vec![vec![1.5, 2.0], vec![2.0, 2.0]],
                vec![gh.clone(), gh],
                6,
            ),
            gate: GateStats::default(),
            model_swaps: 0,
            model_rejected: false,
            breaker_trips: 0,
            breaker_recloses: 0,
        }
    }

    #[test]
    fn variance_figure_emits_one_row_per_thread() {
        let t = fig_variance(&[fake()], 8);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3, "header + 2 threads");
    }

    #[test]
    fn abort_tail_figure_merges_histograms() {
        let t = fig_abort_tail(&[fake()], 8);
        let csv = t.to_csv();
        // abort counts 0 and 3 appear for both threads.
        assert!(csv.contains("kmeans,0,0,10,12"));
        assert!(csv.contains("kmeans,0,3,2,0"));
    }

    #[test]
    fn fig3_excerpt_prints_paper_notation() {
        use gstm_core::{GuidanceConfig, GuidedModel, Pair, StateKey, ThreadId, Tsa, TxnId};
        let a = StateKey::solo(Pair::new(TxnId(0), ThreadId(6)));
        let b = StateKey::new(
            vec![Pair::new(TxnId(0), ThreadId(6))],
            Pair::new(TxnId(1), ThreadId(7)),
        );
        let run = vec![a.clone(), b.clone(), a.clone(), b, a];
        let tsa = Tsa::from_runs(&[run]);
        let model = GuidedModel::build(tsa, &GuidanceConfig::default());
        let s = fig3_excerpt(&model, 2);
        assert!(s.contains("{<a6>}"), "{s}");
        assert!(s.contains("{<a6>, <b7>}"), "{s}");
        assert!(s.contains("[keep ]"), "{s}");
    }

    #[test]
    fn nondeterminism_figure_computes_reduction() {
        let t = fig9_nondeterminism(&[fake()], &[]);
        assert!(t.to_csv().contains("kmeans,8,10,6,40.0"));
    }
}
