//! The SynQuake pipeline: train on `4worst_case` + `4moving`, test on
//! `4quadrants` and `4center_spread6` (Section VIII of the paper).

use gstm_core::prelude::*;
use gstm_core::{analyzer, metrics};
use gstm_libtm::{LibTm, LibTmConfig};
use gstm_synquake::{run_game, GameConfig, QuestLayout};
use std::sync::Arc;

/// Parameters of one SynQuake experiment.
#[derive(Clone, Copy, Debug)]
pub struct GameExperimentConfig {
    /// Worker threads (paper: 8 and 16).
    pub threads: u16,
    /// Players (paper: 1000).
    pub players: u32,
    /// Training frames per training quest (paper: 1000).
    pub train_frames: u64,
    /// Test frames per test quest (paper: 10000).
    pub test_frames: u64,
    /// Interleave-injection exponent.
    pub yield_k: Option<u32>,
    /// Guidance tunables.
    pub guidance: GuidanceConfig,
    /// Input seed.
    pub seed: u64,
}

impl GameExperimentConfig {
    /// A scaled-down default for this host (the paper's frame counts are
    /// scaled by ~20×; shapes are preserved, see EXPERIMENTS.md).
    pub fn quick(threads: u16) -> Self {
        GameExperimentConfig {
            threads,
            players: 192,
            train_frames: 48,
            test_frames: 96,
            yield_k: Some(2),
            guidance: GuidanceConfig::default(),
            seed: 0x9a3e,
        }
    }
}

/// Per-quest measurements under one mode.
#[derive(Clone, Debug)]
pub struct GameModeMeasurement {
    /// Per-frame processing times, seconds.
    pub frame_secs: Vec<f64>,
    /// Abort ratio (aborts / (aborts + commits)).
    pub abort_ratio: f64,
    /// Total processing time.
    pub total_secs: f64,
    /// World-audit failures (must be 0).
    pub audit_failures: usize,
}

/// Results for one test quest.
#[derive(Clone, Debug)]
pub struct GameQuestResult {
    /// The test quest.
    pub quest: QuestLayout,
    /// Unguided measurement.
    pub default_m: GameModeMeasurement,
    /// Guided measurement.
    pub guided_m: GameModeMeasurement,
}

impl GameQuestResult {
    /// Percentage improvement in frame-time standard deviation
    /// (Figures 11a/12a).
    pub fn frame_variance_improvement_pct(&self) -> f64 {
        metrics::pct_improvement(
            metrics::std_dev(&self.default_m.frame_secs),
            metrics::std_dev(&self.guided_m.frame_secs),
        )
    }

    /// Percentage reduction in abort ratio (Figures 11b/12b).
    pub fn abort_reduction_pct(&self) -> f64 {
        metrics::pct_improvement(self.default_m.abort_ratio, self.guided_m.abort_ratio)
    }

    /// Slowdown (×) of guided over default (Figures 11c/12c; below 1.0 is
    /// a speedup, which the paper observes at 8 threads).
    pub fn slowdown(&self) -> f64 {
        metrics::slowdown(self.default_m.total_secs, self.guided_m.total_secs)
    }
}

/// Everything the SynQuake pipeline produced at one thread count.
#[derive(Clone, Debug)]
pub struct GameExperiment {
    /// Worker threads.
    pub threads: u16,
    /// States in the model trained on the two training quests.
    pub model_states: usize,
    /// Analyzer report (Table V).
    pub analyzer: AnalyzerReport,
    /// Results for `4quadrants` (Figure 11).
    pub quadrants: GameQuestResult,
    /// Results for `4center_spread6` (Figure 12).
    pub center_spread: GameQuestResult,
}

fn tm_config(cfg: &GameExperimentConfig) -> LibTmConfig {
    LibTmConfig {
        yield_prob_log2: cfg.yield_k,
        ..LibTmConfig::default()
    }
}

fn game_config(cfg: &GameExperimentConfig, quest: QuestLayout, frames: u64) -> GameConfig {
    GameConfig {
        threads: cfg.threads,
        players: cfg.players,
        frames,
        quest,
        seed: cfg.seed,
        ..GameConfig::default()
    }
}

fn play<H: GuidanceHook + 'static>(
    cfg: &GameExperimentConfig,
    quest: QuestLayout,
    frames: u64,
    hook: Arc<H>,
) -> GameModeMeasurement {
    let tm = LibTm::with_hook(hook, tm_config(cfg));
    let r = run_game(&tm, &game_config(cfg, quest, frames));
    let stats = r.merged_stats();
    GameModeMeasurement {
        total_secs: r.frame_secs.iter().sum(),
        frame_secs: r.frame_secs,
        abort_ratio: stats.abort_hist.abort_ratio(),
        audit_failures: r.audit_failures,
    }
}

/// Run the full SynQuake pipeline at one thread count.
pub fn run_game_experiment(cfg: &GameExperimentConfig) -> GameExperiment {
    // ---- Train on 4worst_case and 4moving ----
    let recorder = Arc::new(RecorderHook::new());
    let mut train_runs = Vec::new();
    for quest in [QuestLayout::WorstCase4, QuestLayout::Moving4] {
        let _ = play(cfg, quest, cfg.train_frames, recorder.clone());
        train_runs.push(recorder.take_run());
    }
    let tsa = Tsa::from_runs(&train_runs);
    let model_states = tsa.num_states();
    let model = Arc::new(GuidedModel::build(tsa, &cfg.guidance));
    let analyzer_report = analyzer::analyze_with(&model, &cfg.guidance);

    // ---- Test on 4quadrants and 4center_spread6 ----
    let test = |quest: QuestLayout| -> GameQuestResult {
        let default_m = play(cfg, quest, cfg.test_frames, Arc::new(NoopHook));
        let guided_m = play(
            cfg,
            quest,
            cfg.test_frames,
            Arc::new(GuidedHook::new(model.clone(), cfg.guidance)),
        );
        GameQuestResult {
            quest,
            default_m,
            guided_m,
        }
    };
    let quadrants = test(QuestLayout::Quadrants4);
    let center_spread = test(QuestLayout::CenterSpread6);

    GameExperiment {
        threads: cfg.threads,
        model_states,
        analyzer: analyzer_report,
        quadrants,
        center_spread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn game_pipeline_runs_end_to_end() {
        let cfg = GameExperimentConfig {
            threads: 2,
            players: 32,
            train_frames: 10,
            test_frames: 12,
            yield_k: Some(3),
            guidance: GuidanceConfig::default(),
            seed: 4,
        };
        let e = run_game_experiment(&cfg);
        assert!(e.model_states > 0);
        assert_eq!(e.quadrants.default_m.frame_secs.len(), 12);
        assert_eq!(e.quadrants.default_m.audit_failures, 0);
        assert_eq!(e.quadrants.guided_m.audit_failures, 0);
        assert_eq!(e.center_spread.quest, QuestLayout::CenterSpread6);
        assert!(e.quadrants.slowdown() > 0.0);
    }
}
