//! Rendering helpers: fixed-width ASCII tables, CSV emission, and
//! telemetry artifact files (Prometheus exposition, JSONL trace, chrome
//! trace).

use crate::experiment::BenchExperiment;
use gstm_core::Telemetry;
use std::fmt::Write as _;
use std::path::Path;

/// A simple fixed-width table renderer.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are already formatted).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to an ASCII string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(s, " {cell:<w$} |", w = w);
            }
            let _ = writeln!(out, "{s}");
        };
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let _ = writeln!(out, "{sep}");
        line(&mut out, &self.header);
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            line(&mut out, row);
        }
        let _ = writeln!(out, "{sep}");
        out
    }

    /// Render to CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV form into `dir/name.csv` (creating `dir`).
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// Write one experiment's telemetry artifacts into `dir` (creating it):
/// `{stem}.prom` (Prometheus text exposition), `{stem}.jsonl` (one trace
/// event per line), and `{stem}.trace.json` (chrome://tracing / Perfetto
/// format). Returns the paths written.
pub fn save_telemetry(
    dir: &Path,
    stem: &str,
    tel: &Telemetry,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let prom = dir.join(format!("{stem}.prom"));
    std::fs::write(&prom, tel.snapshot().render_prometheus())?;
    let mut written = vec![prom];
    if tel.trace_enabled() {
        let events = tel.trace_events();
        let jsonl = dir.join(format!("{stem}.jsonl"));
        std::fs::write(&jsonl, gstm_core::telemetry::export_jsonl(&events))?;
        written.push(jsonl);
        let chrome = dir.join(format!("{stem}.trace.json"));
        std::fs::write(&chrome, gstm_core::telemetry::export_chrome_trace(&events))?;
        written.push(chrome);
    }
    Ok(written)
}

/// Write the ops plane's end-of-campaign artifacts into `dir` (creating
/// it): `ops.prom` — the frozen `/metrics` body (cumulative exposition
/// plus the window-partition and SLO families; byte-identical to any
/// scrape taken after the campaign ended) — and one `incident<N>.json`
/// flight-recorder dump per incident. Returns the paths written.
pub fn save_ops(
    dir: &Path,
    plane: &gstm_core::ops::OpsPlane,
    frozen: &str,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let prom = dir.join("ops.prom");
    std::fs::write(&prom, frozen)?;
    let mut written = vec![prom];
    for inc in plane.incidents() {
        let path = dir.join(format!("incident{}.json", inc.seq));
        std::fs::write(&path, &inc.json)?;
        written.push(path);
    }
    Ok(written)
}

/// Write the guided phase's per-run accounting next to the telemetry
/// artifacts (creating `dir`): `<bench>_<threads>t_runs.csv` with one
/// row per guided run per thread (`run,thread,secs,commits,aborts`) and
/// `<bench>_<threads>t_guided_summary.csv` with the harness-computed
/// cross-run metrics (`metric,thread,value` — per-thread execution-time
/// standard deviation and abort-tail metric, plus the scalar
/// non-determinism and commit/abort totals). `gstm-analyze` recomputes
/// the same quantities from the exported telemetry and cross-checks
/// them against these files. Returns the paths written.
pub fn save_run_metrics(
    dir: &Path,
    exp: &BenchExperiment,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let g = &exp.guided_m;
    let mut runs = Table::new("runs", &["run", "thread", "secs", "commits", "aborts"]);
    for (r, (times, hists)) in g.per_thread_times.iter().zip(&g.per_run_hists).enumerate() {
        for (t, (secs, hist)) in times.iter().zip(hists).enumerate() {
            runs.row(vec![
                r.to_string(),
                t.to_string(),
                format!("{secs:.9}"),
                hist.total_commits().to_string(),
                hist.total_aborts().to_string(),
            ]);
        }
    }
    let mut summary = Table::new("guided_summary", &["metric", "thread", "value"]);
    for (t, sd) in g.per_thread_std_dev().iter().enumerate() {
        summary.row(vec!["std_dev_secs".into(), t.to_string(), format!("{sd:.9}")]);
    }
    for (t, tail) in g.per_thread_tails().iter().enumerate() {
        summary.row(vec!["tail_metric".into(), t.to_string(), tail.to_string()]);
    }
    summary.row(vec!["non_determinism".into(), String::new(), g.non_determinism.to_string()]);
    summary.row(vec!["commits".into(), String::new(), g.total_commits().to_string()]);
    summary.row(vec!["aborts".into(), String::new(), g.total_aborts().to_string()]);
    let stem = format!("{}_{}t", exp.name, exp.threads);
    let runs_path = dir.join(format!("{stem}_runs.csv"));
    std::fs::write(&runs_path, runs.to_csv())?;
    let summary_path = dir.join(format!("{stem}_guided_summary.csv"));
    std::fs::write(&summary_path, summary.to_csv())?;
    // Campaign casualties (always written — an empty table means every
    // repetition completed, a missing file means a pre-chaos artifact
    // dir). One row per panicked repetition with its phase and cause;
    // `gstm-analyze` folds these into the degradation section of the
    // verdict.
    let mut failures = Table::new("failures", &["phase", "rep", "cause"]);
    for (phase, m) in [("default", &exp.default_m), ("guided", &exp.guided_m)] {
        for f in &m.failed {
            failures.row(vec![phase.into(), f.rep.to_string(), f.cause.clone()]);
        }
    }
    let failures_path = dir.join(format!("{stem}_failures.csv"));
    std::fs::write(&failures_path, failures.to_csv())?;
    Ok(vec![runs_path, summary_path, failures_path])
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 4 decimals (timings).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn save_csv_writes_file() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("gstm_report_test");
        t.save_csv(&dir, "demo").unwrap();
        let body = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(body, "a\n1\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
