//! Sorted transactional linked list (STAMP `list.c`).

use gstm_tl2::{TVar, TxResult, Txn};
use std::sync::Arc;

type Link<V> = Option<Arc<Node<V>>>;

struct Node<V> {
    key: u64,
    value: TVar<V>,
    next: TVar<Link<V>>,
}

/// A singly-linked list kept sorted by `u64` key, with set/map semantics:
/// at most one node per key.
pub struct TList<V> {
    head: TVar<Link<V>>,
    len: TVar<u64>,
}

impl<V: Clone + Send + Sync + 'static> Default for TList<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Clone for TList<V> {
    fn clone(&self) -> Self {
        TList {
            head: self.head.clone(),
            len: self.len.clone(),
        }
    }
}

impl<V: Clone + Send + Sync + 'static> TList<V> {
    /// An empty list.
    pub fn new() -> Self {
        TList {
            head: TVar::new(None),
            len: TVar::new(0),
        }
    }

    /// Number of entries.
    pub fn len(&self, tx: &mut Txn) -> TxResult<u64> {
        tx.read(&self.len)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self, tx: &mut Txn) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Walk to the insertion point of `key`: returns the link TVar whose
    /// target is the first node with `node.key >= key` (or the tail link),
    /// plus that node if its key equals `key`.
    fn locate(
        &self,
        tx: &mut Txn,
        key: u64,
    ) -> TxResult<(TVar<Link<V>>, Link<V>)> {
        let mut link = self.head.clone();
        loop {
            let cur = tx.read(&link)?;
            match cur {
                Some(ref node) if node.key < key => {
                    let next = node.next.clone();
                    link = next;
                }
                _ => return Ok((link, cur)),
            }
        }
    }

    /// Insert `key -> value`; returns `false` (leaving the list unchanged)
    /// if the key is already present.
    pub fn insert(&self, tx: &mut Txn, key: u64, value: V) -> TxResult<bool> {
        let (link, found) = self.locate(tx, key)?;
        if let Some(ref node) = found {
            if node.key == key {
                return Ok(false);
            }
        }
        let node = Arc::new(Node {
            key,
            value: TVar::new(value),
            next: TVar::new(found),
        });
        tx.write(&link, Some(node))?;
        tx.modify(&self.len, |n| n + 1)?;
        Ok(true)
    }

    /// Insert `key -> value`, overwriting any existing value. Returns the
    /// previous value if the key was present.
    pub fn upsert(&self, tx: &mut Txn, key: u64, value: V) -> TxResult<Option<V>> {
        let (link, found) = self.locate(tx, key)?;
        if let Some(ref node) = found {
            if node.key == key {
                let old = tx.read(&node.value)?;
                tx.write(&node.value, value)?;
                return Ok(Some(old));
            }
        }
        let node = Arc::new(Node {
            key,
            value: TVar::new(value),
            next: TVar::new(found),
        });
        tx.write(&link, Some(node))?;
        tx.modify(&self.len, |n| n + 1)?;
        Ok(None)
    }

    /// Look up the value stored under `key`.
    pub fn get(&self, tx: &mut Txn, key: u64) -> TxResult<Option<V>> {
        let (_, found) = self.locate(tx, key)?;
        match found {
            Some(ref node) if node.key == key => Ok(Some(tx.read(&node.value)?)),
            _ => Ok(None),
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, tx: &mut Txn, key: u64) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&self, tx: &mut Txn, key: u64) -> TxResult<Option<V>> {
        let (link, found) = self.locate(tx, key)?;
        match found {
            Some(ref node) if node.key == key => {
                let successor = tx.read(&node.next)?;
                tx.write(&link, successor)?;
                tx.modify(&self.len, |n| n - 1)?;
                Ok(Some(tx.read(&node.value)?))
            }
            _ => Ok(None),
        }
    }

    /// Collect all `(key, value)` pairs in key order.
    pub fn snapshot(&self, tx: &mut Txn) -> TxResult<Vec<(u64, V)>> {
        let mut out = Vec::new();
        let mut cur = tx.read(&self.head)?;
        while let Some(node) = cur {
            out.push((node.key, tx.read(&node.value)?));
            cur = tx.read(&node.next)?;
        }
        Ok(out)
    }

    /// Smallest key ≥ `key`, with its value.
    pub fn ceiling(&self, tx: &mut Txn, key: u64) -> TxResult<Option<(u64, V)>> {
        let (_, found) = self.locate(tx, key)?;
        match found {
            Some(ref node) => Ok(Some((node.key, tx.read(&node.value)?))),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{ThreadId, TxnId};
    use gstm_tl2::{Stm, StmConfig};
    use std::sync::Arc;

    fn with_tx<R>(f: impl FnMut(&mut Txn) -> TxResult<R>) -> R {
        let stm = Stm::new(StmConfig::default());
        let mut ctx = stm.register();
        ctx.atomically(TxnId(0), f)
    }

    #[test]
    fn insert_get_remove() {
        let list = TList::new();
        let out = with_tx(|tx| {
            assert!(list.insert(tx, 5, "five")?);
            assert!(list.insert(tx, 1, "one")?);
            assert!(list.insert(tx, 9, "nine")?);
            assert!(!list.insert(tx, 5, "dup")?);
            assert_eq!(list.get(tx, 5)?, Some("five"));
            assert_eq!(list.get(tx, 7)?, None);
            assert_eq!(list.remove(tx, 1)?, Some("one"));
            assert_eq!(list.remove(tx, 1)?, None);
            assert_eq!(list.len(tx)?, 2);
            list.snapshot(tx)
        });
        assert_eq!(out, vec![(5, "five"), (9, "nine")]);
    }

    #[test]
    fn snapshot_is_sorted_after_random_inserts() {
        let list = TList::new();
        let keys = [42u64, 7, 99, 3, 55, 21, 80, 13];
        let snap = with_tx(|tx| {
            for &k in &keys {
                list.insert(tx, k, k * 2)?;
            }
            list.snapshot(tx)
        });
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        assert_eq!(snap.iter().map(|&(k, _)| k).collect::<Vec<_>>(), sorted);
        assert!(snap.iter().all(|&(k, v)| v == k * 2));
    }

    #[test]
    fn upsert_overwrites() {
        let list = TList::new();
        with_tx(|tx| {
            assert_eq!(list.upsert(tx, 4, 10)?, None);
            assert_eq!(list.upsert(tx, 4, 20)?, Some(10));
            assert_eq!(list.get(tx, 4)?, Some(20));
            assert_eq!(list.len(tx)?, 1);
            Ok(())
        });
    }

    #[test]
    fn ceiling_finds_next_key() {
        let list = TList::new();
        with_tx(|tx| {
            for k in [10u64, 20, 30] {
                list.insert(tx, k, ())?;
            }
            assert_eq!(list.ceiling(tx, 15)?.map(|(k, _)| k), Some(20));
            assert_eq!(list.ceiling(tx, 20)?.map(|(k, _)| k), Some(20));
            assert_eq!(list.ceiling(tx, 31)?, None);
            Ok(())
        });
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let list = TList::new();
        let threads = 4u16;
        let per = 50u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let list = list.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    for i in 0..per {
                        let key = t as u64 * 1000 + i;
                        ctx.atomically(TxnId(0), |tx| list.insert(tx, key, key));
                    }
                });
            }
        });
        let stm2 = Stm::new(StmConfig::default());
        let mut ctx = stm2.register();
        let snap = ctx.atomically(TxnId(0), |tx| list.snapshot(tx));
        assert_eq!(snap.len(), threads as usize * per as usize);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn concurrent_same_key_insert_single_winner() {
        let stm = Stm::new(StmConfig::with_yield_injection(1));
        let list: TList<u16> = TList::new();
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let stm = Arc::clone(&stm);
                let list = list.clone();
                let winners = &winners;
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    let won = ctx.atomically(TxnId(0), |tx| list.insert(tx, 7, t));
                    if won {
                        winners.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(winners.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
