//! Transactional bitmap (STAMP `bitmap.c`).

use gstm_tl2::{TVar, TxResult, Txn};
use std::sync::Arc;

/// A fixed-size bitmap stored as transactional 64-bit words. Transactions
/// touching bits in different words never conflict.
pub struct TBitmap {
    words: Arc<[TVar<u64>]>,
    num_bits: usize,
}

impl Clone for TBitmap {
    fn clone(&self) -> Self {
        TBitmap {
            words: Arc::clone(&self.words),
            num_bits: self.num_bits,
        }
    }
}

impl TBitmap {
    /// A bitmap of `num_bits` bits, all clear.
    pub fn new(num_bits: usize) -> Self {
        let n_words = num_bits.div_ceil(64).max(1);
        TBitmap {
            words: (0..n_words).map(|_| TVar::new(0u64)).collect(),
            num_bits,
        }
    }

    /// Number of addressable bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    #[inline]
    fn index(&self, bit: usize) -> (usize, u64) {
        assert!(bit < self.num_bits, "bit {bit} out of range");
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Read bit `bit`.
    pub fn test(&self, tx: &mut Txn, bit: usize) -> TxResult<bool> {
        let (w, mask) = self.index(bit);
        Ok(tx.read(&self.words[w])? & mask != 0)
    }

    /// Set bit `bit`; returns the previous value.
    pub fn set(&self, tx: &mut Txn, bit: usize) -> TxResult<bool> {
        let (w, mask) = self.index(bit);
        let old = tx.read(&self.words[w])?;
        tx.write(&self.words[w], old | mask)?;
        Ok(old & mask != 0)
    }

    /// Clear bit `bit`; returns the previous value.
    pub fn clear(&self, tx: &mut Txn, bit: usize) -> TxResult<bool> {
        let (w, mask) = self.index(bit);
        let old = tx.read(&self.words[w])?;
        tx.write(&self.words[w], old & !mask)?;
        Ok(old & mask != 0)
    }

    /// Atomically find the first clear bit at or after `from`, set it, and
    /// return its index. `None` when the map is full past `from`.
    pub fn find_clear_and_set(&self, tx: &mut Txn, from: usize) -> TxResult<Option<usize>> {
        let mut bit = from;
        while bit < self.num_bits {
            let (w, _) = self.index(bit);
            let word = tx.read(&self.words[w])?;
            // Scan this word from `bit`'s offset.
            let start = bit % 64;
            let masked = word | ((1u64 << start) - 1).wrapping_mul((start != 0) as u64);
            if masked != u64::MAX {
                let free = masked.trailing_ones() as usize;
                let idx = w * 64 + free;
                if idx < self.num_bits {
                    tx.write(&self.words[w], word | (1u64 << free))?;
                    return Ok(Some(idx));
                }
                return Ok(None);
            }
            bit = (w + 1) * 64;
        }
        Ok(None)
    }

    /// Number of set bits.
    pub fn count_ones(&self, tx: &mut Txn) -> TxResult<u32> {
        let mut n = 0;
        for w in self.words.iter() {
            n += tx.read(w)?.count_ones();
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{ThreadId, TxnId};
    use gstm_tl2::{Stm, StmConfig};
    use std::sync::Arc;

    fn with_tx<R>(f: impl FnMut(&mut Txn) -> TxResult<R>) -> R {
        let stm = Stm::new(StmConfig::default());
        let mut ctx = stm.register();
        ctx.atomically(TxnId(0), f)
    }

    #[test]
    fn set_test_clear() {
        let bm = TBitmap::new(130);
        with_tx(|tx| {
            assert!(!bm.test(tx, 0)?);
            assert!(!bm.set(tx, 0)?);
            assert!(bm.set(tx, 0)?);
            assert!(bm.test(tx, 0)?);
            assert!(!bm.set(tx, 129)?); // last bit, third word
            assert_eq!(bm.count_ones(tx)?, 2);
            assert!(bm.clear(tx, 0)?);
            assert!(!bm.clear(tx, 0)?);
            assert_eq!(bm.count_ones(tx)?, 1);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let bm = TBitmap::new(10);
        with_tx(|tx| bm.test(tx, 10));
    }

    #[test]
    fn find_clear_and_set_scans_forward() {
        let bm = TBitmap::new(70);
        with_tx(|tx| {
            for bit in 0..64 {
                bm.set(tx, bit)?;
            }
            assert_eq!(bm.find_clear_and_set(tx, 0)?, Some(64));
            assert_eq!(bm.find_clear_and_set(tx, 0)?, Some(65));
            assert_eq!(bm.find_clear_and_set(tx, 68)?, Some(68));
            // Fill the rest.
            for bit in [66, 67, 69] {
                bm.set(tx, bit)?;
            }
            assert_eq!(bm.find_clear_and_set(tx, 0)?, None);
            Ok(())
        });
    }

    #[test]
    fn concurrent_allocation_is_collision_free() {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let bm = TBitmap::new(256);
        let mut all: Vec<usize> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..4u16 {
                let stm = Arc::clone(&stm);
                let bm = bm.clone();
                handles.push(s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    let mut got = Vec::new();
                    for _ in 0..50 {
                        if let Some(bit) =
                            ctx.atomically(TxnId(0), |tx| bm.find_clear_and_set(tx, 0))
                        {
                            got.push(bit);
                        }
                    }
                    got
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(all.len(), 200);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 200, "every allocated bit must be unique");
    }
}
