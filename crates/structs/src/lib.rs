//! # gstm-structs — transactional data structures over gstm-tl2
//!
//! Rust ports of the TM-aware containers the STAMP benchmarks are built
//! from (the C suite ships `list.c`, `rbtree.c`, `hashtable.c`, `queue.c`,
//! `vector.c`, `bitmap.c` with `TM_*` accessors). Every operation takes a
//! `&mut Txn` and composes inside a single atomic region; conflict
//! detection falls out of the underlying [`gstm_tl2::TVar`] protocol.
//!
//! * [`TList`] — sorted singly-linked list with set/map semantics.
//! * [`TMap`] — unbalanced binary search tree (STAMP's red-black tree
//!   stand-in; keys in these workloads are uniformly random, so expected
//!   depth is O(log n) without rotations — and fewer rotations means the
//!   conflict footprint matches the workload, not the balancing scheme).
//! * [`THashMap`] — fixed-bucket chained hash table.
//! * [`TQueue`] — FIFO queue.
//! * [`TVector`] — fixed-capacity vector with transactional slots.
//! * [`TBitmap`] — bitmap with transactional words.
//!
//! ## Example
//!
//! ```
//! use gstm_structs::{TMap, TQueue};
//! use gstm_tl2::{Stm, StmConfig};
//! use gstm_core::TxnId;
//!
//! let stm = Stm::new(StmConfig::default());
//! let inventory: TMap<u32> = TMap::new();
//! let orders: TQueue<u64> = TQueue::new();
//! let mut ctx = stm.register();
//! // One atomic region spanning two containers.
//! ctx.atomically(TxnId(0), |tx| {
//!     inventory.insert(tx, 42, 10)?;
//!     inventory.update(tx, 42, |stock| stock - 1)?;
//!     orders.push(tx, 42)
//! });
//! let (stock, next) = ctx.atomically(TxnId(1), |tx| {
//!     Ok((inventory.get(tx, 42)?, orders.pop(tx)?))
//! });
//! assert_eq!(stock, Some(9));
//! assert_eq!(next, Some(42));
//! ```

pub mod bitmap;
pub mod hashmap;
pub mod list;
pub mod map;
pub mod queue;
pub mod vector;

pub use bitmap::TBitmap;
pub use hashmap::THashMap;
pub use list::TList;
pub use map::TMap;
pub use queue::TQueue;
pub use vector::TVector;
