//! Transactional FIFO queue (STAMP `queue.c`).

use gstm_tl2::{TVar, TxResult, Txn};
use std::sync::Arc;

type Link<V> = Option<Arc<Node<V>>>;

struct Node<V> {
    value: V,
    next: TVar<Link<V>>,
}

/// A FIFO queue with transactional head/tail pointers.
///
/// Values are stored immutably in their nodes (STAMP queues move owned
/// payloads, they do not mutate them in place).
pub struct TQueue<V> {
    head: TVar<Link<V>>,
    tail: TVar<Link<V>>,
    len: TVar<u64>,
}

impl<V: Clone + Send + Sync + 'static> Default for TQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Clone for TQueue<V> {
    fn clone(&self) -> Self {
        TQueue {
            head: self.head.clone(),
            tail: self.tail.clone(),
            len: self.len.clone(),
        }
    }
}

impl<V: Clone + Send + Sync + 'static> TQueue<V> {
    /// An empty queue.
    pub fn new() -> Self {
        TQueue {
            head: TVar::new(None),
            tail: TVar::new(None),
            len: TVar::new(0),
        }
    }

    /// Number of queued values.
    pub fn len(&self, tx: &mut Txn) -> TxResult<u64> {
        tx.read(&self.len)
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self, tx: &mut Txn) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Append `value` at the tail.
    pub fn push(&self, tx: &mut Txn, value: V) -> TxResult<()> {
        let node = Arc::new(Node {
            value,
            next: TVar::new(None),
        });
        match tx.read(&self.tail)? {
            Some(tail) => {
                tx.write(&tail.next, Some(Arc::clone(&node)))?;
                tx.write(&self.tail, Some(node))?;
            }
            None => {
                tx.write(&self.head, Some(Arc::clone(&node)))?;
                tx.write(&self.tail, Some(node))?;
            }
        }
        tx.modify(&self.len, |n| n + 1)?;
        Ok(())
    }

    /// Remove and return the head value, or `None` if empty.
    pub fn pop(&self, tx: &mut Txn) -> TxResult<Option<V>> {
        match tx.read(&self.head)? {
            Some(head) => {
                let next = tx.read(&head.next)?;
                if next.is_none() {
                    tx.write(&self.tail, None)?;
                }
                tx.write(&self.head, next)?;
                tx.modify(&self.len, |n| n - 1)?;
                Ok(Some(head.value.clone()))
            }
            None => Ok(None),
        }
    }

    /// Remove and return the head value, retrying the whole transaction if
    /// the queue is empty (blocks until a producer pushes).
    pub fn pop_or_retry(&self, tx: &mut Txn) -> TxResult<V> {
        match self.pop(tx)? {
            Some(v) => Ok(v),
            None => Err(tx.retry()),
        }
    }

    /// Peek at the head value without removing it.
    pub fn peek(&self, tx: &mut Txn) -> TxResult<Option<V>> {
        Ok(tx.read(&self.head)?.map(|n| n.value.clone()))
    }

    /// Drain everything into a vector (head first).
    pub fn drain(&self, tx: &mut Txn) -> TxResult<Vec<V>> {
        let mut out = Vec::new();
        while let Some(v) = self.pop(tx)? {
            out.push(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{ThreadId, TxnId};
    use gstm_tl2::{Stm, StmConfig};
    use std::sync::Arc;

    fn with_tx<R>(f: impl FnMut(&mut Txn) -> TxResult<R>) -> R {
        let stm = Stm::new(StmConfig::default());
        let mut ctx = stm.register();
        ctx.atomically(TxnId(0), f)
    }

    #[test]
    fn fifo_order() {
        let q = TQueue::new();
        let out = with_tx(|tx| {
            for i in 0..5 {
                q.push(tx, i)?;
            }
            assert_eq!(q.peek(tx)?, Some(0));
            q.drain(tx)
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_pop_returns_none_and_tail_resets() {
        let q = TQueue::new();
        with_tx(|tx| {
            assert_eq!(q.pop(tx)?, None::<u32>);
            q.push(tx, 1)?;
            assert_eq!(q.pop(tx)?, Some(1));
            assert_eq!(q.pop(tx)?, None);
            // Tail must have been cleared: pushing again works.
            q.push(tx, 2)?;
            assert_eq!(q.pop(tx)?, Some(2));
            assert!(q.is_empty(tx)?);
            Ok(())
        });
    }

    #[test]
    fn interleaved_push_pop_keeps_len() {
        let q = TQueue::new();
        with_tx(|tx| {
            q.push(tx, 'a')?;
            q.push(tx, 'b')?;
            assert_eq!(q.pop(tx)?, Some('a'));
            q.push(tx, 'c')?;
            assert_eq!(q.len(tx)?, 2);
            assert_eq!(q.drain(tx)?, vec!['b', 'c']);
            Ok(())
        });
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let q: TQueue<u64> = TQueue::new();
        let produced: u64 = 4 * 100;
        let consumed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let stm = Arc::clone(&stm);
                let q = q.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    for i in 0..100u64 {
                        ctx.atomically(TxnId(0), |tx| q.push(tx, t as u64 * 1000 + i));
                    }
                });
            }
            for t in 4..6u16 {
                let stm = Arc::clone(&stm);
                let q = q.clone();
                let consumed = &consumed;
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    let mut misses = 0;
                    while misses < 1000 {
                        let got = ctx.atomically(TxnId(1), |tx| q.pop(tx));
                        match got {
                            Some(_) => {
                                consumed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                                misses = 0;
                            }
                            None => {
                                misses += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
        });
        // Whatever the consumers missed must still be in the queue.
        let stm2 = Stm::new(StmConfig::default());
        let mut ctx = stm2.register();
        let remaining = ctx.atomically(TxnId(0), |tx| q.len(tx));
        assert_eq!(
            consumed.load(std::sync::atomic::Ordering::SeqCst) + remaining,
            produced
        );
    }
}
