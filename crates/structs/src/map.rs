//! Transactional ordered map (STAMP `rbtree.c` stand-in).
//!
//! An unbalanced binary search tree over `u64` keys. STAMP's workloads
//! draw keys (almost) uniformly at random, so the expected depth is
//! O(log n) without rebalancing; skipping rotations keeps each
//! transaction's conflict footprint equal to its search path, which is the
//! access pattern the benchmarks are designed around.

use gstm_tl2::{TVar, TxResult, Txn};
use std::sync::Arc;

type Link<V> = Option<Arc<Node<V>>>;

struct Node<V> {
    key: u64,
    value: TVar<V>,
    left: TVar<Link<V>>,
    right: TVar<Link<V>>,
}

/// A transactional ordered map keyed by `u64`.
pub struct TMap<V> {
    root: TVar<Link<V>>,
    len: TVar<u64>,
}

impl<V: Clone + Send + Sync + 'static> Default for TMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Clone for TMap<V> {
    fn clone(&self) -> Self {
        TMap {
            root: self.root.clone(),
            len: self.len.clone(),
        }
    }
}

impl<V: Clone + Send + Sync + 'static> TMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        TMap {
            root: TVar::new(None),
            len: TVar::new(0),
        }
    }

    /// Number of entries.
    pub fn len(&self, tx: &mut Txn) -> TxResult<u64> {
        tx.read(&self.len)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self, tx: &mut Txn) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Walk to `key`: the link TVar that holds (or would hold) the node
    /// with that key, plus the node if present.
    fn locate(&self, tx: &mut Txn, key: u64) -> TxResult<(TVar<Link<V>>, Link<V>)> {
        let mut link = self.root.clone();
        loop {
            let cur = tx.read(&link)?;
            match cur {
                Some(ref node) if node.key != key => {
                    link = if key < node.key {
                        node.left.clone()
                    } else {
                        node.right.clone()
                    };
                }
                _ => return Ok((link, cur)),
            }
        }
    }

    /// Insert `key -> value`; returns `false` if the key already exists
    /// (value unchanged).
    pub fn insert(&self, tx: &mut Txn, key: u64, value: V) -> TxResult<bool> {
        let (link, found) = self.locate(tx, key)?;
        if found.is_some() {
            return Ok(false);
        }
        let node = Arc::new(Node {
            key,
            value: TVar::new(value),
            left: TVar::new(None),
            right: TVar::new(None),
        });
        tx.write(&link, Some(node))?;
        tx.modify(&self.len, |n| n + 1)?;
        Ok(true)
    }

    /// Insert or overwrite; returns the previous value if any.
    pub fn upsert(&self, tx: &mut Txn, key: u64, value: V) -> TxResult<Option<V>> {
        let (link, found) = self.locate(tx, key)?;
        if let Some(ref node) = found {
            let old = tx.read(&node.value)?;
            tx.write(&node.value, value)?;
            return Ok(Some(old));
        }
        let node = Arc::new(Node {
            key,
            value: TVar::new(value),
            left: TVar::new(None),
            right: TVar::new(None),
        });
        tx.write(&link, Some(node))?;
        tx.modify(&self.len, |n| n + 1)?;
        Ok(None)
    }

    /// Look up `key`.
    pub fn get(&self, tx: &mut Txn, key: u64) -> TxResult<Option<V>> {
        let (_, found) = self.locate(tx, key)?;
        match found {
            Some(ref node) => Ok(Some(tx.read(&node.value)?)),
            None => Ok(None),
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, tx: &mut Txn, key: u64) -> TxResult<bool> {
        let (_, found) = self.locate(tx, key)?;
        Ok(found.is_some())
    }

    /// Apply `f` to the value stored at `key`, if present. Returns whether
    /// the key existed.
    pub fn update(&self, tx: &mut Txn, key: u64, f: impl FnOnce(V) -> V) -> TxResult<bool> {
        let (_, found) = self.locate(tx, key)?;
        match found {
            Some(ref node) => {
                let v = tx.read(&node.value)?;
                tx.write(&node.value, f(v))?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&self, tx: &mut Txn, key: u64) -> TxResult<Option<V>> {
        let (link, found) = self.locate(tx, key)?;
        let node = match found {
            Some(node) => node,
            None => return Ok(None),
        };
        let value = tx.read(&node.value)?;
        let left = tx.read(&node.left)?;
        let right = tx.read(&node.right)?;
        match (left, right) {
            (None, sub) | (sub, None) => {
                // Zero or one child: splice the subtree into the parent link.
                tx.write(&link, sub)?;
            }
            (Some(left), Some(right)) => {
                // Two children: extract the in-order successor (minimum of
                // the right subtree), then rebuild this position with the
                // successor's key/value over the original children.
                let mut succ_link = node.right.clone();
                let mut succ = Arc::clone(&right);
                while let Some(next) = tx.read(&succ.left)? {
                    succ_link = succ.left.clone();
                    succ = next;
                }
                // Unlink the successor (it has no left child by choice).
                let succ_right = tx.read(&succ.right)?;
                tx.write(&succ_link, succ_right)?;
                // Children of the removed position after the unlink.
                let new_right = tx.read(&node.right)?;
                let succ_value = tx.read(&succ.value)?;
                let replacement = Arc::new(Node {
                    key: succ.key,
                    value: TVar::new(succ_value),
                    left: TVar::new(Some(left)),
                    right: TVar::new(new_right),
                });
                tx.write(&link, Some(replacement))?;
            }
        }
        tx.modify(&self.len, |n| n - 1)?;
        Ok(Some(value))
    }

    /// Collect all `(key, value)` pairs in key order.
    pub fn snapshot(&self, tx: &mut Txn) -> TxResult<Vec<(u64, V)>> {
        let mut out = Vec::new();
        // Iterative in-order traversal over transactional links.
        let mut stack: Vec<Arc<Node<V>>> = Vec::new();
        let mut cur = tx.read(&self.root)?;
        loop {
            while let Some(node) = cur {
                cur = tx.read(&node.left)?;
                stack.push(node);
            }
            match stack.pop() {
                Some(node) => {
                    out.push((node.key, tx.read(&node.value)?));
                    cur = tx.read(&node.right)?;
                }
                None => return Ok(out),
            }
        }
    }

    /// Smallest key ≥ `key`, with its value.
    pub fn ceiling(&self, tx: &mut Txn, key: u64) -> TxResult<Option<(u64, V)>> {
        let mut best: Option<Arc<Node<V>>> = None;
        let mut cur = tx.read(&self.root)?;
        while let Some(node) = cur {
            if node.key == key {
                let v = tx.read(&node.value)?;
                return Ok(Some((key, v)));
            }
            if node.key > key {
                cur = tx.read(&node.left)?;
                best = Some(node);
            } else {
                cur = tx.read(&node.right)?;
            }
        }
        match best {
            Some(node) => {
                let v = tx.read(&node.value)?;
                Ok(Some((node.key, v)))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{ThreadId, TxnId};
    use gstm_tl2::{Stm, StmConfig};
    use std::sync::Arc;

    fn with_tx<R>(f: impl FnMut(&mut Txn) -> TxResult<R>) -> R {
        let stm = Stm::new(StmConfig::default());
        let mut ctx = stm.register();
        ctx.atomically(TxnId(0), f)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let map = TMap::new();
        with_tx(|tx| {
            for k in [50u64, 25, 75, 10, 30, 60, 90] {
                assert!(map.insert(tx, k, k as i64)?);
            }
            assert!(!map.insert(tx, 50, -1)?);
            assert_eq!(map.get(tx, 50)?, Some(50));
            assert_eq!(map.get(tx, 11)?, None);
            assert_eq!(map.len(tx)?, 7);
            Ok(())
        });
    }

    #[test]
    fn remove_leaf_one_child_two_children() {
        let map = TMap::new();
        let snap = with_tx(|tx| {
            for k in [50u64, 25, 75, 10, 30, 60, 90, 27, 35] {
                map.insert(tx, k, ())?;
            }
            assert!(map.remove(tx, 10)?.is_some()); // leaf
            assert!(map.remove(tx, 30)?.is_some()); // two children (27, 35)
            assert!(map.remove(tx, 25)?.is_some()); // after removals
            assert!(map.remove(tx, 50)?.is_some()); // root with two children
            assert!(map.remove(tx, 99)?.is_none()); // absent
            map.snapshot(tx)
        });
        let keys: Vec<u64> = snap.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![27, 35, 60, 75, 90]);
    }

    #[test]
    fn snapshot_sorted_under_random_ops() {
        let map = TMap::new();
        let snap = with_tx(|tx| {
            let mut x: u64 = 12345;
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let k = x >> 40;
                if x.is_multiple_of(3) {
                    map.remove(tx, k)?;
                } else {
                    map.upsert(tx, k, k)?;
                }
            }
            map.snapshot(tx)
        });
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn matches_btreemap_model() {
        use std::collections::BTreeMap;
        let map = TMap::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let stm = Stm::new(StmConfig::default());
        let mut ctx = stm.register();
        let mut x: u64 = 999;
        for step in 0..500 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let k = x % 64;
            match step % 4 {
                0 | 1 => {
                    let inserted = ctx.atomically(TxnId(0), |tx| map.insert(tx, k, step));
                    assert_eq!(inserted, !model.contains_key(&k), "insert {k}");
                    model.entry(k).or_insert(step);
                }
                2 => {
                    let removed = ctx.atomically(TxnId(0), |tx| map.remove(tx, k));
                    assert_eq!(removed, model.remove(&k), "remove {k}");
                }
                _ => {
                    let got = ctx.atomically(TxnId(0), |tx| map.get(tx, k));
                    assert_eq!(got, model.get(&k).copied(), "get {k}");
                }
            }
        }
        let snap = ctx.atomically(TxnId(0), |tx| map.snapshot(tx));
        assert_eq!(snap, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn update_mutates_in_place() {
        let map = TMap::new();
        with_tx(|tx| {
            map.insert(tx, 1, 10)?;
            assert!(map.update(tx, 1, |v| v + 5)?);
            assert!(!map.update(tx, 2, |v| v)?);
            assert_eq!(map.get(tx, 1)?, Some(15));
            Ok(())
        });
    }

    #[test]
    fn ceiling_queries() {
        let map = TMap::new();
        with_tx(|tx| {
            for k in [10u64, 20, 30, 40] {
                map.insert(tx, k, ())?;
            }
            assert_eq!(map.ceiling(tx, 5)?.map(|(k, _)| k), Some(10));
            assert_eq!(map.ceiling(tx, 20)?.map(|(k, _)| k), Some(20));
            assert_eq!(map.ceiling(tx, 25)?.map(|(k, _)| k), Some(30));
            assert_eq!(map.ceiling(tx, 41)?, None);
            Ok(())
        });
    }

    #[test]
    fn concurrent_mixed_ops_keep_len_consistent() {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let map: TMap<u64> = TMap::new();
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let stm = Arc::clone(&stm);
                let map = map.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    let mut x = 7919u64.wrapping_mul(t as u64 + 1);
                    for _ in 0..150 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let k = x % 40;
                        if x & 1 == 0 {
                            ctx.atomically(TxnId(0), |tx| map.insert(tx, k, k));
                        } else {
                            ctx.atomically(TxnId(1), |tx| map.remove(tx, k));
                        }
                    }
                });
            }
        });
        let stm2 = Stm::new(StmConfig::default());
        let mut ctx = stm2.register();
        let (snap, len) = ctx.atomically(TxnId(0), |tx| {
            let s = map.snapshot(tx)?;
            let l = map.len(tx)?;
            Ok((s, l))
        });
        assert_eq!(snap.len() as u64, len, "len counter matches contents");
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "still sorted");
    }
}
