//! Fixed-capacity transactional vector (STAMP `vector.c`).

use gstm_tl2::{TVar, TxResult, Txn};
use std::sync::Arc;

/// A vector with a fixed capacity, a transactional length, and one
/// transactional slot per element. Concurrent transactions touching
/// disjoint slots never conflict.
pub struct TVector<V> {
    slots: Arc<[TVar<V>]>,
    len: TVar<usize>,
}

impl<V> Clone for TVector<V> {
    fn clone(&self) -> Self {
        TVector {
            slots: Arc::clone(&self.slots),
            len: self.len.clone(),
        }
    }
}

impl<V: Clone + Send + Sync + 'static> TVector<V> {
    /// An empty vector with room for `capacity` elements, pre-filling the
    /// backing slots with `fill` (slots past `len` are logically absent).
    pub fn with_capacity(capacity: usize, fill: V) -> Self {
        TVector {
            slots: (0..capacity).map(|_| TVar::new(fill.clone())).collect(),
            len: TVar::new(0),
        }
    }

    /// A vector initialized from `values` with the same capacity.
    pub fn from_values(values: Vec<V>) -> Self {
        let n = values.len();
        TVector {
            slots: values.into_iter().map(TVar::new).collect(),
            len: TVar::new(n),
        }
    }

    /// Fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current length.
    pub fn len(&self, tx: &mut Txn) -> TxResult<usize> {
        tx.read(&self.len)
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self, tx: &mut Txn) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Append `value`; returns `false` when at capacity.
    pub fn push(&self, tx: &mut Txn, value: V) -> TxResult<bool> {
        let n = tx.read(&self.len)?;
        if n >= self.slots.len() {
            return Ok(false);
        }
        tx.write(&self.slots[n], value)?;
        tx.write(&self.len, n + 1)?;
        Ok(true)
    }

    /// Remove and return the last element.
    pub fn pop(&self, tx: &mut Txn) -> TxResult<Option<V>> {
        let n = tx.read(&self.len)?;
        if n == 0 {
            return Ok(None);
        }
        let v = tx.read(&self.slots[n - 1])?;
        tx.write(&self.len, n - 1)?;
        Ok(Some(v))
    }

    /// Read slot `i`; `None` if out of bounds.
    pub fn get(&self, tx: &mut Txn, i: usize) -> TxResult<Option<V>> {
        let n = tx.read(&self.len)?;
        if i >= n {
            return Ok(None);
        }
        Ok(Some(tx.read(&self.slots[i])?))
    }

    /// Write slot `i`; returns `false` if out of bounds.
    pub fn set(&self, tx: &mut Txn, i: usize, value: V) -> TxResult<bool> {
        let n = tx.read(&self.len)?;
        if i >= n {
            return Ok(false);
        }
        tx.write(&self.slots[i], value)?;
        Ok(true)
    }

    /// Read-modify-write slot `i`; returns `false` if out of bounds.
    pub fn update(&self, tx: &mut Txn, i: usize, f: impl FnOnce(V) -> V) -> TxResult<bool> {
        let n = tx.read(&self.len)?;
        if i >= n {
            return Ok(false);
        }
        let v = tx.read(&self.slots[i])?;
        tx.write(&self.slots[i], f(v))?;
        Ok(true)
    }

    /// Collect the live elements.
    pub fn snapshot(&self, tx: &mut Txn) -> TxResult<Vec<V>> {
        let n = tx.read(&self.len)?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(tx.read(&self.slots[i])?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{ThreadId, TxnId};
    use gstm_tl2::{Stm, StmConfig};
    use std::sync::Arc;

    fn with_tx<R>(f: impl FnMut(&mut Txn) -> TxResult<R>) -> R {
        let stm = Stm::new(StmConfig::default());
        let mut ctx = stm.register();
        ctx.atomically(TxnId(0), f)
    }

    #[test]
    fn push_pop_get_set() {
        let v = TVector::with_capacity(4, 0i32);
        with_tx(|tx| {
            assert!(v.push(tx, 1)?);
            assert!(v.push(tx, 2)?);
            assert_eq!(v.get(tx, 0)?, Some(1));
            assert_eq!(v.get(tx, 2)?, None);
            assert!(v.set(tx, 1, 20)?);
            assert!(!v.set(tx, 2, 99)?);
            assert_eq!(v.pop(tx)?, Some(20));
            assert_eq!(v.len(tx)?, 1);
            Ok(())
        });
    }

    #[test]
    fn capacity_is_enforced() {
        let v = TVector::with_capacity(2, 0u8);
        with_tx(|tx| {
            assert!(v.push(tx, 1)?);
            assert!(v.push(tx, 2)?);
            assert!(!v.push(tx, 3)?);
            assert_eq!(v.snapshot(tx)?, vec![1, 2]);
            Ok(())
        });
    }

    #[test]
    fn from_values_starts_full() {
        let v = TVector::from_values(vec![5, 6, 7]);
        with_tx(|tx| {
            assert_eq!(v.len(tx)?, 3);
            assert_eq!(v.snapshot(tx)?, vec![5, 6, 7]);
            assert!(v.update(tx, 2, |x| x * 10)?);
            assert_eq!(v.get(tx, 2)?, Some(70));
            Ok(())
        });
    }

    #[test]
    fn concurrent_disjoint_slot_updates() {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let v = TVector::from_values(vec![0u64; 8]);
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let stm = Arc::clone(&stm);
                let v = v.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    for _ in 0..100 {
                        let slot = t as usize * 2;
                        ctx.atomically(TxnId(0), |tx| v.update(tx, slot, |x| x + 1));
                    }
                });
            }
        });
        let stm2 = Stm::new(StmConfig::default());
        let mut ctx = stm2.register();
        let snap = ctx.atomically(TxnId(0), |tx| v.snapshot(tx));
        assert_eq!(snap, vec![100, 0, 100, 0, 100, 0, 100, 0]);
    }
}
