//! Transactional chained hash table (STAMP `hashtable.c`).

use crate::list::TList;
use gstm_tl2::{TxResult, Txn};
use std::sync::Arc;

/// A fixed-bucket chained hash table. The bucket array is immutable after
/// construction (STAMP sizes its tables up front too); each bucket is a
/// sorted [`TList`], so independent buckets never conflict.
pub struct THashMap<V> {
    buckets: Arc<[TList<V>]>,
}

impl<V> Clone for THashMap<V> {
    fn clone(&self) -> Self {
        THashMap {
            buckets: Arc::clone(&self.buckets),
        }
    }
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl<V: Clone + Send + Sync + 'static> THashMap<V> {
    /// A table with `num_buckets` chains (rounded up to at least 1).
    pub fn new(num_buckets: usize) -> Self {
        let n = num_buckets.max(1);
        THashMap {
            buckets: (0..n).map(|_| TList::new()).collect(),
        }
    }

    #[inline]
    fn bucket(&self, key: u64) -> &TList<V> {
        let h = splitmix(key) as usize;
        &self.buckets[h % self.buckets.len()]
    }

    /// Number of buckets (fixed at construction).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Insert `key -> value`; `false` if the key is already present.
    pub fn insert(&self, tx: &mut Txn, key: u64, value: V) -> TxResult<bool> {
        self.bucket(key).insert(tx, key, value)
    }

    /// Insert or overwrite; returns the previous value if any.
    pub fn upsert(&self, tx: &mut Txn, key: u64, value: V) -> TxResult<Option<V>> {
        self.bucket(key).upsert(tx, key, value)
    }

    /// Look up `key`.
    pub fn get(&self, tx: &mut Txn, key: u64) -> TxResult<Option<V>> {
        self.bucket(key).get(tx, key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, tx: &mut Txn, key: u64) -> TxResult<bool> {
        self.bucket(key).contains(tx, key)
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&self, tx: &mut Txn, key: u64) -> TxResult<Option<V>> {
        self.bucket(key).remove(tx, key)
    }

    /// Total entries across all buckets. Touches every bucket's length —
    /// use outside hot paths only.
    pub fn len(&self, tx: &mut Txn) -> TxResult<u64> {
        let mut n = 0;
        for b in self.buckets.iter() {
            n += b.len(tx)?;
        }
        Ok(n)
    }

    /// Whether the table is empty (touches every bucket).
    pub fn is_empty(&self, tx: &mut Txn) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Collect all `(key, value)` pairs (bucket-major order, sorted within
    /// a bucket).
    pub fn snapshot(&self, tx: &mut Txn) -> TxResult<Vec<(u64, V)>> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            out.extend(b.snapshot(tx)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{ThreadId, TxnId};
    use gstm_tl2::{Stm, StmConfig};
    use std::sync::Arc;

    fn with_tx<R>(f: impl FnMut(&mut Txn) -> TxResult<R>) -> R {
        let stm = Stm::new(StmConfig::default());
        let mut ctx = stm.register();
        ctx.atomically(TxnId(0), f)
    }

    #[test]
    fn basic_ops() {
        let map = THashMap::new(16);
        with_tx(|tx| {
            assert!(map.insert(tx, 1, "a")?);
            assert!(map.insert(tx, 17, "b")?); // may share bucket with 1
            assert!(!map.insert(tx, 1, "dup")?);
            assert_eq!(map.get(tx, 1)?, Some("a"));
            assert_eq!(map.get(tx, 17)?, Some("b"));
            assert_eq!(map.remove(tx, 1)?, Some("a"));
            assert_eq!(map.get(tx, 1)?, None);
            assert_eq!(map.len(tx)?, 1);
            Ok(())
        });
    }

    #[test]
    fn single_bucket_degenerate_table_still_works() {
        let map = THashMap::new(1);
        with_tx(|tx| {
            for k in 0..50u64 {
                assert!(map.insert(tx, k, k)?);
            }
            for k in 0..50u64 {
                assert_eq!(map.get(tx, k)?, Some(k));
            }
            assert_eq!(map.len(tx)?, 50);
            Ok(())
        });
    }

    #[test]
    fn matches_hashmap_model() {
        use std::collections::HashMap;
        let map = THashMap::new(8);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let stm = Stm::new(StmConfig::default());
        let mut ctx = stm.register();
        let mut x: u64 = 31337;
        for _ in 0..600 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = x % 100;
            match x % 3 {
                0 => {
                    let ins = ctx.atomically(TxnId(0), |tx| map.insert(tx, k, x));
                    assert_eq!(ins, !model.contains_key(&k));
                    model.entry(k).or_insert(x);
                }
                1 => {
                    let rem = ctx.atomically(TxnId(0), |tx| map.remove(tx, k));
                    assert_eq!(rem, model.remove(&k));
                }
                _ => {
                    let got = ctx.atomically(TxnId(0), |tx| map.get(tx, k));
                    assert_eq!(got, model.get(&k).copied());
                }
            }
        }
    }

    #[test]
    fn concurrent_inserts_to_disjoint_keys() {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let map: THashMap<u64> = THashMap::new(32);
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let stm = Arc::clone(&stm);
                let map = map.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    for i in 0..100u64 {
                        let k = t as u64 * 10_000 + i;
                        assert!(ctx.atomically(TxnId(0), |tx| map.insert(tx, k, k)));
                    }
                });
            }
        });
        let stm2 = Stm::new(StmConfig::default());
        let mut ctx = stm2.register();
        assert_eq!(ctx.atomically(TxnId(0), |tx| map.len(tx)), 400);
    }
}
