//! Shared setup for the Criterion benchmark targets in `benches/`.
//!
//! Every bench target regenerates its table/figure once (printing the
//! rows, like `gstm-repro` does) and then benchmarks the operation that
//! produces it. Scales are reduced so `cargo bench` completes in minutes;
//! use the `gstm-repro` binary for full-scale regeneration.

use gstm_core::{GuidanceConfig, PinPolicy};
use gstm_harness::experiment::{run_experiment, BenchExperiment, ExperimentConfig};
use gstm_harness::game::{run_game_experiment, GameExperiment, GameExperimentConfig};
use gstm_stamp::{all_benchmarks, by_name, InputSize};
use gstm_tl2::ClockMode;

/// Benchmark-scale experiment config: tiny but complete.
pub fn bench_cfg(threads: u16) -> ExperimentConfig {
    ExperimentConfig {
        threads,
        profile_runs: 3,
        measure_runs: 3,
        train_size: InputSize::Small,
        test_size: InputSize::Small,
        yield_k: Some(2),
        guidance: GuidanceConfig::default(),
        seed: 0x5eed_cafe,
        adaptive: None,
        profile_threads: None,
        clock: ClockMode::Global,
        pin: PinPolicy::None,
        affinity: AffinitySource::Tsa,
    }
}

/// Run every STAMP benchmark once through the pipeline at bench scale.
pub fn stamp_experiments(threads: u16) -> Vec<BenchExperiment> {
    all_benchmarks()
        .iter()
        .map(|b| run_experiment(&**b, &bench_cfg(threads)))
        .collect()
}

/// One STAMP benchmark at bench scale.
pub fn one_experiment(name: &str, threads: u16) -> BenchExperiment {
    let b = by_name(name).expect("benchmark exists");
    run_experiment(&*b, &bench_cfg(threads))
}

/// The SynQuake pipeline at bench scale.
pub fn game_experiment(threads: u16) -> GameExperiment {
    let cfg = GameExperimentConfig {
        threads,
        players: 48,
        train_frames: 12,
        test_frames: 16,
        yield_k: Some(2),
        guidance: GuidanceConfig::default(),
        seed: 0x9a3e,
    };
    run_game_experiment(&cfg)
}
