//! Figures 4 and 6: per-thread execution-time variance improvement.
//!
//! Regenerates both figures at bench scale (4 and 8 threads standing in
//! for the paper's 8 and 16), then benchmarks a full default and guided
//! run of kmeans — the workload pair whose timing spread the figures
//! plot.

use criterion::Criterion;
use gstm_bench::{bench_cfg, stamp_experiments};
use gstm_core::prelude::*;
use gstm_harness::figures;
use gstm_stamp::{by_name, RunConfig};
use gstm_tl2::{Stm, StmConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench_modes(c: &mut Criterion) {
    let bench = by_name("kmeans").unwrap();
    let cfg = bench_cfg(4);
    let run_cfg = RunConfig {
        threads: cfg.threads,
        size: cfg.test_size,
        seed: cfg.seed,
    };
    let stm_cfg = StmConfig::with_yield_injection(2);

    // Train a model once for the guided variant.
    let rec = Arc::new(RecorderHook::new());
    let mut runs = Vec::new();
    for _ in 0..cfg.profile_runs {
        let stm = Stm::with_hook(rec.clone(), stm_cfg);
        bench.run(&stm, &run_cfg);
        runs.push(rec.take_run());
    }
    let model = Arc::new(GuidedModel::build(Tsa::from_runs(&runs), &cfg.guidance));

    c.bench_function("fig4_6/kmeans_default_run", |b| {
        b.iter(|| {
            let stm = Stm::new(stm_cfg);
            black_box(bench.run(&stm, &run_cfg))
        })
    });
    c.bench_function("fig4_6/kmeans_guided_run", |b| {
        b.iter(|| {
            let hook = Arc::new(GuidedHook::new(model.clone(), cfg.guidance));
            let stm = Stm::with_hook(hook, stm_cfg);
            black_box(bench.run(&stm, &run_cfg))
        })
    });
}

fn main() {
    let e4 = stamp_experiments(4);
    let e8 = stamp_experiments(8);
    println!("{}", figures::fig_variance(&e4, 8).render());
    println!("{}", figures::fig_variance(&e8, 16).render());

    let mut c = Criterion::default().configure_from_args();
    bench_modes(&mut c);
    c.final_summary();
}
