//! Table V: the SynQuake guidance metric.
//!
//! Regenerates the table at bench scale, then benchmarks one game frame
//! under each quest layout (the workload the metric is trained on).

use criterion::Criterion;
use gstm_bench::game_experiment;
use gstm_harness::tables;
use gstm_libtm::{LibTm, LibTmConfig};
use gstm_synquake::{run_game, GameConfig, QuestLayout};
use std::hint::black_box;

fn bench_frames(c: &mut Criterion) {
    for quest in [QuestLayout::WorstCase4, QuestLayout::Quadrants4] {
        c.bench_function(&format!("table5/10_frames_{}", quest.name()), |b| {
            b.iter(|| {
                let tm = LibTm::new(LibTmConfig::default());
                let cfg = GameConfig {
                    threads: 2,
                    players: 32,
                    frames: 10,
                    quest,
                    ..GameConfig::default()
                };
                black_box(run_game(&tm, &cfg))
            })
        });
    }
}

fn main() {
    let g = game_experiment(4);
    println!("{}", tables::table5(std::slice::from_ref(&g)).render());

    let mut c = Criterion::default().configure_from_args();
    bench_frames(&mut c);
    c.final_summary();
}
