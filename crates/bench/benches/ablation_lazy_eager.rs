//! Ablation: lazy vs eager conflict detection in TL2.
//!
//! Section II of the paper: "Eager conflict detection continuously checks
//! for conflicts to abort threads, while lazy detection waits until the
//! commit of a transaction ... thus reducing the total number of retries
//! and aborts" — which is why the paper demonstrates guidance on lazy
//! TL2. This bench runs the same contended workload under both modes and
//! prints the abort counts alongside the criterion timings.

use criterion::Criterion;
use gstm_core::{ThreadId, TxnId};
use gstm_tl2::{Detection, Stm, StmConfig, TVar};
use std::hint::black_box;
use std::sync::Arc;

fn contended_workload(stm: &Arc<Stm>) -> u64 {
    let counters: Vec<TVar<u64>> = (0..4).map(|_| TVar::new(0)).collect();
    std::thread::scope(|s| {
        for t in 0..4u16 {
            let stm = Arc::clone(stm);
            let counters = counters.clone();
            s.spawn(move || {
                let mut ctx = stm.register_as(ThreadId(t));
                for i in 0..150usize {
                    let a = counters[(t as usize + i) % counters.len()].clone();
                    let b = counters[(t as usize + i + 1) % counters.len()].clone();
                    ctx.atomically(TxnId(0), |tx| {
                        let av = tx.read(&a)?;
                        let bv = tx.read(&b)?;
                        tx.write(&a, av + 1)?;
                        tx.write(&b, bv + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    counters.iter().map(TVar::load_quiesced).sum()
}

fn main() {
    // One-shot comparison of abort counts (the paper's rationale).
    println!("lazy vs eager detection on a contended transfer workload:");
    for detection in [Detection::Lazy, Detection::Eager] {
        let stm = Stm::new(StmConfig {
            detection,
            yield_prob_log2: Some(2),
            ..StmConfig::default()
        });
        let total = contended_workload(&stm);
        assert_eq!(total, 4 * 150 * 2);
        println!(
            "  {detection:?}: {} commits, {} aborts",
            stm.total_commits(),
            stm.total_aborts()
        );
    }

    let mut c = Criterion::default().configure_from_args();
    for detection in [Detection::Lazy, Detection::Eager] {
        let mut g = c.benchmark_group(format!("ablation_lazy_eager/{detection:?}"));
        g.sample_size(10);
        g.bench_function("contended_transfers", |b| {
            b.iter(|| {
                let stm = Stm::new(StmConfig {
                    detection,
                    yield_prob_log2: Some(2),
                    ..StmConfig::default()
                });
                black_box(contended_workload(&stm))
            })
        });
        g.finish();
    }
    c.final_summary();
}
