//! Figures 5 and 7: abort-distribution tails, default vs guided.
//!
//! Regenerates both figures at bench scale, then benchmarks the abort
//! bookkeeping path (record + merge) that produces the distributions.

use criterion::Criterion;
use gstm_bench::stamp_experiments;
use gstm_core::{AbortCause, ThreadStats};
use gstm_harness::figures;
use std::hint::black_box;

fn bench_recording(c: &mut Criterion) {
    c.bench_function("fig5_7/thread_stats_commit_abort_cycle", |b| {
        b.iter(|| {
            let mut s = ThreadStats::new();
            for i in 0..1000u32 {
                s.record_abort(AbortCause::Validation);
                if i % 3 == 0 {
                    s.record_abort(AbortCause::ReadVersion);
                }
                s.record_commit(i % 7);
            }
            black_box(s)
        })
    });
    let mut a = ThreadStats::new();
    let mut bt = ThreadStats::new();
    for i in 0..500u32 {
        a.record_commit(i % 11);
        bt.record_commit(i % 13);
    }
    c.bench_function("fig5_7/thread_stats_merge", |b| {
        b.iter(|| {
            let mut m = a.clone();
            m.merge(black_box(&bt));
            black_box(m)
        })
    });
}

fn main() {
    let e4 = stamp_experiments(4);
    let e8 = stamp_experiments(8);
    println!("{}", figures::fig_abort_tail(&e4, 8).render());
    println!("{}", figures::fig_abort_tail(&e8, 16).render());

    let mut c = Criterion::default().configure_from_args();
    bench_recording(&mut c);
    c.final_summary();
}
