//! Figures 11 and 12: SynQuake on the two test quests — frame-rate
//! variance improvement, abort-ratio reduction, and slowdown.
//!
//! Regenerates both figures at bench scale, then benchmarks default vs
//! guided game runs on each test quest.

use criterion::Criterion;
use gstm_bench::game_experiment;
use gstm_core::prelude::*;
use gstm_harness::figures;
use gstm_libtm::{LibTm, LibTmConfig};
use gstm_synquake::{run_game, GameConfig, QuestLayout};
use std::hint::black_box;
use std::sync::Arc;

fn bench_game_modes(c: &mut Criterion) {
    let guidance = GuidanceConfig::default();
    let tm_cfg = LibTmConfig {
        yield_prob_log2: Some(2),
        ..LibTmConfig::default()
    };
    let game_cfg = |quest| GameConfig {
        threads: 2,
        players: 32,
        frames: 10,
        quest,
        ..GameConfig::default()
    };

    // Train on the two training quests.
    let rec = Arc::new(RecorderHook::new());
    let mut runs = Vec::new();
    for quest in [QuestLayout::WorstCase4, QuestLayout::Moving4] {
        let tm = LibTm::with_hook(rec.clone(), tm_cfg);
        run_game(&tm, &game_cfg(quest));
        runs.push(rec.take_run());
    }
    let model = Arc::new(GuidedModel::build(Tsa::from_runs(&runs), &guidance));

    for quest in [QuestLayout::Quadrants4, QuestLayout::CenterSpread6] {
        let mut g = c.benchmark_group(format!("fig11_12/{}", quest.name()));
        g.sample_size(10);
        g.bench_function("default", |b| {
            b.iter(|| {
                let tm = LibTm::new(tm_cfg);
                black_box(run_game(&tm, &game_cfg(quest)))
            })
        });
        let model = model.clone();
        g.bench_function("guided", |b| {
            b.iter(|| {
                let hook = Arc::new(GuidedHook::new(model.clone(), guidance));
                let tm = LibTm::with_hook(hook, tm_cfg);
                black_box(run_game(&tm, &game_cfg(quest)))
            })
        });
        g.finish();
    }
}

fn main() {
    let g = game_experiment(4);
    let games = [g];
    println!("{}", figures::fig_synquake(&games, true).render());
    println!("{}", figures::fig_synquake(&games, false).render());

    let mut c = Criterion::default().configure_from_args();
    bench_game_modes(&mut c);
    c.final_summary();
}
