//! Ablation: the gate's progress-escape budget (`k` retries × wait spins).
//!
//! The paper's Section V introduces `k` but does not fix a value; the
//! DESIGN.md calibration showed the budget trades conformance (fewer
//! wild paths) against gate latency. This bench sweeps the two knobs on
//! the intruder benchmark.

use criterion::Criterion;
use gstm_bench::bench_cfg;
use gstm_core::prelude::*;
use gstm_stamp::{by_name, RunConfig};
use gstm_tl2::{Stm, StmConfig};
use std::hint::black_box;
use std::sync::Arc;

fn main() {
    let bench = by_name("intruder").unwrap();
    let cfg = bench_cfg(4);
    let run_cfg = RunConfig {
        threads: cfg.threads,
        size: cfg.test_size,
        seed: cfg.seed,
    };
    let stm_cfg = StmConfig::with_yield_injection(2);

    let rec = Arc::new(RecorderHook::new());
    let mut runs = Vec::new();
    for _ in 0..cfg.profile_runs {
        let stm = Stm::with_hook(rec.clone(), stm_cfg);
        bench.run(&stm, &run_cfg);
        runs.push(rec.take_run());
    }
    let tsa = Tsa::from_runs(&runs);

    let mut c = Criterion::default().configure_from_args();
    for (k, spins) in [(1u32, 1u32), (4, 4), (16, 2), (64, 2)] {
        let gcfg = GuidanceConfig {
            k_retries: k,
            wait_spins: spins,
            ..GuidanceConfig::default()
        };
        let model = Arc::new(GuidedModel::build(tsa.clone(), &gcfg));
        let mut g = c.benchmark_group(format!("ablation_gate/k{k}_s{spins}"));
        g.sample_size(10);
        g.bench_function("guided_run", |b| {
            b.iter(|| {
                let hook = Arc::new(GuidedHook::new(model.clone(), gcfg));
                let stm = Stm::with_hook(hook, stm_cfg);
                black_box(bench.run(&stm, &run_cfg))
            })
        });
        g.finish();
    }
    c.final_summary();
}
