//! Microbenchmarks of the TL2 substrate and the transactional containers:
//! uncontended read/write/commit costs and container operation costs —
//! the baselines every macro number in the paper decomposes into.

use criterion::{Criterion, Throughput};
use gstm_core::TxnId;
use gstm_structs::{THashMap, TList, TMap, TQueue};
use gstm_tl2::{Stm, StmConfig, TVar};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let stm = Stm::new(StmConfig::default());
    let mut ctx = stm.register();
    let v = TVar::new(0u64);

    c.bench_function("tl2/read_only_txn", |b| {
        b.iter(|| ctx.atomically(TxnId(0), |tx| black_box(tx.read(&v))))
    });
    c.bench_function("tl2/increment_txn", |b| {
        b.iter(|| ctx.atomically(TxnId(0), |tx| tx.modify(&v, |x| x + 1)))
    });
    let vars: Vec<TVar<u64>> = (0..16).map(|_| TVar::new(0)).collect();
    c.bench_function("tl2/txn_16_reads_4_writes", |b| {
        b.iter(|| {
            ctx.atomically(TxnId(0), |tx| {
                let mut sum = 0;
                for v in &vars {
                    sum += tx.read(v)?;
                }
                for v in vars.iter().take(4) {
                    tx.write(v, sum)?;
                }
                Ok(black_box(sum))
            })
        })
    });
    c.bench_function("tl2/load_quiesced", |b| b.iter(|| black_box(v.load_quiesced())));
}

fn bench_containers(c: &mut Criterion) {
    let stm = Stm::new(StmConfig::default());
    let mut ctx = stm.register();
    let n = 256u64;

    let list = TList::new();
    let map = TMap::new();
    let hm = THashMap::new(64);
    let q = TQueue::new();
    ctx.atomically(TxnId(0), |tx| {
        for i in 0..n {
            list.insert(tx, i * 7 % n, i)?;
            map.insert(tx, i * 13 % n, i)?;
            hm.insert(tx, i, i)?;
            q.push(tx, i)?;
        }
        Ok(())
    });

    let mut g = c.benchmark_group("structs");
    g.throughput(Throughput::Elements(1));
    g.bench_function("list_get", |b| {
        b.iter(|| ctx.atomically(TxnId(0), |tx| list.get(tx, black_box(42 * 7 % n))))
    });
    g.bench_function("map_get", |b| {
        b.iter(|| ctx.atomically(TxnId(0), |tx| map.get(tx, black_box(42 * 13 % n))))
    });
    g.bench_function("hashmap_get", |b| {
        b.iter(|| ctx.atomically(TxnId(0), |tx| hm.get(tx, black_box(42))))
    });
    g.bench_function("map_insert_remove", |b| {
        b.iter(|| {
            ctx.atomically(TxnId(0), |tx| {
                map.insert(tx, 9999, 1)?;
                map.remove(tx, 9999)
            })
        })
    });
    g.bench_function("queue_push_pop", |b| {
        b.iter(|| {
            ctx.atomically(TxnId(0), |tx| {
                q.push(tx, 1)?;
                q.pop(tx)
            })
        })
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_primitives(&mut c);
    bench_containers(&mut c);
    c.final_summary();
}
