//! Table IV: average % improvement in the abort-tail metric.
//!
//! Regenerates the table at bench scale, then benchmarks the histogram
//! machinery underneath it.

use criterion::Criterion;
use gstm_bench::stamp_experiments;
use gstm_core::AbortHistogram;
use gstm_harness::tables;
use std::hint::black_box;

fn bench_histograms(c: &mut Criterion) {
    // A long-tailed distribution like an abort-storm benchmark produces.
    let long: AbortHistogram = (0..200u32)
        .map(|j| (j, 1_000u64 >> (j / 10).min(10)))
        .filter(|&(_, f)| f > 0)
        .collect();
    c.bench_function("table4/tail_metric", |b| {
        b.iter(|| black_box(black_box(&long).tail_metric()))
    });
    c.bench_function("table4/histogram_record_1k", |b| {
        b.iter(|| {
            let mut h = AbortHistogram::new();
            for i in 0..1000u32 {
                h.record(i % 17);
            }
            black_box(h)
        })
    });
    let other = long.clone();
    c.bench_function("table4/histogram_merge", |b| {
        b.iter(|| {
            let mut h = long.clone();
            h.merge(black_box(&other));
            black_box(h)
        })
    });
}

fn main() {
    let e8 = stamp_experiments(4);
    println!("{}", tables::table4(&e8, &[]).render());

    let mut c = Criterion::default().configure_from_args();
    bench_histograms(&mut c);
    c.final_summary();
}
