//! Figure 8: ssca2 under guidance (expected degradation).
//!
//! Regenerates the figure at bench scale, then benchmarks ssca2 runs in
//! default and guided mode — the comparison whose gap is the figure's
//! message: for a low-contention workload guidance is pure overhead.

use criterion::Criterion;
use gstm_bench::{bench_cfg, one_experiment, stamp_experiments};
use gstm_core::prelude::*;
use gstm_harness::figures;
use gstm_stamp::{by_name, RunConfig};
use gstm_tl2::{Stm, StmConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench_ssca2(c: &mut Criterion) {
    let bench = by_name("ssca2").unwrap();
    let cfg = bench_cfg(4);
    let run_cfg = RunConfig {
        threads: cfg.threads,
        size: cfg.test_size,
        seed: cfg.seed,
    };
    let stm_cfg = StmConfig::with_yield_injection(2);

    let rec = Arc::new(RecorderHook::new());
    let mut runs = Vec::new();
    for _ in 0..cfg.profile_runs {
        let stm = Stm::with_hook(rec.clone(), stm_cfg);
        bench.run(&stm, &run_cfg);
        runs.push(rec.take_run());
    }
    let model = Arc::new(GuidedModel::build(Tsa::from_runs(&runs), &cfg.guidance));

    c.bench_function("fig8/ssca2_default", |b| {
        b.iter(|| {
            let stm = Stm::new(stm_cfg);
            black_box(bench.run(&stm, &run_cfg))
        })
    });
    c.bench_function("fig8/ssca2_guided", |b| {
        b.iter(|| {
            let hook = Arc::new(GuidedHook::new(model.clone(), cfg.guidance));
            let stm = Stm::with_hook(hook, stm_cfg);
            black_box(bench.run(&stm, &run_cfg))
        })
    });
}

fn main() {
    let e4: Vec<_> = stamp_experiments(4)
        .into_iter()
        .filter(|e| e.name == "ssca2")
        .collect();
    let e8 = vec![one_experiment("ssca2", 8)];
    println!("{}", figures::fig8_ssca2(&e4, &e8).render());

    let mut c = Criterion::default().configure_from_args();
    bench_ssca2(&mut c);
    c.final_summary();
}
