//! Table III: number of states in each benchmark's trained model.
//!
//! Regenerates the table at bench scale, then benchmarks model
//! generation (Algorithm 1: Tseq → TSA) and the compact model encoding.

use criterion::{Criterion, Throughput};
use gstm_bench::stamp_experiments;
use gstm_core::prelude::*;
use gstm_core::model_io;
use gstm_harness::tables;
use std::hint::black_box;

/// A Tseq with a realistic mix of solo and multi-abort states.
fn synthetic_tseq(len: usize) -> Vec<StateKey> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len as u64 {
        let commit = Pair::new(TxnId((i % 3) as u16), ThreadId((i % 8) as u16));
        if i % 4 == 0 {
            let aborts = vec![
                Pair::new(TxnId(((i + 1) % 3) as u16), ThreadId(((i + 3) % 8) as u16)),
                Pair::new(TxnId(((i + 2) % 3) as u16), ThreadId(((i + 5) % 8) as u16)),
            ];
            out.push(StateKey::new(aborts, commit));
        } else {
            out.push(StateKey::solo(commit));
        }
    }
    out
}

fn bench_model_generation(c: &mut Criterion) {
    let tseq = synthetic_tseq(50_000);
    let mut g = c.benchmark_group("table3");
    g.throughput(Throughput::Elements(tseq.len() as u64));
    g.bench_function("tsa_from_runs_50k", |b| {
        b.iter(|| black_box(Tsa::from_runs(black_box(std::slice::from_ref(&tseq)))))
    });
    let tsa = Tsa::from_runs(&[tseq]);
    g.bench_function("model_encode", |b| {
        b.iter(|| black_box(model_io::encode(black_box(&tsa))))
    });
    let bytes = model_io::encode(&tsa);
    g.bench_function("model_decode", |b| {
        b.iter(|| black_box(model_io::decode(black_box(&bytes)).unwrap()))
    });
    g.finish();
}

fn main() {
    let e8 = stamp_experiments(4);
    println!("{}", tables::table3(&e8, &[]).render());

    let mut c = Criterion::default().configure_from_args();
    bench_model_generation(&mut c);
    c.final_summary();
}
