//! Figure 10: slowdown of guided over default execution — the canonical
//! Criterion comparison. One `default` and one `guided` benchmark per
//! STAMP application; the per-benchmark ratio of the two medians is the
//! figure's bar.

use criterion::Criterion;
use gstm_bench::bench_cfg;
use gstm_core::prelude::*;
use gstm_harness::figures;
use gstm_stamp::{all_benchmarks, RunConfig};
use gstm_tl2::{Stm, StmConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench_all(c: &mut Criterion) {
    let cfg = bench_cfg(4);
    let run_cfg = RunConfig {
        threads: cfg.threads,
        size: cfg.test_size,
        seed: cfg.seed,
    };
    let stm_cfg = StmConfig::with_yield_injection(2);

    for bench in all_benchmarks() {
        // Train a model for this benchmark.
        let rec = Arc::new(RecorderHook::new());
        let mut runs = Vec::new();
        for _ in 0..cfg.profile_runs {
            let stm = Stm::with_hook(rec.clone(), stm_cfg);
            bench.run(&stm, &run_cfg);
            runs.push(rec.take_run());
        }
        let model = Arc::new(GuidedModel::build(Tsa::from_runs(&runs), &cfg.guidance));

        let mut g = c.benchmark_group(format!("fig10/{}", bench.name()));
        g.sample_size(10);
        let b1 = bench.clone();
        g.bench_function("default", |b| {
            b.iter(|| {
                let stm = Stm::new(stm_cfg);
                black_box(b1.run(&stm, &run_cfg))
            })
        });
        let b2 = bench.clone();
        g.bench_function("guided", |b| {
            b.iter(|| {
                let hook = Arc::new(GuidedHook::new(model.clone(), cfg.guidance));
                let stm = Stm::with_hook(hook, stm_cfg);
                black_box(b2.run(&stm, &run_cfg))
            })
        });
        g.finish();
    }
}

fn main() {
    let e4 = gstm_bench::stamp_experiments(4);
    println!("{}", figures::fig10_slowdown(&e4, &[]).render());

    let mut c = Criterion::default().configure_from_args();
    bench_all(&mut c);
    c.final_summary();
}
