//! Per-commit guidance-hook overhead: Noop vs Recorder vs Guided, at 1
//! thread and 8 oversubscribed threads, each against a replica of the
//! pre-sharding double-mutex tracker (`legacy/*`), plus component
//! microbenchmarks of the two rebuilt hot-path pieces (bitmap gate
//! membership and borrowed-parts commit classification).
//!
//! The dependency-free twin of this bench is
//! `crates/core/examples/hook_overhead.rs` — same schedule, same legacy
//! replica — for machines where criterion isn't available.

use criterion::Criterion;
use gstm_core::guidance::{GuidanceHook, GuidedHook, NoopHook, RecorderHook};
use gstm_core::telemetry::Telemetry;
use gstm_core::{AbortCause, GuidanceConfig, GuidedModel, Pair, StateKey, ThreadId, Tsa, TxnId};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Replica of the tracker the sharded design replaced: one global pending
/// mutex plus one recorded mutex; `StateKey::new` and a clone per commit.
#[derive(Default)]
struct LegacyRecorder {
    pending: Mutex<Vec<Pair>>,
    recorded: Mutex<Vec<StateKey>>,
}

impl GuidanceHook for LegacyRecorder {
    fn on_abort(&self, who: Pair, _cause: AbortCause) {
        self.pending.lock().unwrap().push(who);
    }

    fn on_commit(&self, who: Pair) {
        let aborts = std::mem::take(&mut *self.pending.lock().unwrap());
        let key = StateKey::new(aborts, who);
        self.recorded.lock().unwrap().push(key.clone());
    }
}

const ABORTS_PER_COMMIT: usize = 3;

/// Run `iters` gate + 3-abort + commit windows per thread and return the
/// total wall time (criterion `iter_custom` contract).
fn drive(hook: &Arc<dyn GuidanceHook>, threads: u16, iters: u64) -> Duration {
    let barrier = Arc::new(Barrier::new(threads as usize + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let hook = Arc::clone(hook);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let me = Pair::new(TxnId(t % 4), ThreadId(t));
            barrier.wait();
            for _ in 0..iters {
                hook.gate(me);
                for _ in 0..ABORTS_PER_COMMIT {
                    hook.on_abort(me, AbortCause::Validation);
                }
                hook.on_commit(me);
            }
            barrier.wait();
        }));
    }
    barrier.wait();
    let start = Instant::now();
    barrier.wait();
    let elapsed = start.elapsed();
    for h in handles {
        h.join().unwrap();
    }
    elapsed
}

fn harness_model(threads: u16) -> Arc<GuidedModel> {
    let keys: Vec<StateKey> = (0..threads)
        .map(|t| StateKey::solo(Pair::new(TxnId(t % 4), ThreadId(t))))
        .collect();
    let mut run = Vec::new();
    for _ in 0..8 {
        run.extend(keys.iter().cloned());
    }
    let tsa = Tsa::from_runs(&[run]);
    Arc::new(GuidedModel::build(tsa, &GuidanceConfig::default()))
}

fn bench_hooks(c: &mut Criterion) {
    for threads in [1u16, 8] {
        let mut g = c.benchmark_group(format!("hook_overhead/{threads}t"));
        let cases: Vec<(&str, Box<dyn Fn() -> Arc<dyn GuidanceHook>>)> = vec![
            ("noop", Box::new(|| Arc::new(NoopHook))),
            ("legacy", Box::new(|| Arc::new(LegacyRecorder::default()))),
            ("recorder", Box::new(|| Arc::new(RecorderHook::new()))),
            ("guided", {
                let model = harness_model(threads);
                Box::new(move || {
                    Arc::new(GuidedHook::new(
                        Arc::clone(&model),
                        GuidanceConfig::default(),
                    ))
                })
            }),
            // Enabled-mode telemetry: gate outcomes + abort causes feed
            // the counter cells (counters_only leaves the trace ring off,
            // the steady-state harness configuration).
            ("guided_telemetry", {
                let model = harness_model(threads);
                Box::new(move || {
                    Arc::new(GuidedHook::with_telemetry(
                        Arc::clone(&model),
                        GuidanceConfig::default(),
                        Some(Arc::new(Telemetry::counters_only())),
                    ))
                })
            }),
        ];
        for (name, mk) in cases {
            g.bench_function(name, |b| {
                b.iter_custom(|iters| {
                    let hook = mk();
                    drive(&hook, threads, iters)
                })
            });
        }
        g.finish();
    }
}

/// The two rebuilt per-commit components, each against its predecessor.
fn bench_components(c: &mut Criterion) {
    let ab = vec![
        Pair::new(TxnId(0), ThreadId(1)),
        Pair::new(TxnId(1), ThreadId(2)),
    ];
    let mut run = Vec::new();
    for round in 0..8u16 {
        for t in 0..8u16 {
            let commit = Pair::new(TxnId(t % 4), ThreadId(t));
            run.push(if (round + t) % 2 == 0 {
                StateKey::solo(commit)
            } else {
                StateKey::new(ab.clone(), commit)
            });
        }
    }
    let model = GuidedModel::build(Tsa::from_runs(&[run]), &GuidanceConfig::default());
    let tsa = model.tsa();

    let legacy_allowed: Vec<HashSet<u32>> = tsa
        .state_ids()
        .map(|id| {
            model
                .kept_destinations(id)
                .iter()
                .flat_map(|&d| tsa.state(d).pairs())
                .map(Pair::packed)
                .collect()
        })
        .collect();
    let legacy_index: HashMap<StateKey, u32> = tsa
        .states()
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i as u32))
        .collect();
    let queries: Vec<Pair> = (0..64u16)
        .map(|i| Pair::new(TxnId(i % 5), ThreadId(i % 9)))
        .collect();
    let state_ids: Vec<_> = tsa.state_ids().collect();
    let commits: Vec<Pair> = tsa.states().iter().map(StateKey::commit).collect();
    let scratch = {
        let mut v = ab.clone();
        v.sort_unstable();
        v
    };

    let mut g = c.benchmark_group("hook_overhead/components");
    let mut i = 0usize;
    g.bench_function("gate_membership/legacy_hashset", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let s = &legacy_allowed[i % legacy_allowed.len()];
            black_box(s.contains(&queries[i % queries.len()].packed()))
        })
    });
    g.bench_function("gate_membership/bitmap", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(model.is_allowed(state_ids[i % state_ids.len()], queries[i % queries.len()]))
        })
    });
    g.bench_function("commit_classify/legacy_alloc_siphash", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let key = StateKey::new(scratch.clone(), commits[i % commits.len()]);
            black_box(legacy_index.get(&key).copied())
        })
    });
    g.bench_function("commit_classify/parts_fnv", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(tsa.id_of_parts(&scratch, commits[i % commits.len()]))
        })
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_hooks(&mut c);
    bench_components(&mut c);
    c.final_summary();
}
