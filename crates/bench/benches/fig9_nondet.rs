//! Figure 9: reduction in non-determinism (distinct thread transactional
//! states), guided vs default.
//!
//! Regenerates the figure at bench scale, then benchmarks the state
//! tracker itself — the component whose cost the recording modes pay on
//! every abort and commit.

use criterion::{Criterion, Throughput};
use gstm_bench::{one_experiment, stamp_experiments};
use gstm_core::prelude::*;
use gstm_core::metrics;
use gstm_harness::figures;
use std::hint::black_box;

fn bench_tracker(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("recorder_10k_events", |b| {
        b.iter(|| {
            let rec = RecorderHook::new();
            for i in 0..10_000u64 {
                let who = Pair::new(TxnId((i % 3) as u16), ThreadId((i % 8) as u16));
                if i % 5 == 0 {
                    rec.on_abort(who, AbortCause::Validation);
                } else {
                    rec.on_commit(who);
                }
            }
            black_box(rec.take_run())
        })
    });
    g.finish();

    // Counting distinct states across runs.
    let runs: Vec<Vec<StateKey>> = (0..10)
        .map(|r| {
            (0..2_000u64)
                .map(|i| {
                    StateKey::solo(Pair::new(
                        TxnId(((i + r) % 3) as u16),
                        ThreadId(((i * 7 + r) % 8) as u16),
                    ))
                })
                .collect()
        })
        .collect();
    c.bench_function("fig9/non_determinism_20k_states", |b| {
        b.iter(|| black_box(metrics::non_determinism(black_box(&runs))))
    });
}

fn main() {
    let e4 = stamp_experiments(4);
    let e8 = vec![one_experiment("kmeans", 8), one_experiment("ssca2", 8)];
    println!("{}", figures::fig9_nondeterminism(&e4, &e8).render());

    let mut c = Criterion::default().configure_from_args();
    bench_tracker(&mut c);
    c.final_summary();
}
