//! Commit-clock scaling: the TL2 global version clock versus the
//! GV5-style sharded clock, A/B at 1/2/4/8 threads.
//!
//! Two layers, each an A/B pair per thread count (the per-thread-count
//! rows the `clock_scaling` baseline file records — re-record it when a
//! clock-path change intentionally moves these numbers, the same rule as
//! `hook_overhead`):
//!
//! * `advance` — the bare clock operation. Global mode is one `fetch_add`
//!   on a single hot word every committer in the process shares; sharded
//!   mode stamps `(epoch << 6) | shard` onto the committer's own padded
//!   shard word, so with one shard per thread no commit-path write ever
//!   contends.
//! * `commit` — the full STM small-transaction commit path (read one
//!   private `TVar`, write it back), which buys the sharded clock its
//!   mandatory read-set validation and shard-commit accounting, the
//!   honest price of removing the shared CAS word.
//!
//! The dependency-free twin (and the tool that records
//! `crates/bench/baselines/clock_scaling.txt`, including the contended-op
//! permille rows) is `crates/tl2/examples/clock_scaling.rs`.

use criterion::Criterion;
use gstm_core::TxnId;
use gstm_tl2::{clock, ClockMode, StmBuilder, StmConfig, TVar};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const THREAD_COUNTS: [u16; 4] = [1, 2, 4, 8];

/// Spawn `threads` workers, have each run `iters` clock/commit
/// operations after a shared barrier, and return the timed span
/// (criterion `iter_custom` contract). The span is max(worker end) -
/// min(worker start) from per-worker timestamps: on an oversubscribed
/// host a coordinator-side stopwatch may not be rescheduled until the
/// workers already finished and would undercount arbitrarily.
fn drive(threads: u16, iters: u64, op: impl Fn(u16, u64) + Send + Sync + 'static) -> Duration {
    let op = Arc::new(op);
    let barrier = Arc::new(Barrier::new(threads as usize));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let op = Arc::clone(&op);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let start = Instant::now();
                op(t, iters);
                (start, Instant::now())
            })
        })
        .collect();
    let mut first_start: Option<Instant> = None;
    let mut last_end: Option<Instant> = None;
    for h in handles {
        let (start, end) = h.join().unwrap();
        first_start = Some(first_start.map_or(start, |s| s.min(start)));
        last_end = Some(last_end.map_or(end, |e| e.max(end)));
    }
    last_end.unwrap().duration_since(first_start.unwrap())
}

fn bench_advance(c: &mut Criterion) {
    for threads in THREAD_COUNTS {
        let mut g = c.benchmark_group(format!("clock_scaling/advance/{threads}t"));
        g.bench_function("global", |b| {
            b.iter_custom(|iters| {
                drive(threads, iters, |_, n| {
                    for _ in 0..n {
                        std::hint::black_box(clock::global().advance());
                    }
                })
            })
        });
        g.bench_function("sharded", |b| {
            b.iter_custom(|iters| {
                drive(threads, iters, |t, n| {
                    // One shard per thread: the commit-path write never
                    // leaves the committer's own cache line.
                    let shard = t % clock::MAX_SHARDS as u16;
                    clock::sharded().register_shard(shard);
                    for _ in 0..n {
                        std::hint::black_box(clock::sharded().advance(shard));
                    }
                })
            })
        });
        g.finish();
    }
}

fn bench_commit(c: &mut Criterion) {
    for threads in THREAD_COUNTS {
        let mut g = c.benchmark_group(format!("clock_scaling/commit/{threads}t"));
        for (name, mode) in [("global", ClockMode::Global), ("sharded", ClockMode::Sharded)] {
            g.bench_function(name, |b| {
                b.iter_custom(|iters| {
                    let stm = StmBuilder::new(StmConfig::default()).clock(mode).build();
                    let vars: Arc<Vec<TVar<u64>>> =
                        Arc::new((0..threads).map(|_| TVar::new(0)).collect());
                    drive(threads, iters, move |t, n| {
                        let mut ctx = stm.register();
                        let v = &vars[t as usize];
                        for _ in 0..n {
                            ctx.atomically(TxnId(0), |tx| {
                                let x = tx.read(v)?;
                                tx.write(v, x.wrapping_add(1))
                            });
                        }
                    })
                })
            });
        }
        g.finish();
    }
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_advance(&mut c);
    bench_commit(&mut c);
    c.final_summary();
}
