//! Table I: the model analyzer's guidance metric per benchmark.
//!
//! Regenerates the table at bench scale, then benchmarks the analyzer
//! itself (the model-analysis phase of the framework).

use criterion::Criterion;
use gstm_bench::stamp_experiments;
use gstm_core::prelude::*;
use gstm_core::{analyzer, GuidanceConfig};
use gstm_harness::tables;
use std::hint::black_box;

/// A synthetic profiled run large enough to exercise the analyzer.
fn synthetic_runs(states: u16, len: usize) -> Vec<Vec<StateKey>> {
    let mut run = Vec::with_capacity(len);
    let mut cur: u16 = 0;
    for step in 0..len as u64 {
        run.push(StateKey::solo(Pair::new(TxnId(cur % 3), ThreadId(cur % 8))));
        cur = if step % 11 == 3 {
            (cur + 2 + (step % 5) as u16) % states
        } else {
            (cur + 1) % states
        };
    }
    vec![run]
}

fn bench_analyzer(c: &mut Criterion) {
    let runs = synthetic_runs(64, 20_000);
    let tsa = Tsa::from_runs(&runs);
    let model = GuidedModel::build(tsa.clone(), &GuidanceConfig::default());
    c.bench_function("table1/analyze_model", |b| {
        b.iter(|| black_box(analyzer::analyze(black_box(&model))))
    });
    c.bench_function("table1/build_guided_model", |b| {
        b.iter(|| {
            black_box(GuidedModel::build(
                black_box(tsa.clone()),
                &GuidanceConfig::default(),
            ))
        })
    });
}

fn main() {
    // Regenerate Table I at bench scale.
    let e8 = stamp_experiments(4);
    println!("{}", tables::table1(&e8, &[]).render());

    let mut c = Criterion::default().configure_from_args();
    bench_analyzer(&mut c);
    c.final_summary();
}
