//! Ablation: the Tfactor knob (Section VI).
//!
//! The paper sweeps Tfactor 1..10 and settles on 4: low values restrict
//! the STM too much, high values re-admit low-probability paths. This
//! bench sweeps the same range on kmeans and prints the resulting
//! destination-set sizes, then benchmarks the guided run at each setting.

use criterion::Criterion;
use gstm_bench::bench_cfg;
use gstm_core::prelude::*;
use gstm_core::analyzer;
use gstm_stamp::{by_name, RunConfig};
use gstm_tl2::{Stm, StmConfig};
use std::hint::black_box;
use std::sync::Arc;

fn main() {
    let bench = by_name("kmeans").unwrap();
    let cfg = bench_cfg(4);
    let run_cfg = RunConfig {
        threads: cfg.threads,
        size: cfg.test_size,
        seed: cfg.seed,
    };
    let stm_cfg = StmConfig::with_yield_injection(2);

    // Train once; re-threshold per Tfactor.
    let rec = Arc::new(RecorderHook::new());
    let mut runs = Vec::new();
    for _ in 0..cfg.profile_runs {
        let stm = Stm::with_hook(rec.clone(), stm_cfg);
        bench.run(&stm, &run_cfg);
        runs.push(rec.take_run());
    }
    let tsa = Tsa::from_runs(&runs);

    println!("Tfactor sweep on kmeans (model {} states):", tsa.num_states());
    println!("{:>8} {:>10} {:>10}", "Tfactor", "metric %", "kept/all");
    let mut models = Vec::new();
    for tf in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0] {
        let gcfg = GuidanceConfig::with_tfactor(tf);
        let model = Arc::new(GuidedModel::build(tsa.clone(), &gcfg));
        let rep = analyzer::analyze_with(&model, &gcfg);
        println!(
            "{tf:>8} {:>10.1} {:>5}/{:<5}",
            rep.guidance_metric_pct, rep.kept_destinations, rep.total_destinations
        );
        models.push((tf, gcfg, model));
    }

    let mut c = Criterion::default().configure_from_args();
    for (tf, gcfg, model) in models {
        let mut g = c.benchmark_group(format!("ablation_tfactor/{tf}"));
        g.sample_size(10);
        g.bench_function("guided_run", |b| {
            b.iter(|| {
                let hook = Arc::new(GuidedHook::new(model.clone(), gcfg));
                let stm = Stm::with_hook(hook, stm_cfg);
                black_box(bench.run(&stm, &run_cfg))
            })
        });
        g.finish();
    }
    c.final_summary();
}
