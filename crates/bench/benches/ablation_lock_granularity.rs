//! Ablation: per-object ("PO") vs striped ("PS") lock placement in TL2.
//!
//! The original TL2 ships both modes: PS keeps lock metadata constant at
//! the cost of false conflicts between stripe-mates. This bench runs the
//! same counter workload over per-object locks and over lock tables of
//! decreasing size (more sharing → more false conflicts) and prints the
//! abort counts alongside the criterion timings.

use criterion::Criterion;
use gstm_core::{ThreadId, TxnId};
use gstm_tl2::{LockTable, Stm, StmConfig, TVar};
use std::hint::black_box;
use std::sync::Arc;

fn run_counters(stm: &Arc<Stm>, vars: &[TVar<u64>]) -> u64 {
    std::thread::scope(|s| {
        for t in 0..4u16 {
            let stm = Arc::clone(stm);
            let vars = vars.to_vec();
            s.spawn(move || {
                let mut ctx = stm.register_as(ThreadId(t));
                for i in 0..150usize {
                    let v = vars[(t as usize * 31 + i) % vars.len()].clone();
                    ctx.atomically(TxnId(0), |tx| tx.modify(&v, |x| x + 1));
                }
            });
        }
    });
    vars.iter().map(TVar::load_quiesced).sum()
}

fn make_vars(stripes: Option<usize>) -> Vec<TVar<u64>> {
    match stripes {
        None => (0..64).map(|_| TVar::new(0)).collect(),
        Some(n) => {
            let table = Arc::new(LockTable::new(n));
            (0..64).map(|_| TVar::new_striped(&table, 0)).collect()
        }
    }
}

fn main() {
    println!("lock-granularity sweep (64 vars, 4 threads):");
    for (label, stripes) in [
        ("per-object", None),
        ("striped-256", Some(256)),
        ("striped-16", Some(16)),
        ("striped-2", Some(2)),
    ] {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let vars = make_vars(stripes);
        let total = run_counters(&stm, &vars);
        assert_eq!(total, 600);
        println!(
            "  {label:12}: {} commits, {} aborts",
            stm.total_commits(),
            stm.total_aborts()
        );
    }

    let mut c = Criterion::default().configure_from_args();
    for (label, stripes) in [("per_object", None), ("striped_16", Some(16))] {
        let mut g = c.benchmark_group(format!("ablation_lock_granularity/{label}"));
        g.sample_size(10);
        g.bench_function("counters", |b| {
            b.iter(|| {
                let stm = Stm::new(StmConfig::with_yield_injection(2));
                let vars = make_vars(stripes);
                black_box(run_counters(&stm, &vars))
            })
        });
        g.finish();
    }
    c.final_summary();
}
