//! Ablation: LibTM's four conflict-detection modes × two resolution
//! policies on a contended transfer workload (the design space Section
//! VIII chooses "fully-optimistic + abort-readers" from).

use criterion::Criterion;
use gstm_core::{ThreadId, TxnId};
use gstm_libtm::{DetectionMode, LibTm, LibTmConfig, Resolution, TObject};
use std::hint::black_box;
use std::sync::Arc;

fn transfer_workload(tm: &Arc<LibTm>) -> i64 {
    let accounts: Vec<TObject<i64>> = (0..8).map(|_| TObject::new(100)).collect();
    std::thread::scope(|s| {
        for t in 0..4u16 {
            let tm = Arc::clone(tm);
            let accounts = accounts.clone();
            s.spawn(move || {
                let mut ctx = tm.register_as(ThreadId(t));
                for i in 0..200usize {
                    let from = (t as usize + i) % accounts.len();
                    let to = (t as usize + i * 3 + 1) % accounts.len();
                    if from == to {
                        continue;
                    }
                    let (a, b) = (accounts[from].clone(), accounts[to].clone());
                    ctx.atomically(TxnId(0), |tx| {
                        let av = tx.read(&a)?;
                        let bv = tx.read(&b)?;
                        tx.write(&a, av - 1)?;
                        tx.write(&b, bv + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    accounts.iter().map(TObject::load_quiesced).sum()
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    for detection in [
        DetectionMode::FullyPessimistic,
        DetectionMode::PessimisticRead,
        DetectionMode::PessimisticWrite,
        DetectionMode::FullyOptimistic,
    ] {
        for resolution in [Resolution::WaitForReaders, Resolution::AbortReaders] {
            let mut g = c.benchmark_group(format!(
                "ablation_detection/{detection:?}_{resolution:?}"
            ));
            g.sample_size(10);
            g.bench_function("transfers", |b| {
                b.iter(|| {
                    let tm = LibTm::new(LibTmConfig {
                        detection,
                        resolution,
                        yield_prob_log2: Some(3),
                        ..LibTmConfig::default()
                    });
                    let total = transfer_workload(&tm);
                    assert_eq!(total, 800, "conservation violated");
                    black_box(total)
                })
            });
            g.finish();
        }
    }
    c.final_summary();
}
