//! The STM runtime: instance configuration, thread registration, and the
//! `atomically` retry loop that wires transactions to the guidance hook.

use crate::clock::{self, ClockMode, ClockSnapshot, MAX_SHARDS, SHARD_BITS};
use crate::txn::{Abort, Txn, TxResult};
use gstm_core::contention::ContentionTracker;
use gstm_core::events::{AbortCause, ConflictSite};
use gstm_core::faultinject::{spin_for, FaultPlan, FaultSite};
use gstm_core::placement::{self, PlacementPlan};
use gstm_core::telemetry::{ClockStats, ShardClockStats, Telemetry, TraceKind};
use gstm_core::ThreadStats;
use gstm_core::{GuidanceHook, NoopHook, Pair, ThreadId, TxnId};
use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};
use std::sync::Arc;

/// When conflicts between writers are detected (Section II of the paper:
/// "STMs provide options of eager and lazy conflict detection").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Detection {
    /// TL2's native mode: writes are buffered and locks are taken at
    /// commit; writer/writer conflicts surface at commit time.
    Lazy,
    /// Encounter-time write locking: a write acquires the location's
    /// lock immediately, so writer/writer conflicts abort at the write
    /// instead of at commit. Reads remain invisible and version-validated
    /// either way.
    Eager,
}

/// Tunables of one STM instance.
#[derive(Clone, Copy, Debug)]
pub struct StmConfig {
    /// Conflict-detection mode for writes.
    pub detection: Detection,
    /// Bounded spin iterations per write-lock acquisition at commit.
    pub commit_spin: u32,
    /// Interleave injection: when `Some(k)`, every transactional read or
    /// write yields the OS thread with probability `2^-k`.
    ///
    /// This is the documented substitution for the paper's 8/16-core
    /// hardware: on a host with fewer cores than worker threads, the OS
    /// timeslice is far longer than a transaction, so transactional
    /// lifetimes would barely overlap and the abort/commit races the paper
    /// studies would not occur. Injected yields restore dense
    /// interleaving. `None` disables injection (the default).
    pub yield_prob_log2: Option<u32>,
    /// Yield once after every abort before retrying (reduces livelock).
    pub abort_backoff: bool,
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            detection: Detection::Lazy,
            commit_spin: 64,
            yield_prob_log2: None,
            abort_backoff: true,
        }
    }
}

impl StmConfig {
    /// A config with interleave injection at probability `2^-k`.
    pub fn with_yield_injection(k: u32) -> Self {
        StmConfig {
            yield_prob_log2: Some(k),
            ..Self::default()
        }
    }
}

/// Configures and builds an [`Stm`] instance — the one construction
/// path; the named constructors ([`Stm::new`], [`Stm::with_hook`], …)
/// are thin wrappers over it. First concrete step toward the planned
/// `StmBackend` trait: backends will take a builder, not a constructor
/// ladder.
///
/// ```
/// use gstm_tl2::{ClockMode, StmBuilder, StmConfig};
///
/// let stm = StmBuilder::new(StmConfig::default())
///     .clock(ClockMode::Sharded)
///     .build();
/// assert_eq!(stm.clock_mode(), ClockMode::Sharded);
/// ```
pub struct StmBuilder {
    hook: Arc<dyn GuidanceHook>,
    config: StmConfig,
    telemetry: Option<Arc<Telemetry>>,
    faults: Option<Arc<FaultPlan>>,
    clock_mode: ClockMode,
    placement: Option<Arc<PlacementPlan>>,
    contention: Option<Arc<ContentionTracker>>,
}

impl StmBuilder {
    /// A builder for a plain instance (no recording, no gating, global
    /// clock, no placement).
    pub fn new(config: StmConfig) -> Self {
        StmBuilder {
            hook: Arc::new(NoopHook),
            config,
            telemetry: None,
            faults: None,
            clock_mode: ClockMode::Global,
            placement: None,
            contention: None,
        }
    }

    /// Report to the given guidance hook — a [`gstm_core::RecorderHook`]
    /// for profiling or a [`gstm_core::GuidedHook`] for model-driven
    /// execution.
    pub fn hook(mut self, hook: Arc<dyn GuidanceHook>) -> Self {
        self.hook = hook;
        self
    }

    /// Additionally record commits, aborts, and latencies into
    /// `telemetry`.
    pub fn telemetry(mut self, telemetry: Option<Arc<Telemetry>>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Arm a deterministic fault plan: each attempt probes the
    /// `tl2-abort` site (forced abort through the ordinary rollback
    /// path, surfaced as [`AbortCause::Explicit`]) and the
    /// `tl2-commit-delay` site (a bounded spin while the write set is
    /// buffered, emulating a descheduled committer).
    pub fn faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// Select the commit clock (default [`ClockMode::Global`]).
    pub fn clock(mut self, mode: ClockMode) -> Self {
        self.clock_mode = mode;
        self
    }

    /// Install a thread-placement plan: [`Stm::register_as`] pins each
    /// worker per the plan and assigns its clock shard from it.
    pub fn placement(mut self, plan: Option<Arc<PlacementPlan>>) -> Self {
        self.placement = plan;
        self
    }

    /// Attach a conflict-provenance tracker: every abort is recorded
    /// with its cause, owner, and conflicting address. `None` (the
    /// default) keeps the abort path at one predictable branch.
    pub fn contention(mut self, tracker: Option<Arc<ContentionTracker>>) -> Self {
        self.contention = tracker;
        self
    }

    /// Build the instance.
    pub fn build(self) -> Arc<Stm> {
        Arc::new(Stm {
            hook: self.hook,
            config: self.config,
            telemetry: self.telemetry,
            faults: self.faults,
            clock_mode: self.clock_mode,
            placement: self.placement,
            contention: self.contention,
            shard_commits: (0..MAX_SHARDS).map(|_| AtomicU64::new(0)).collect(),
            clock_baseline: clock::sharded().snapshot(),
            next_thread: AtomicU16::new(0),
            total_commits: AtomicU64::new(0),
            total_aborts: AtomicU64::new(0),
        })
    }
}

/// One STM instance: a guidance hook plus global counters. All instances
/// of one [`ClockMode`] commit through that mode's process-wide clock
/// ([`clock::global`] / [`clock::sharded`]), so a [`crate::TVar`] may be
/// used under any instance of the same mode — instances differ only in
/// configuration and instrumentation. Handing a `TVar` from a global-mode
/// instance to a sharded one is safe when the accesses are ordered (setup
/// then run: sharded stamps always exceed prior global stamps); the
/// reverse direction and concurrent cross-mode sharing are not supported.
pub struct Stm {
    pub(crate) hook: Arc<dyn GuidanceHook>,
    pub(crate) config: StmConfig,
    /// Optional runtime telemetry. `None` (the default) keeps every
    /// instrumentation point in `atomically` to a single predictable
    /// branch — no timestamps are read and no counters are touched.
    pub(crate) telemetry: Option<Arc<Telemetry>>,
    /// Optional deterministic fault plan (chaos mode): the retry loop
    /// probes the forced-abort and commit-delay sites. `None` keeps the
    /// clean path at one predictable branch per site, like `telemetry`.
    pub(crate) faults: Option<Arc<FaultPlan>>,
    /// Which commit clock transactions of this instance use.
    pub(crate) clock_mode: ClockMode,
    /// Placement plan consulted at registration (core pinning + shard
    /// assignment); `None` = unpinned, shard = thread id mod shards.
    placement: Option<Arc<PlacementPlan>>,
    /// Optional conflict-provenance tracker fed on every abort; `None`
    /// keeps the abort path at one predictable branch, like `telemetry`.
    pub(crate) contention: Option<Arc<ContentionTracker>>,
    /// Per-shard successful-commit counters (sharded mode; all zero in
    /// global mode). Every commit increments exactly one slot, so the
    /// slots partition `total_commits` — the analyzer's exactness check.
    shard_commits: Box<[AtomicU64]>,
    /// Process-wide clock state at construction; [`Stm::clock_stats`]
    /// reports deltas against it so per-run stats are run-local even
    /// though the clocks outlive the instance.
    clock_baseline: ClockSnapshot,
    next_thread: AtomicU16,
    total_commits: AtomicU64,
    total_aborts: AtomicU64,
}

impl Stm {
    /// A plain STM instance (no recording, no gating).
    pub fn new(config: StmConfig) -> Arc<Self> {
        StmBuilder::new(config).build()
    }

    /// An instance reporting to the given guidance hook — a
    /// [`gstm_core::RecorderHook`] for profiling or a
    /// [`gstm_core::GuidedHook`] for model-driven execution.
    pub fn with_hook(hook: Arc<dyn GuidanceHook>, config: StmConfig) -> Arc<Self> {
        StmBuilder::new(config).hook(hook).build()
    }

    /// An instance that additionally records commits, aborts, and
    /// latencies into `telemetry`.
    pub fn with_telemetry(
        hook: Arc<dyn GuidanceHook>,
        config: StmConfig,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Arc<Self> {
        StmBuilder::new(config).hook(hook).telemetry(telemetry).build()
    }

    /// [`Stm::with_telemetry`] plus a deterministic fault plan (see
    /// [`StmBuilder::faults`]).
    pub fn with_robustness(
        hook: Arc<dyn GuidanceHook>,
        config: StmConfig,
        telemetry: Option<Arc<Telemetry>>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Arc<Self> {
        StmBuilder::new(config)
            .hook(hook)
            .telemetry(telemetry)
            .faults(faults)
            .build()
    }

    /// Register the calling thread, assigning the next sequential
    /// [`ThreadId`] (0, 1, 2, ...).
    pub fn register(self: &Arc<Self>) -> ThreadCtx {
        let id = ThreadId(self.next_thread.fetch_add(1, Ordering::Relaxed));
        self.register_as(id)
    }

    /// Register the calling thread under an explicit id. Workloads use
    /// this to keep thread ids stable across runs — the model's states
    /// name specific thread ids, so profiled and guided runs must agree on
    /// the numbering.
    ///
    /// This is also where placement lands: if the instance carries a
    /// [`PlacementPlan`], the calling OS thread is pinned to its planned
    /// core (best-effort; unsupported platforms no-op) and its clock
    /// shard comes from the plan instead of the `id % MAX_SHARDS`
    /// default.
    pub fn register_as(self: &Arc<Self>, id: ThreadId) -> ThreadCtx {
        let mut shard = (id.index() % MAX_SHARDS) as u16;
        if let Some(plan) = &self.placement {
            if let Some(s) = plan.shard_of(id) {
                shard = s % MAX_SHARDS as u16;
            }
            if let Some(core) = plan.core_of(id) {
                placement::pin_current_thread(core as usize);
            }
        }
        if self.clock_mode == ClockMode::Sharded {
            clock::sharded().register_shard(shard);
        }
        ThreadCtx {
            stm: Arc::clone(self),
            thread: id,
            shard,
            stats: ThreadStats::new(),
            rng: 0x9e37_79b9_7f4a_7c15u64 ^ ((id.0 as u64) << 32 | 0x1234_5678),
        }
    }

    /// The guidance hook installed at construction.
    pub fn hook(&self) -> &Arc<dyn GuidanceHook> {
        &self.hook
    }

    /// The telemetry sink installed at construction, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// This instance's configuration.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// Total commits across all threads so far.
    pub fn total_commits(&self) -> u64 {
        self.total_commits.load(Ordering::Relaxed)
    }

    /// Total aborts across all threads so far.
    pub fn total_aborts(&self) -> u64 {
        self.total_aborts.load(Ordering::Relaxed)
    }

    /// The commit clock this instance uses.
    pub fn clock_mode(&self) -> ClockMode {
        self.clock_mode
    }

    /// The placement plan installed at construction, if any.
    pub fn placement(&self) -> Option<&Arc<PlacementPlan>> {
        self.placement.as_ref()
    }

    /// The conflict-provenance tracker installed at construction, if
    /// any.
    pub fn contention(&self) -> Option<&Arc<ContentionTracker>> {
        self.contention.as_ref()
    }

    /// Current value of this instance's commit clock — the global
    /// counter in global mode, the lazily aggregated bound in sharded
    /// mode. Either way, no stamp a new transaction can observe exceeds
    /// this value.
    pub fn clock_now(&self) -> u64 {
        match self.clock_mode {
            ClockMode::Global => clock::global().now(),
            ClockMode::Sharded => clock::sharded().bound(),
        }
    }

    /// Record a successful commit against its clock shard (sharded mode).
    #[inline]
    pub(crate) fn record_shard_commit(&self, shard: u16) {
        self.shard_commits[shard as usize % MAX_SHARDS].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-run commit-clock statistics: deltas of the process-wide
    /// clock(s) against this instance's construction-time baseline, plus
    /// the instance-local per-shard commit partition. Feed to
    /// [`Telemetry::set_clock_stats`] for export.
    pub fn clock_stats(&self) -> ClockStats {
        match self.clock_mode {
            ClockMode::Global => ClockStats {
                sharded: false,
                global_advances: clock::global()
                    .now()
                    .saturating_sub(self.clock_baseline.global),
                shards: Vec::new(),
            },
            ClockMode::Sharded => {
                let now = clock::sharded().snapshot();
                let base = &self.clock_baseline;
                let mut shards = Vec::new();
                for s in 0..now.active.max(base.active) {
                    let advances = now.advances[s].saturating_sub(base.advances[s]);
                    let commits = self.shard_commits[s].load(Ordering::Relaxed);
                    if advances == 0 && commits == 0 {
                        continue;
                    }
                    shards.push(ShardClockStats {
                        shard: s as u16,
                        advances,
                        epoch_start: base.stamps[s] >> SHARD_BITS,
                        epoch_end: now.stamps[s] >> SHARD_BITS,
                        commits,
                    });
                }
                ClockStats {
                    sharded: true,
                    global_advances: 0,
                    shards,
                }
            }
        }
    }
}

/// A worker thread's handle onto an [`Stm`]: identity, statistics, and the
/// `atomically` entry point. Not `Sync` — each thread owns its context.
pub struct ThreadCtx {
    stm: Arc<Stm>,
    thread: ThreadId,
    /// Clock shard this thread commits through (sharded mode).
    shard: u16,
    stats: ThreadStats,
    rng: u64,
}

impl ThreadCtx {
    /// This thread's id within the STM instance.
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// The clock shard this thread commits through in sharded mode.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// The owning STM instance.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ThreadStats {
        &self.stats
    }

    /// Take the statistics, resetting the context's counters.
    pub fn take_stats(&mut self) -> ThreadStats {
        std::mem::take(&mut self.stats)
    }

    fn next_seed(&mut self) -> u64 {
        // splitmix64 step — decorrelates attempts and threads.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Run `f` transactionally at static transaction site `txid`,
    /// retrying on conflicts until it commits. Returns `f`'s result from
    /// the committing attempt.
    ///
    /// Each attempt is bracketed by the guidance hook: `gate` before the
    /// attempt (blocks in guided mode while the transaction would steer
    /// execution to a low-probability state), `on_abort` after a rollback,
    /// `on_commit` after success.
    pub fn atomically<R>(
        &mut self,
        txid: TxnId,
        mut f: impl FnMut(&mut Txn) -> TxResult<R>,
    ) -> R {
        let me = Pair::new(txid, self.thread);
        let mut retries: u32 = 0;
        // One Arc clone per transaction (free when telemetry is off);
        // keeps the instrumentation borrows disjoint from `&mut self`.
        let tel = self.stm.telemetry.clone();
        // Timestamp taken when an attempt aborts; the gap to the next
        // attempt's start is the abort-to-retry backoff histogram sample.
        let mut backoff_from: Option<u64> = None;
        loop {
            if let Some(t) = &tel {
                let t0 = t.now_ns();
                if let Some(prev) = backoff_from.take() {
                    t.record_backoff(me, t0.saturating_sub(prev));
                }
                self.stm.hook.gate(me);
                let wait_ns = t.now_ns().saturating_sub(t0);
                t.record_gate_wait(me, wait_ns);
                t.trace(me, TraceKind::Begin);
                // A per-attempt gate slice only when the wait is visible
                // at trace resolution (guided waits are µs-scale; an
                // ungated pass is tens of ns and would drown the trace).
                if wait_ns >= 1_000 {
                    t.trace(me, TraceKind::GateWait { wait_ns });
                }
            } else {
                self.stm.hook.gate(me);
            }
            let seed = self.next_seed();
            // Interleave injection, per-transaction component: on real
            // hardware every thread is always running, so between two of
            // one thread's transactions other threads commit with high
            // probability regardless of transaction length. A begin-time
            // yield (p = 1/2) restores that for sub-timeslice
            // transactions, which otherwise commit in long same-thread
            // runs on an oversubscribed host.
            if self.stm.config.yield_prob_log2.is_some() && seed & 1 == 0 {
                std::thread::yield_now();
            }
            let rv = self.stm.clock_now();
            let mut tx = Txn::new(&self.stm, me, rv, seed, self.shard);
            let body = f(&mut tx);
            let mut commit_ns = 0u64;
            let mut writes = 0u32;
            let outcome = match body {
                Err(a) => Err(a),
                // Chaos sites, probed between a successful body and the
                // commit: a forced abort takes the ordinary rollback path
                // (write set discarded, hook notified, stats counted) as
                // AbortCause::Explicit; a commit delay stalls the
                // committer while its locks/validation window is widest.
                Ok(_)
                    if self.stm.faults.as_ref().is_some_and(|f| {
                        f.should_fire(FaultSite::Tl2Abort, self.thread.index()).is_some()
                    }) =>
                {
                    Err(Abort {
                        cause: AbortCause::Explicit,
                        site: ConflictSite::UNKNOWN,
                    })
                }
                Ok(r) => {
                    if let Some(f) = &self.stm.faults {
                        if let Some(fault) = f.should_fire(FaultSite::Tl2CommitDelay, self.thread.index()) {
                            spin_for(fault.spins);
                        }
                    }
                    if let Some(t) = &tel {
                        writes = tx.write_set_size() as u32;
                        let c0 = t.now_ns();
                        let res = tx.commit();
                        commit_ns = t.now_ns().saturating_sub(c0);
                        res.map(|()| r)
                    } else {
                        tx.commit().map(|()| r)
                    }
                }
            };
            match outcome {
                Ok(r) => {
                    self.stm.hook.on_commit(me);
                    self.stm.total_commits.fetch_add(1, Ordering::Relaxed);
                    if self.stm.clock_mode == ClockMode::Sharded {
                        self.stm.record_shard_commit(self.shard);
                    }
                    self.stats.record_commit(retries);
                    if let Some(t) = &tel {
                        t.record_commit(me, commit_ns);
                        t.trace(me, TraceKind::Commit { commit_ns, writes });
                    }
                    return r;
                }
                Err(abort) => {
                    self.stm.hook.on_abort(me, abort.cause);
                    self.stm.total_aborts.fetch_add(1, Ordering::Relaxed);
                    self.stats.record_abort(abort.cause);
                    if let Some(ct) = &self.stm.contention {
                        ct.record(self.thread, abort.cause, abort.site);
                    }
                    if let Some(t) = &tel {
                        t.record_abort(me, abort.cause);
                        t.trace(
                            me,
                            TraceKind::Abort { cause: abort.cause, addr: abort.site.raw() },
                        );
                        backoff_from = Some(t.now_ns());
                    }
                    retries = retries.saturating_add(1);
                    if self.stm.config.abort_backoff {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvar::TVar;

    #[test]
    fn single_thread_counter() {
        let stm = Stm::new(StmConfig::default());
        let v = TVar::new(0u64);
        let mut ctx = stm.register();
        for _ in 0..100 {
            ctx.atomically(TxnId(0), |tx| tx.modify(&v, |x| x + 1));
        }
        assert_eq!(v.load_quiesced(), 100);
        assert_eq!(ctx.stats().commits, 100);
        assert_eq!(stm.total_commits(), 100);
    }

    #[test]
    fn registration_assigns_sequential_ids() {
        let stm = Stm::new(StmConfig::default());
        assert_eq!(stm.register().thread_id(), ThreadId(0));
        assert_eq!(stm.register().thread_id(), ThreadId(1));
        assert_eq!(stm.register_as(ThreadId(9)).thread_id(), ThreadId(9));
    }

    #[test]
    fn concurrent_increments_are_atomic() {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let v = TVar::new(0u64);
        let threads = 4;
        let per = 250;
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let v = v.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    for _ in 0..per {
                        ctx.atomically(TxnId(0), |tx| tx.modify(&v, |x| x + 1));
                    }
                });
            }
        });
        assert_eq!(v.load_quiesced(), threads as u64 * per);
    }

    #[test]
    fn transfers_preserve_total() {
        // The classic bank-transfer invariant: concurrent transfers between
        // accounts never create or destroy money.
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let accounts: Vec<TVar<i64>> = (0..8).map(|_| TVar::new(1000)).collect();
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let stm = Arc::clone(&stm);
                let accounts = accounts.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    let mut x = t as usize;
                    for i in 0..200 {
                        let from = (x + i) % accounts.len();
                        let to = (x + i * 7 + 1) % accounts.len();
                        if from == to {
                            continue;
                        }
                        x = x.wrapping_mul(31).wrapping_add(17);
                        let (a, b) = (accounts[from].clone(), accounts[to].clone());
                        ctx.atomically(TxnId(0), |tx| {
                            let av = tx.read(&a)?;
                            let bv = tx.read(&b)?;
                            tx.write(&a, av - 10)?;
                            tx.write(&b, bv + 10)?;
                            Ok(())
                        });
                    }
                });
            }
        });
        let total: i64 = accounts.iter().map(|a| a.load_quiesced()).sum();
        assert_eq!(total, 8000);
    }

    #[test]
    fn read_own_write_is_visible() {
        let stm = Stm::new(StmConfig::default());
        let v = TVar::new(1u32);
        let mut ctx = stm.register();
        let seen = ctx.atomically(TxnId(0), |tx| {
            tx.write(&v, 5)?;
            let x = tx.read(&v)?;
            tx.write(&v, x + 1)?;
            tx.read(&v)
        });
        assert_eq!(seen, 6);
        assert_eq!(v.load_quiesced(), 6);
    }

    #[test]
    fn aborted_attempts_roll_back_writes() {
        let stm = Stm::new(StmConfig::default());
        let v = TVar::new(0u32);
        let mut ctx = stm.register();
        let mut attempts = 0;
        ctx.atomically(TxnId(0), |tx| {
            attempts += 1;
            tx.write(&v, 99)?;
            if attempts == 1 {
                return Err(tx.retry());
            }
            tx.write(&v, 7)
        });
        assert_eq!(v.load_quiesced(), 7, "first attempt's write discarded");
        assert_eq!(ctx.stats().aborts, 1);
        assert_eq!(ctx.stats().explicit, 1);
    }

    #[test]
    fn snapshot_isolation_between_reads() {
        // A transaction reading two locations must never observe a torn
        // pair (x, y) with x + y != 0 while a writer keeps them balanced.
        let stm = Stm::new(StmConfig::with_yield_injection(1));
        let x = TVar::new(0i64);
        let y = TVar::new(0i64);
        std::thread::scope(|s| {
            let stm2 = Arc::clone(&stm);
            let (x2, y2) = (x.clone(), y.clone());
            s.spawn(move || {
                let mut ctx = stm2.register_as(ThreadId(0));
                for i in 1..=300i64 {
                    ctx.atomically(TxnId(0), |tx| {
                        tx.write(&x2, i)?;
                        tx.write(&y2, -i)?;
                        Ok(())
                    });
                }
            });
            let stm3 = Arc::clone(&stm);
            let (x3, y3) = (x.clone(), y.clone());
            s.spawn(move || {
                let mut ctx = stm3.register_as(ThreadId(1));
                for _ in 0..300 {
                    let (a, b) = ctx.atomically(TxnId(1), |tx| {
                        let a = tx.read(&x3)?;
                        let b = tx.read(&y3)?;
                        Ok((a, b))
                    });
                    assert_eq!(a + b, 0, "observed torn snapshot ({a}, {b})");
                }
            });
        });
    }
}
