//! Transactional variables.
//!
//! A [`TVar<T>`] is an object-granularity transactional location: a
//! versioned lock word plus the current committed snapshot of the value.
//! Snapshots are immutable once published; commits swap in a fresh
//! snapshot and retire the old one through epoch-based reclamation, so a
//! reader that loses TL2's version race still clones from an intact (if
//! stale) snapshot and then aborts — no torn reads, no unsafety leaking to
//! users.

use crate::vlock::{LockTable, VLock};
use crossbeam::epoch::{self, Atomic, Guard, Owned};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Where a location's versioned lock lives: embedded (TL2 "PO",
/// per-object — the default) or in a shared [`LockTable`] stripe (TL2
/// "PS", constant lock memory but occasional false conflicts).
pub(crate) enum LockSlot {
    Own(VLock),
    Striped(Arc<LockTable>, usize),
}

impl LockSlot {
    #[inline]
    pub(crate) fn vlock(&self) -> &VLock {
        match self {
            LockSlot::Own(l) => l,
            LockSlot::Striped(table, index) => table.lock(*index),
        }
    }
}

/// The lock-word view of a transactional location, type-erased so read and
/// write sets can hold heterogeneous targets.
pub(crate) trait TxTarget: Send + Sync {
    /// The location's versioned lock.
    fn vlock(&self) -> &VLock;
    /// A stable identity for the location (its allocation address), used
    /// for write-set ordering and read-own-write lookups.
    fn key(&self) -> usize;
}

pub(crate) struct TVarInner<T> {
    pub(crate) lock: LockSlot,
    value: Atomic<T>,
}

impl<T: Send + Sync> TxTarget for TVarInner<T> {
    fn vlock(&self) -> &VLock {
        self.lock.vlock()
    }

    fn key(&self) -> usize {
        self as *const Self as *const () as usize
    }
}

impl<T: Clone> TVarInner<T> {
    /// Clone the current snapshot. Callers must sandwich this between lock
    /// samples (TL2's read protocol) to learn whether the snapshot was
    /// current.
    pub(crate) fn read_snapshot(&self) -> T {
        let guard = epoch::pin();
        let shared = self.value.load(Ordering::Acquire, &guard);
        // SAFETY: the snapshot pointer is never null after construction and
        // cannot be reclaimed while this thread's epoch pin is live;
        // snapshots are immutable after publication, so cloning cannot race
        // with a write to the pointee.
        unsafe { shared.deref() }.clone()
    }
}

impl<T> TVarInner<T> {
    /// Publish a new snapshot (commit path — the caller holds the lock) and
    /// retire the old one.
    pub(crate) fn publish(&self, value: T, guard: &Guard) {
        let old = self.value.swap(Owned::new(value), Ordering::AcqRel, guard);
        // SAFETY: `old` was the unique current snapshot; after the swap no
        // new readers can obtain it, and existing readers are protected by
        // their epoch pins until `defer_destroy` runs.
        unsafe { guard.defer_destroy(old) };
    }
}

impl<T> Drop for TVarInner<T> {
    fn drop(&mut self) {
        let slot = std::mem::replace(&mut self.value, Atomic::null());
        // SAFETY: we have exclusive access (`&mut self` in drop) and the
        // slot is never null, so converting to `Owned` and dropping it
        // frees the final snapshot exactly once.
        unsafe {
            drop(slot.try_into_owned());
        }
    }
}

/// A transactional variable holding a value of type `T`.
///
/// Cloning a `TVar` clones the *handle* (both clones refer to the same
/// location), which is how transactional data structures link nodes.
///
/// All access from concurrently running code must go through
/// [`crate::Txn::read`] / [`crate::Txn::write`]; [`TVar::load_quiesced`]
/// reads directly and is meant for setup and post-run verification.
pub struct TVar<T> {
    pub(crate) inner: Arc<TVarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// Create a location initialized to `value`, at version 0, with its
    /// own embedded lock (TL2 "PO" mode — the default).
    pub fn new(value: T) -> Self {
        TVar {
            inner: Arc::new(TVarInner {
                lock: LockSlot::Own(VLock::new(0)),
                value: Atomic::new(value),
            }),
        }
    }

    /// Create a location whose lock is a stripe of `table` (TL2 "PS"
    /// mode): lock metadata stays constant-size no matter how many
    /// locations exist, at the cost of occasional false conflicts between
    /// locations hashing to the same stripe.
    pub fn new_striped(table: &Arc<LockTable>, value: T) -> Self {
        let inner = Arc::new_cyclic(|weak: &std::sync::Weak<TVarInner<T>>| {
            let index = table.index_for(weak.as_ptr() as usize);
            TVarInner {
                lock: LockSlot::Striped(Arc::clone(table), index),
                value: Atomic::new(value),
            }
        });
        TVar { inner }
    }

    /// Read the committed value outside any transaction.
    ///
    /// Linearizes against commits (it retries around a concurrently held
    /// lock) but provides no multi-location consistency; use it for
    /// initialization and quiesced post-run checks.
    pub fn load_quiesced(&self) -> T {
        loop {
            let s1 = self.inner.lock.vlock().sample();
            if s1.is_locked() {
                std::thread::yield_now();
                continue;
            }
            let v = self.inner.read_snapshot();
            if self.inner.lock.vlock().sample() == s1 {
                return v;
            }
        }
    }

    /// The location's stable identity.
    pub(crate) fn key(&self) -> usize {
        self.inner.key()
    }

    /// Whether two handles refer to the same location.
    pub fn same_location(&self, other: &TVar<T>) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl<T: Clone + Send + Sync + std::fmt::Debug + 'static> std::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TVar")
            .field("value", &self.load_quiesced())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_quiesced_read() {
        let v = TVar::new(41i32);
        assert_eq!(v.load_quiesced(), 41);
    }

    #[test]
    fn clone_aliases_the_location() {
        let a = TVar::new(vec![1, 2, 3]);
        let b = a.clone();
        assert!(a.same_location(&b));
        assert_eq!(a.key(), b.key());
        let c = TVar::new(vec![1, 2, 3]);
        assert!(!a.same_location(&c));
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn publish_swaps_snapshots() {
        let v = TVar::new(1u64);
        let guard = epoch::pin();
        v.inner.publish(2, &guard);
        drop(guard);
        assert_eq!(v.load_quiesced(), 2);
    }

    #[test]
    fn drop_reclaims_snapshot() {
        // Dropping a TVar holding an allocation must not leak or
        // double-free; run under a counting payload.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static LIVE: AtomicUsize = AtomicUsize::new(0);

        #[derive(Clone)]
        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }

        {
            let _v = TVar::new(Counted::new());
            assert_eq!(LIVE.load(Ordering::SeqCst), 1);
        }
        assert_eq!(LIVE.load(Ordering::SeqCst), 0);
    }
}
