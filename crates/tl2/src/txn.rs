//! Transactions: read/write sets, the TL2 read protocol, and the commit
//! protocol (commit-time locking, read-set validation, write-back).

use crate::runtime::{Detection, Stm};
use crate::tvar::{TVar, TxTarget};
use crate::vlock::VLock;
use crossbeam::epoch::{self, Guard};
use gstm_core::{AbortCause, AddrSet, ConflictSite, Pair};
use std::any::Any;
use std::sync::Arc;

/// Control-flow signal that the current transaction attempt must roll
/// back. Produced by conflict detection (or [`Txn::retry`]) and propagated
/// with `?` out of the user's transaction body to the retry loop.
#[derive(Clone, Copy, Debug)]
pub struct Abort {
    /// What killed the attempt.
    pub cause: AbortCause,
    /// Where the conflict was detected (unknown for explicit retries).
    pub site: ConflictSite,
}

/// Result of a transactional operation.
pub type TxResult<T> = Result<T, Abort>;

/// A buffered write awaiting commit.
trait WriteEntry: Send {
    fn target(&self) -> &dyn TxTarget;
    fn key(&self) -> usize;
    /// Install the buffered value into the location (lock held).
    fn publish(&self, guard: &Guard);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

struct TypedWrite<T> {
    tvar: TVar<T>,
    value: T,
}

impl<T: Clone + Send + Sync + 'static> WriteEntry for TypedWrite<T> {
    fn target(&self) -> &dyn TxTarget {
        &*self.tvar.inner
    }

    fn key(&self) -> usize {
        self.tvar.key()
    }

    fn publish(&self, guard: &Guard) {
        self.tvar.inner.publish(self.value.clone(), guard);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One in-flight transaction attempt.
///
/// Created by [`crate::ThreadCtx::atomically`]; user code receives
/// `&mut Txn` and performs reads and writes through it. All conflict
/// detection surfaces as an [`Abort`] error, which the retry loop converts
/// into a rollback and a fresh attempt.
pub struct Txn<'stm> {
    stm: &'stm Stm,
    me: Pair,
    rv: u64,
    /// Clock shard this transaction commits through (sharded mode).
    shard: u16,
    read_set: Vec<Arc<dyn TxTarget>>,
    /// Locations already in `read_set`, keyed by allocation address —
    /// consulted on every read, so it avoids a SipHash per probe.
    read_keys: AddrSet,
    write_set: Vec<Box<dyn WriteEntry>>,
    /// Encounter-time locks held in eager detection mode, with the
    /// version each lock word carried before acquisition (needed to
    /// restore on abort and to validate own reads at commit).
    eager_locks: Vec<(Arc<dyn TxTarget>, u64)>,
    /// xorshift state for the interleave-injection knob.
    rng: u64,
    n_reads: u64,
    n_writes: u64,
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        // Abort path (or a panicking body): restore every encounter-time
        // lock to its pre-acquisition version. The commit path drains
        // `eager_locks` before returning, so this releases nothing there.
        for (target, prev) in self.eager_locks.drain(..) {
            target.vlock().unlock(prev);
        }
    }
}

impl<'stm> Txn<'stm> {
    pub(crate) fn new(stm: &'stm Stm, me: Pair, rv: u64, rng_seed: u64, shard: u16) -> Self {
        Txn {
            stm,
            me,
            rv,
            shard,
            read_set: Vec::new(),
            read_keys: AddrSet::new(),
            write_set: Vec::new(),
            eager_locks: Vec::new(),
            rng: rng_seed | 1,
            n_reads: 0,
            n_writes: 0,
        }
    }

    /// The `<txn,thread>` identity of this attempt.
    pub fn who(&self) -> Pair {
        self.me
    }

    /// The read version sampled from the global clock at begin.
    pub fn rv(&self) -> u64 {
        self.rv
    }

    /// Number of transactional reads performed so far.
    pub fn reads(&self) -> u64 {
        self.n_reads
    }

    /// Number of transactional writes performed so far.
    pub fn writes(&self) -> u64 {
        self.n_writes
    }

    /// Number of distinct locations buffered in the write set (what the
    /// commit protocol will lock and write back; telemetry reports this
    /// per committed attempt).
    pub fn write_set_size(&self) -> usize {
        self.write_set.len()
    }

    /// Number of distinct locations tracked in the read set (what
    /// commit-time validation will re-check).
    pub fn read_set_size(&self) -> usize {
        self.read_set.len()
    }

    /// Explicitly abort and retry the transaction (e.g. a queue consumer
    /// finding the queue empty).
    pub fn retry(&self) -> Abort {
        Abort {
            cause: AbortCause::Explicit,
            site: ConflictSite::UNKNOWN,
        }
    }

    /// The interleave-injection point: with the configured probability,
    /// yield the OS thread so transactional lifetimes overlap densely even
    /// on a machine with fewer cores than worker threads. A no-op unless
    /// [`crate::StmConfig::yield_prob_log2`] is set.
    #[inline]
    fn maybe_yield(&mut self) {
        if let Some(k) = self.stm.config.yield_prob_log2 {
            // xorshift64 — cheap, good enough for a coin flip.
            let mut x = self.rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.rng = x;
            if x & ((1u64 << k) - 1) == 0 {
                std::thread::yield_now();
            }
        }
    }

    fn write_index(&self, key: usize) -> Option<usize> {
        // Write sets are small in STAMP-style workloads; linear scan beats
        // a map until tens of entries.
        self.write_set.iter().position(|e| e.key() == key)
    }

    /// Transactional read (TL2 read protocol).
    ///
    /// Returns the buffered value if this transaction already wrote the
    /// location; otherwise samples the versioned lock, clones the
    /// snapshot, and re-samples — aborting on a held lock or a version
    /// newer than `rv`.
    pub fn read<T: Clone + Send + Sync + 'static>(&mut self, tvar: &TVar<T>) -> TxResult<T> {
        self.n_reads += 1;
        self.maybe_yield();
        if let Some(i) = self.write_index(tvar.key()) {
            // Invariant, not a recoverable error: keys are allocation
            // addresses and every entry keeps its TVar's Arc alive, so a
            // same-key entry is the same allocation and thus the same T.
            // A failed downcast means heap corruption; retrying the
            // transaction could not fix it.
            let entry = self.write_set[i]
                .as_any()
                .downcast_ref::<TypedWrite<T>>()
                .expect("write-set entry type mismatch for aliased key");
            return Ok(entry.value.clone());
        }
        let inner = &tvar.inner;
        let s1 = inner.lock.vlock().sample();
        if s1.is_locked() {
            return Err(Abort {
                cause: AbortCause::ReadLocked { owner: s1.owner() },
                site: ConflictSite::at(tvar.key()),
            });
        }
        if s1.version() > self.rv {
            return Err(Abort {
                cause: AbortCause::ReadVersion,
                site: ConflictSite::at(tvar.key()),
            });
        }
        let value = inner.read_snapshot();
        if inner.lock.vlock().sample() != s1 {
            return Err(Abort {
                cause: AbortCause::ReadVersion,
                site: ConflictSite::at(tvar.key()),
            });
        }
        if self.read_keys.insert(tvar.key()) {
            self.read_set.push(Arc::clone(&tvar.inner) as Arc<dyn TxTarget>);
        }
        Ok(value)
    }

    /// Acquire a lock at encounter time (eager detection). Deduplicates by
    /// *lock* identity, so stripe-mates (TL2 "PS" mode) acquire their
    /// shared lock once. `retain` produces the owning handle kept until
    /// release — invoked only on actual acquisition, so the already-held
    /// (re-write and stripe-mate) path clones no `Arc`.
    fn eager_acquire(
        &mut self,
        lock: &VLock,
        key: usize,
        retain: impl FnOnce() -> Arc<dyn TxTarget>,
    ) -> TxResult<()> {
        let lock_addr = lock as *const _ as usize;
        if self
            .eager_locks
            .iter()
            .any(|(t, _)| t.vlock() as *const _ as usize == lock_addr)
        {
            return Ok(());
        }
        let mut last_owner = None;
        for _ in 0..self.stm.config.commit_spin {
            match lock.try_lock(self.me.thread) {
                Ok(prev) => {
                    self.eager_locks.push((retain(), prev));
                    return Ok(());
                }
                Err(observed) => {
                    last_owner = observed.owner();
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        }
        Err(Abort {
            cause: AbortCause::CommitLockBusy { owner: last_owner },
            site: ConflictSite::at(key),
        })
    }

    /// Transactional write: buffer `value` in the write set (write-back).
    /// In eager mode the location's lock is also acquired immediately, so
    /// writer/writer conflicts surface here instead of at commit.
    pub fn write<T: Clone + Send + Sync + 'static>(
        &mut self,
        tvar: &TVar<T>,
        value: T,
    ) -> TxResult<()> {
        self.n_writes += 1;
        self.maybe_yield();
        if self.stm.config.detection == Detection::Eager {
            self.eager_acquire(tvar.inner.vlock(), tvar.key(), || {
                Arc::clone(&tvar.inner) as Arc<dyn TxTarget>
            })?;
        }
        if let Some(i) = self.write_index(tvar.key()) {
            // Same invariant as the read-own-write path: a matching key
            // proves this is the same live allocation, hence the same T.
            let entry = self.write_set[i]
                .as_any_mut()
                .downcast_mut::<TypedWrite<T>>()
                .expect("write-set entry type mismatch for aliased key");
            entry.value = value;
        } else {
            self.write_set.push(Box::new(TypedWrite {
                tvar: tvar.clone(),
                value,
            }));
        }
        Ok(())
    }

    /// Read-modify-write convenience.
    pub fn modify<T: Clone + Send + Sync + 'static>(
        &mut self,
        tvar: &TVar<T>,
        f: impl FnOnce(T) -> T,
    ) -> TxResult<()> {
        let v = self.read(tvar)?;
        self.write(tvar, f(v))
    }

    /// The TL2 commit protocol. Consumes the transaction.
    ///
    /// 1. Read-only transactions commit immediately: every read was
    ///    validated against `rv` at read time.
    /// 2. Lock the write set in address order (bounded spinning per lock;
    ///    on failure, release and abort with the holder's identity).
    /// 3. Advance the global clock to obtain `wv`.
    /// 4. Unless `wv == rv + 1` (no concurrent committer — TL2's fast
    ///    path), validate the read set: every location must be unlocked at
    ///    version ≤ `rv`, or locked by this very transaction with its
    ///    pre-lock version ≤ `rv`.
    /// 5. Publish buffered values and release the locks stamped with `wv`.
    pub(crate) fn commit(mut self) -> Result<(), Abort> {
        if self.write_set.is_empty() {
            return Ok(());
        }
        self.write_set.sort_by_key(|e| e.key());
        let me = self.me.thread;
        let eager = self.stm.config.detection == Detection::Eager;

        // Phase 2: acquire write locks (lazy mode only — eager writes
        // already hold theirs). Each entry is `(write-set index, pre-lock
        // version, lock address)`; carrying the lock address here both
        // dedupes stripe-mates without a per-commit hash set and lets
        // validation find own-lock versions with a plain scan.
        let mut locked: Vec<(usize, u64, usize)> = Vec::with_capacity(self.write_set.len());
        let release_all = |write_set: &[Box<dyn WriteEntry>], locked: &[(usize, u64, usize)]| {
            for &(j, prev, _) in locked {
                write_set[j].target().vlock().unlock(prev);
            }
        };
        if !eager {
            // Dedupe by lock identity: in striped ("PS") mode several
            // write-set entries can share one lock, which must be taken
            // (and later released) exactly once. The write set is sorted
            // and small, so a linear scan over already-acquired locks
            // beats hashing.
            for (i, entry) in self.write_set.iter().enumerate() {
                let lock = entry.target().vlock();
                let lock_addr = lock as *const _ as usize;
                if locked.iter().any(|&(_, _, a)| a == lock_addr) {
                    continue;
                }
                let mut acquired = None;
                let mut last_owner = None;
                for _ in 0..self.stm.config.commit_spin {
                    match lock.try_lock(me) {
                        Ok(prev) => {
                            acquired = Some(prev);
                            break;
                        }
                        Err(observed) => {
                            last_owner = observed.owner();
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        }
                    }
                }
                match acquired {
                    Some(prev) => locked.push((i, prev, lock_addr)),
                    None => {
                        release_all(&self.write_set, &locked);
                        return Err(Abort {
                            cause: AbortCause::CommitLockBusy { owner: last_owner },
                            site: ConflictSite::at(entry.key()),
                        });
                    }
                }
            }
        }

        // Phase 3: obtain the write version from the configured clock.
        let wv = match self.stm.clock_mode {
            crate::clock::ClockMode::Global => crate::clock::global().advance(),
            crate::clock::ClockMode::Sharded => crate::clock::sharded().advance(self.shard),
        };

        // Phase 4: validate the read set. A location this transaction
        // itself locked (at commit in lazy mode, at encounter in eager
        // mode) validates against its pre-lock version.
        //
        // Under the sharded clock the `wv == rv + 1` shortcut is unsound:
        // another shard may have stamped versions between our rv and wv
        // that the arithmetic test cannot see, so sharded commits always
        // validate.
        if self.stm.clock_mode == crate::clock::ClockMode::Sharded || wv != self.rv + 1 {
            let own_prev = |txn: &Self, locked: &[(usize, u64, usize)], lock_addr: usize| -> Option<u64> {
                locked
                    .iter()
                    .find(|&&(_, _, a)| a == lock_addr)
                    .map(|&(_, p, _)| p)
                    .or_else(|| {
                        txn.eager_locks
                            .iter()
                            .find(|(t, _)| t.vlock() as *const _ as usize == lock_addr)
                            .map(|&(_, p)| p)
                    })
            };
            for target in &self.read_set {
                let lock = target.vlock();
                if lock.is_locked_by(me) {
                    match own_prev(&self, &locked, lock as *const _ as usize) {
                        Some(p) if p <= self.rv => continue,
                        _ => {
                            release_all(&self.write_set, &locked);
                            return Err(Abort {
                                cause: AbortCause::Validation,
                                site: ConflictSite::at(target.key()),
                            });
                        }
                    }
                } else {
                    let s = lock.sample();
                    if s.is_locked() || s.version() > self.rv {
                        release_all(&self.write_set, &locked);
                        return Err(Abort {
                            cause: AbortCause::Validation,
                            site: ConflictSite::at(target.key()),
                        });
                    }
                }
            }
        }

        // Phase 5: write back, then release each *acquired lock* exactly
        // once with wv (write-set entries may share stripes). Draining
        // eager_locks keeps Drop (the abort path) from double-releasing.
        let guard = epoch::pin();
        for entry in &self.write_set {
            entry.publish(&guard);
        }
        for &(j, _, _) in &locked {
            self.write_set[j].target().vlock().unlock(wv);
        }
        for (target, _) in self.eager_locks.drain(..) {
            target.vlock().unlock(wv);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{Stm, StmConfig};
    use crate::tvar::TVar;
    use gstm_core::{AbortCause, ThreadId, TxnId};
    use std::sync::Arc;

    #[test]
    fn blind_writes_commit_without_reads() {
        let stm = Stm::new(StmConfig::default());
        let v = TVar::new(1u32);
        let mut ctx = stm.register();
        ctx.atomically(TxnId(0), |tx| tx.write(&v, 42));
        assert_eq!(v.load_quiesced(), 42);
    }

    #[test]
    fn non_copy_values_round_trip() {
        let stm = Stm::new(StmConfig::default());
        let v: TVar<Vec<String>> = TVar::new(vec!["a".into()]);
        let mut ctx = stm.register();
        ctx.atomically(TxnId(0), |tx| {
            let mut val = tx.read(&v)?;
            val.push("b".into());
            tx.write(&v, val)
        });
        assert_eq!(v.load_quiesced(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn repeated_writes_keep_last_value_and_one_entry() {
        let stm = Stm::new(StmConfig::default());
        let v = TVar::new(0u8);
        let mut ctx = stm.register();
        let writes_seen = ctx.atomically(TxnId(0), |tx| {
            tx.write(&v, 1)?;
            tx.write(&v, 2)?;
            tx.write(&v, 3)?;
            Ok(tx.writes())
        });
        assert_eq!(writes_seen, 3, "three write calls");
        assert_eq!(v.load_quiesced(), 3, "last value wins");
    }

    #[test]
    fn read_counts_and_rv_are_exposed() {
        let stm = Stm::new(StmConfig::default());
        let a = TVar::new(1u32);
        let b = TVar::new(2u32);
        let mut ctx = stm.register();
        let (reads, rv_ok, who) = ctx.atomically(TxnId(7), |tx| {
            let _ = tx.read(&a)?;
            let _ = tx.read(&b)?;
            let _ = tx.read(&a)?; // duplicate: still counted as a read call
            Ok((tx.reads(), tx.rv() <= stm.clock_now(), tx.who()))
        });
        assert_eq!(reads, 3);
        assert!(rv_ok);
        assert_eq!(who.txn, TxnId(7));
    }

    #[test]
    fn read_of_locked_location_aborts_with_owner() {
        // Lock a TVar's word directly (simulating a committing writer)
        // and observe the reader's abort cause.
        let stm = Stm::new(StmConfig::default());
        let v = TVar::new(5u32);
        v.inner.lock.vlock().try_lock(ThreadId(9)).unwrap();
        let mut ctx = stm.register_as(ThreadId(0));
        let mut causes = Vec::new();
        let mut attempts = 0;
        ctx.atomically(TxnId(0), |tx| {
            attempts += 1;
            if attempts > 1 {
                // Unlock so the retry can succeed.
                return Ok(());
            }
            match tx.read(&v) {
                Err(a) => {
                    causes.push(a.cause);
                    v.inner.lock.vlock().unlock(0);
                    Err(a)
                }
                Ok(_) => Ok(()),
            }
        });
        assert_eq!(
            causes,
            vec![AbortCause::ReadLocked {
                owner: Some(ThreadId(9))
            }]
        );
    }

    #[test]
    fn conflicting_commit_aborts_reader_with_version_cause() {
        // Thread A reads x, then B commits to x, then A reads y: A must
        // see a consistent snapshot, i.e. abort the first attempt.
        let stm = Stm::new(StmConfig::default());
        let x = TVar::new(0u32);
        let y = TVar::new(0u32);
        let stm2 = Arc::clone(&stm);
        let (x2, y2) = (x.clone(), y.clone());
        let mut ctx = stm.register_as(ThreadId(0));
        let mut attempt = 0;
        let (a, b) = ctx.atomically(TxnId(0), |tx| {
            attempt += 1;
            let a = tx.read(&x2)?;
            if attempt == 1 {
                // Interleave a conflicting committer.
                let mut other = stm2.register_as(ThreadId(1));
                other.atomically(TxnId(1), |tx2| {
                    tx2.write(&x2, 10)?;
                    tx2.write(&y2, 10)
                });
            }
            let b = tx.read(&y2)?;
            Ok((a, b))
        });
        assert_eq!(attempt, 2, "first attempt aborted");
        assert_eq!((a, b), (10, 10), "second attempt sees the new snapshot");
        assert_eq!(ctx.stats().read_version + ctx.stats().validation, 1);
    }

    #[test]
    fn eager_mode_counter_is_atomic() {
        let config = StmConfig {
            detection: crate::Detection::Eager,
            yield_prob_log2: Some(2),
            ..StmConfig::default()
        };
        let stm = Stm::new(config);
        let v = TVar::new(0u64);
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let stm = Arc::clone(&stm);
                let v = v.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    for _ in 0..150 {
                        ctx.atomically(TxnId(0), |tx| tx.modify(&v, |x| x + 1));
                    }
                });
            }
        });
        assert_eq!(v.load_quiesced(), 600);
    }

    #[test]
    fn eager_writer_conflict_aborts_at_write_not_commit() {
        let config = StmConfig {
            detection: crate::Detection::Eager,
            commit_spin: 2,
            ..StmConfig::default()
        };
        let stm = Stm::new(config);
        let v = TVar::new(0u32);
        // Simulate a concurrent writer holding the lock.
        let prev = v.inner.lock.vlock().try_lock(ThreadId(9)).unwrap();
        let mut ctx = stm.register_as(ThreadId(0));
        let mut first_attempt_cause = None;
        let mut attempts = 0;
        ctx.atomically(TxnId(0), |tx| {
            attempts += 1;
            if attempts > 1 {
                return Ok(()); // lock released below; succeed now
            }
            match tx.write(&v, 5) {
                Err(a) => {
                    first_attempt_cause = Some(a.cause);
                    v.inner.lock.vlock().unlock(prev);
                    Err(a)
                }
                Ok(()) => Ok(()),
            }
        });
        assert!(matches!(
            first_attempt_cause,
            Some(AbortCause::CommitLockBusy {
                owner: Some(ThreadId(9))
            })
        ));
    }

    #[test]
    fn eager_abort_restores_lock_version() {
        let config = StmConfig {
            detection: crate::Detection::Eager,
            ..StmConfig::default()
        };
        let stm = Stm::new(config);
        let v = TVar::new(3u32);
        let before = v.inner.lock.vlock().sample();
        let mut ctx = stm.register();
        let mut attempts = 0;
        ctx.atomically(TxnId(0), |tx| {
            attempts += 1;
            tx.write(&v, 9)?; // takes the encounter-time lock
            if attempts == 1 {
                return Err(tx.retry()); // rollback must restore the lock
            }
            Ok(())
        });
        assert_eq!(v.load_quiesced(), 9);
        // Version advanced exactly once (the successful commit), and the
        // aborted attempt left no residue in between.
        assert!(!before.is_locked());
        assert_eq!(attempts, 2);
    }

    #[test]
    fn eager_transfers_preserve_total() {
        let config = StmConfig {
            detection: crate::Detection::Eager,
            yield_prob_log2: Some(2),
            ..StmConfig::default()
        };
        let stm = Stm::new(config);
        let accounts: Vec<TVar<i64>> = (0..6).map(|_| TVar::new(100)).collect();
        std::thread::scope(|s| {
            for t in 0..3u16 {
                let stm = Arc::clone(&stm);
                let accounts = accounts.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    for i in 0..120usize {
                        let from = (t as usize + i) % accounts.len();
                        let to = (t as usize + i * 5 + 1) % accounts.len();
                        if from == to {
                            continue;
                        }
                        let (a, b) = (accounts[from].clone(), accounts[to].clone());
                        ctx.atomically(TxnId(0), |tx| {
                            let av = tx.read(&a)?;
                            let bv = tx.read(&b)?;
                            tx.write(&a, av - 2)?;
                            tx.write(&b, bv + 2)?;
                            Ok(())
                        });
                    }
                });
            }
        });
        let total: i64 = accounts.iter().map(TVar::load_quiesced).sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn striped_vars_share_a_table_and_stay_correct() {
        use crate::vlock::LockTable;
        // A 2-stripe table over 16 vars: heavy lock sharing, maximal
        // false conflicts — correctness must be unaffected.
        let table = Arc::new(LockTable::new(2));
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let vars: Vec<TVar<u64>> = (0..16)
            .map(|_| TVar::new_striped(&table, 0))
            .collect();
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let stm = Arc::clone(&stm);
                let vars = vars.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    for i in 0..100usize {
                        let a = vars[(t as usize + i) % vars.len()].clone();
                        let b = vars[(t as usize + i * 7 + 1) % vars.len()].clone();
                        ctx.atomically(TxnId(0), |tx| {
                            // a and b may share a stripe: the commit
                            // protocol must take that lock once.
                            tx.modify(&a, |x| x + 1)?;
                            tx.modify(&b, |x| x + 1)
                        });
                    }
                });
            }
        });
        let total: u64 = vars.iter().map(TVar::load_quiesced).sum();
        assert_eq!(total, 4 * 100 * 2);
    }

    #[test]
    fn striped_and_own_locked_vars_mix_in_one_txn() {
        use crate::vlock::LockTable;
        let table = Arc::new(LockTable::new(4));
        let stm = Stm::new(StmConfig::default());
        let own = TVar::new(1u32);
        let striped = TVar::new_striped(&table, 2u32);
        let mut ctx = stm.register();
        let sum = ctx.atomically(TxnId(0), |tx| {
            let a = tx.read(&own)?;
            let b = tx.read(&striped)?;
            tx.write(&own, a + 10)?;
            tx.write(&striped, b + 10)?;
            Ok(a + b)
        });
        assert_eq!(sum, 3);
        assert_eq!(own.load_quiesced(), 11);
        assert_eq!(striped.load_quiesced(), 12);
    }

    #[test]
    fn eager_mode_handles_stripe_sharing() {
        use crate::vlock::LockTable;
        // Single-stripe table: every striped var shares one lock. Eager
        // writes must acquire it once and release it once.
        let table = Arc::new(LockTable::new(1));
        let config = StmConfig {
            detection: crate::Detection::Eager,
            ..StmConfig::default()
        };
        let stm = Stm::new(config);
        let a = TVar::new_striped(&table, 0u32);
        let b = TVar::new_striped(&table, 0u32);
        let mut ctx = stm.register();
        ctx.atomically(TxnId(0), |tx| {
            tx.write(&a, 1)?;
            tx.write(&b, 2)
        });
        assert_eq!((a.load_quiesced(), b.load_quiesced()), (1, 2));
        // The shared lock is released: a later txn works.
        ctx.atomically(TxnId(0), |tx| tx.modify(&a, |x| x + 1));
        assert_eq!(a.load_quiesced(), 2);
    }

    #[test]
    fn false_conflicts_occur_but_resolve() {
        use crate::vlock::LockTable;
        // Two disjoint counters on one stripe: writers to different data
        // contend on the shared lock, yet both make progress.
        let table = Arc::new(LockTable::new(1));
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let a = TVar::new_striped(&table, 0u64);
        let b = TVar::new_striped(&table, 0u64);
        std::thread::scope(|s| {
            let stm1 = Arc::clone(&stm);
            let a1 = a.clone();
            s.spawn(move || {
                let mut ctx = stm1.register_as(ThreadId(0));
                for _ in 0..200 {
                    ctx.atomically(TxnId(0), |tx| tx.modify(&a1, |x| x + 1));
                }
            });
            let stm2 = Arc::clone(&stm);
            let b2 = b.clone();
            s.spawn(move || {
                let mut ctx = stm2.register_as(ThreadId(1));
                for _ in 0..200 {
                    ctx.atomically(TxnId(1), |tx| tx.modify(&b2, |x| x + 1));
                }
            });
        });
        assert_eq!(a.load_quiesced(), 200);
        assert_eq!(b.load_quiesced(), 200);
    }

    #[test]
    fn write_then_read_other_var_keeps_isolation() {
        let stm = Stm::new(StmConfig::default());
        let x = TVar::new(1u32);
        let y = TVar::new(2u32);
        let mut ctx = stm.register();
        let sum = ctx.atomically(TxnId(0), |tx| {
            tx.write(&x, 100)?;
            let xv = tx.read(&x)?; // own write
            let yv = tx.read(&y)?; // committed value
            Ok(xv + yv)
        });
        assert_eq!(sum, 102);
    }
}
