//! # gstm-tl2 — a TL2-style software transactional memory
//!
//! A Rust implementation of Transactional Locking II (Dice, Shalev, Shavit
//! — DISC'06), the STM the paper's STAMP experiments run on:
//!
//! * **Version clock** ([`clock::GlobalClock`], or the GV5-style
//!   [`clock::ShardedClock`] selected with [`clock::ClockMode`]): committers
//!   advance it; every transaction samples it at begin into its read
//!   version `rv`. The sharded clock removes the single CAS hot-spot by
//!   letting each committer stamp `(epoch << SHARD_BITS) | shard` on its
//!   own cache-line-padded shard word, at the cost of always validating
//!   the read set at commit.
//! * **Commit-time locking, write-back**: writes are buffered in the
//!   transaction's write set; at commit the write locations are locked,
//!   the read set is validated against `rv`, and the buffered values are
//!   published with the new write version `wv`.
//! * **Invisible readers, lazy conflict detection**: a read samples the
//!   location's versioned lock before and after reading; a version newer
//!   than `rv` (or a held lock) aborts the transaction.
//!
//! Transactional locations are object-granularity [`TVar<T>`]s. Snapshot
//! values are immutable once published and reclaimed with epoch-based
//! garbage collection (`crossbeam-epoch`), which is what makes the racy
//! read window of TL2 expressible in safe terms: a reader that loses the
//! version race clones a stale-but-intact snapshot and then aborts.
//!
//! The runtime reports every begin/abort/commit to a
//! [`gstm_core::GuidanceHook`], which is how profiled and guided execution
//! (the paper's contribution) plug in without touching the STM's core.
//!
//! ## Example
//!
//! ```
//! use gstm_tl2::{Stm, StmConfig, TVar};
//! use gstm_core::TxnId;
//! use std::sync::Arc;
//!
//! let stm = Stm::new(StmConfig::default());
//! let acct = TVar::new(100i64);
//! let mut ctx = stm.register();
//! let seen = ctx.atomically(TxnId(0), |tx| {
//!     let v = tx.read(&acct)?;
//!     tx.write(&acct, v - 30)?;
//!     Ok(v)
//! });
//! assert_eq!(seen, 100);
//! assert_eq!(acct.load_quiesced(), 70);
//! ```

pub mod clock;
pub mod runtime;
pub mod tvar;
pub mod txn;
pub mod vlock;

pub use clock::{ClockMode, GlobalClock, ShardedClock};
pub use runtime::{Detection, Stm, StmBuilder, StmConfig, ThreadCtx};
pub use gstm_core::ThreadStats;
pub use tvar::TVar;
pub use txn::{Abort, TxResult, Txn};
pub use vlock::{LockTable, VLock};
