//! Versioned write-locks.
//!
//! Every [`crate::TVar`] embeds one 64-bit word that is either
//!
//! * **unlocked**, carrying the version (`wv`) of the last commit that
//!   wrote the location, or
//! * **locked**, carrying the [`ThreadId`] of the committing owner.
//!
//! Readers sample the word before and after reading the value; any change
//! (lock taken, version bumped) means a conflicting commit intervened.

use gstm_core::ThreadId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bit 63 set ⇒ locked; low 16 bits then hold the owner thread id.
const LOCKED_BIT: u64 = 1 << 63;

/// A snapshot of a lock word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Sample(u64);

impl Sample {
    /// Is the lock currently held by a committing transaction?
    #[inline]
    pub fn is_locked(self) -> bool {
        self.0 & LOCKED_BIT != 0
    }

    /// The version stamped by the last commit. Only meaningful when
    /// unlocked.
    #[inline]
    pub fn version(self) -> u64 {
        debug_assert!(!self.is_locked());
        self.0
    }

    /// The owner recorded in a locked word.
    #[inline]
    pub fn owner(self) -> Option<ThreadId> {
        if self.is_locked() {
            Some(ThreadId((self.0 & 0xffff) as u16))
        } else {
            None
        }
    }
}

/// A versioned write-lock word.
#[derive(Debug, Default)]
pub struct VLock(AtomicU64);

impl VLock {
    /// An unlocked lock at the given version.
    pub const fn new(version: u64) -> Self {
        VLock(AtomicU64::new(version))
    }

    /// Sample the word.
    #[inline]
    pub fn sample(&self) -> Sample {
        Sample(self.0.load(Ordering::Acquire))
    }

    /// Try to acquire the lock. On success returns the version the word
    /// held (needed to restore it if the commit later aborts); on failure
    /// returns the observed sample (whose `owner()` names the holder).
    #[inline]
    pub fn try_lock(&self, owner: ThreadId) -> Result<u64, Sample> {
        let cur = self.0.load(Ordering::Acquire);
        if cur & LOCKED_BIT != 0 {
            return Err(Sample(cur));
        }
        let locked = LOCKED_BIT | owner.0 as u64;
        match self
            .0
            .compare_exchange(cur, locked, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => Ok(cur),
            Err(observed) => Err(Sample(observed)),
        }
    }

    /// Release the lock, stamping a (new or restored) version.
    ///
    /// Callers must hold the lock; the version must leave bit 63 clear.
    #[inline]
    pub fn unlock(&self, version: u64) {
        debug_assert!(version & LOCKED_BIT == 0, "version overflow");
        debug_assert!(self.sample().is_locked());
        self.0.store(version, Ordering::Release);
    }

    /// Whether the word is currently locked by `owner`. Used by read-set
    /// validation to accept locations the validating transaction itself
    /// locked for writing.
    #[inline]
    pub fn is_locked_by(&self, owner: ThreadId) -> bool {
        let cur = self.0.load(Ordering::Acquire);
        cur & LOCKED_BIT != 0 && (cur & 0xffff) as u16 == owner.0
    }
}

/// A fixed array of versioned locks shared by many transactional
/// locations — TL2's "PS" (per-stripe) mode. Locations hash to stripes,
/// so unrelated locations occasionally share a lock and *falsely*
/// conflict; the trade is constant lock-metadata memory regardless of
/// data-set size. Compare with the default per-location lock (TL2 "PO").
pub struct LockTable {
    locks: Box<[VLock]>,
    mask: usize,
}

impl LockTable {
    /// A table with `size` stripes, rounded up to a power of two.
    pub fn new(size: usize) -> Self {
        let n = size.max(2).next_power_of_two();
        LockTable {
            locks: (0..n).map(|_| VLock::new(0)).collect(),
            mask: n - 1,
        }
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.locks.len()
    }

    /// The stripe index an address hashes to.
    pub fn index_for(&self, addr: usize) -> usize {
        // Fibonacci hashing over the address, discarding alignment bits.
        let h = (addr >> 4).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> 32) as usize & self.mask
    }

    /// The lock at a stripe index.
    pub fn lock(&self, index: usize) -> &VLock {
        &self.locks[index & self.mask]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock_cycle() {
        let l = VLock::new(7);
        let s = l.sample();
        assert!(!s.is_locked());
        assert_eq!(s.version(), 7);

        let prev = l.try_lock(ThreadId(3)).unwrap();
        assert_eq!(prev, 7);
        let s = l.sample();
        assert!(s.is_locked());
        assert_eq!(s.owner(), Some(ThreadId(3)));
        assert!(l.is_locked_by(ThreadId(3)));
        assert!(!l.is_locked_by(ThreadId(4)));

        // Second acquisition fails and reports the holder.
        let err = l.try_lock(ThreadId(4)).unwrap_err();
        assert_eq!(err.owner(), Some(ThreadId(3)));

        l.unlock(42);
        let s = l.sample();
        assert!(!s.is_locked());
        assert_eq!(s.version(), 42);
    }

    #[test]
    fn samples_detect_version_changes() {
        let l = VLock::new(1);
        let before = l.sample();
        l.try_lock(ThreadId(0)).unwrap();
        l.unlock(2);
        let after = l.sample();
        assert_ne!(before, after, "version bump must change the sample");
    }

    #[test]
    fn lock_table_hashes_into_range_and_is_stable() {
        let t = LockTable::new(100);
        assert_eq!(t.stripes(), 128);
        for addr in [0usize, 64, 4096, usize::MAX - 64] {
            let i = t.index_for(addr);
            assert!(i < t.stripes());
            assert_eq!(i, t.index_for(addr), "stable hash");
        }
        // Locks are addressable and independent.
        t.lock(0).try_lock(ThreadId(0)).unwrap();
        assert!(t.lock(1).try_lock(ThreadId(1)).is_ok());
        t.lock(0).unlock(1);
        t.lock(1).unlock(1);
    }

    #[test]
    fn contended_locking_has_single_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let l = Arc::new(VLock::new(0));
        let wins = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..8u16 {
            let l = Arc::clone(&l);
            let wins = Arc::clone(&wins);
            handles.push(std::thread::spawn(move || {
                if l.try_lock(ThreadId(t)).is_ok() {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1);
    }
}
