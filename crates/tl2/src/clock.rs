//! The commit version clocks.
//!
//! TL2's central serialization device is a monotonically increasing
//! version counter. Transactions sample it at begin (`rv`); committing
//! writers advance it and stamp their write locations with the new value
//! (`wv`). A location whose version exceeds a transaction's `rv` was
//! written after that transaction began, so reading it would be
//! inconsistent.
//!
//! Two implementations are provided, selected per [`crate::Stm`] instance
//! by [`ClockMode`]:
//!
//! * [`GlobalClock`] — the textbook single atomic counter. Every commit
//!   is a `fetch_add` on one cache line; correct, simple, and the
//!   classic multi-core STM bottleneck.
//! * [`ShardedClock`] — a GV5-style sharded/deferred clock. Each
//!   committer advances only its own padded shard word and stamps
//!   versions as `(epoch << SHARD_BITS) | shard_id`; readers derive
//!   their `rv` from a lazily aggregated *bound* (the max over the
//!   active shard words and the global clock) instead of one contended
//!   line. See `DESIGN.md` §12 for the correctness argument.
//!
//! ## Version-space overflow
//!
//! Stamped versions live in the low 63 bits of a [`crate::VLock`] word —
//! bit 63 is the lock bit. `u64` arithmetic itself wraps only after
//! 2^64 advances (> 580 years at 10⁹ commits/s), but the *usable* space
//! is 2^63 for the global clock and 2^57 epochs for the sharded clock
//! (6 bits go to the shard id). Overflow is therefore a program-logic
//! impossibility, not a runtime condition: `advance` documents wrapping
//! `u64` semantics and carries a `debug_assert!` that the returned stamp
//! keeps bit 63 clear, so a hypothetical overflow is caught loudly in
//! debug builds instead of silently corrupting lock words in release.

use std::sync::atomic::{AtomicU64, Ordering};

/// Low bits of a sharded stamp that carry the shard id.
pub const SHARD_BITS: u32 = 6;

/// Number of clock shards (and the maximum number of usefully distinct
/// shard assignments).
pub const MAX_SHARDS: usize = 1 << SHARD_BITS;

/// Bit 63 of a version word is the lock bit ([`crate::vlock`]); no clock
/// may ever produce a stamp with it set.
const LOCK_BIT: u64 = 1 << 63;

/// Which commit clock an [`crate::Stm`] instance uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ClockMode {
    /// One process-wide atomic counter (TL2's GV1). The seed behavior —
    /// bit-compatible with every release before the sharded clock.
    #[default]
    Global,
    /// Per-thread-cluster shard words with a lazily aggregated global
    /// bound (GV5-style). Commits touch only their own cache line.
    Sharded,
}

impl ClockMode {
    /// Parse a `--clock=` flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "global" => Ok(ClockMode::Global),
            "sharded" => Ok(ClockMode::Sharded),
            other => Err(format!("unknown clock mode {other:?} (want global|sharded)")),
        }
    }

    /// The flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ClockMode::Global => "global",
            ClockMode::Sharded => "sharded",
        }
    }
}

/// A shared, monotonically increasing version clock.
#[derive(Debug, Default)]
pub struct GlobalClock(AtomicU64);

/// The process-wide version clock.
///
/// TL2 uses *one* global clock; sharing it across every [`crate::Stm`]
/// instance means a `TVar` created under one instance can safely be read
/// under another (its stamped versions are always ≤ the clock every
/// transaction samples its `rv` from).
static CLOCK: GlobalClock = GlobalClock::new();

/// The process-wide clock all [`ClockMode::Global`] instances commit
/// through (and a component of the sharded clock's bound).
#[inline]
pub fn global() -> &'static GlobalClock {
    &CLOCK
}

impl GlobalClock {
    /// A clock starting at version 0.
    pub const fn new() -> Self {
        GlobalClock(AtomicU64::new(0))
    }

    /// Sample the current version (a transaction's read version `rv`).
    #[inline]
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Atomically advance the clock and return the new version (a
    /// committing transaction's write version `wv`).
    ///
    /// Overflow behavior: the counter uses wrapping `u64` semantics
    /// (`fetch_add` wraps by definition), but the version space is
    /// 63 bits — bit 63 is the lock bit of every version word — so a
    /// stamp with bit 63 set would corrupt lock state. That requires
    /// 2^63 commits and cannot occur in practice; a `debug_assert!`
    /// turns the impossibility into a loud failure in debug builds.
    #[inline]
    pub fn advance(&self) -> u64 {
        let wv = self.0.fetch_add(1, Ordering::SeqCst).wrapping_add(1);
        debug_assert!(
            wv & LOCK_BIT == 0,
            "global clock overflowed into the lock bit (2^63 advances)"
        );
        wv
    }
}

/// One shard's clock state, padded to its own cache-line pair so
/// committers on different shards never false-share.
#[repr(align(128))]
struct ShardWord {
    /// The highest stamp published through this shard:
    /// `(epoch << SHARD_BITS) | shard_id`, or 0 if never advanced.
    stamp: AtomicU64,
    /// How many stamps [`ShardedClock::advance`] has returned for this
    /// shard (monotonicity witness: each advance raises the epoch by at
    /// least one, so `Δepoch ≥ Δadvances` over any interval).
    advances: AtomicU64,
}

impl ShardWord {
    const NEW: ShardWord = ShardWord {
        stamp: AtomicU64::new(0),
        advances: AtomicU64::new(0),
    };
}

/// A GV5-style sharded commit clock.
///
/// Committers advance only their own shard word; readers aggregate a
/// *bound* lazily by scanning the active shard words plus the global
/// clock. Stamps encode their shard in the low [`SHARD_BITS`] bits, so
/// distinct shards can never produce equal stamps and per-shard stamps
/// are strictly increasing.
///
/// The global clock is folded into the bound so values stamped through
/// [`ClockMode::Global`] *before* a sharded instance starts (setup
/// phases, earlier runs in the same process) stay readable: every
/// sharded stamp strictly exceeds the global clock's value at stamping
/// time. Concurrently sharing one `TVar` between a global-mode and a
/// sharded-mode instance is *not* supported.
pub struct ShardedClock {
    shards: [ShardWord; MAX_SHARDS],
    /// High-water mark of shard ids in use (`max shard + 1`), raised
    /// before a shard's first CAS so any nonzero shard word is covered
    /// by every later bound scan.
    active: AtomicU64,
}

/// A point-in-time copy of the sharded clock (plus the global clock),
/// used to compute per-run deltas — the clock is process-wide and
/// outlives any one [`crate::Stm`].
#[derive(Clone, Debug)]
pub struct ClockSnapshot {
    /// Global clock value.
    pub global: u64,
    /// Per-shard stamp words.
    pub stamps: [u64; MAX_SHARDS],
    /// Per-shard advance counters.
    pub advances: [u64; MAX_SHARDS],
    /// Active-shard high-water mark.
    pub active: usize,
}

/// The process-wide sharded clock (see [`global`] for why clocks are
/// process-wide, not per-instance).
static SHARDED: ShardedClock = ShardedClock::new();

/// The process-wide sharded clock all [`ClockMode::Sharded`] instances
/// commit through.
#[inline]
pub fn sharded() -> &'static ShardedClock {
    &SHARDED
}

impl ShardedClock {
    /// A sharded clock with every shard at epoch 0.
    pub const fn new() -> Self {
        ShardedClock {
            shards: [ShardWord::NEW; MAX_SHARDS],
            active: AtomicU64::new(0),
        }
    }

    /// The lazily aggregated global bound: the maximum of the global
    /// clock and every active shard word. A sharded transaction's `rv`.
    ///
    /// Reading N shard words is N uncontended cache hits in steady
    /// state — the words change only when *their* shard commits —
    /// versus every commit invalidating the single global line.
    pub fn bound(&self) -> u64 {
        let mut max = global().now();
        let active = (self.active.load(Ordering::SeqCst) as usize).min(MAX_SHARDS);
        for shard in &self.shards[..active] {
            let v = shard.stamp.load(Ordering::SeqCst);
            if v > max {
                max = v;
            }
        }
        max
    }

    /// Announce that `shard` will be used, so bound scans cover it even
    /// before its first commit.
    pub fn register_shard(&self, shard: u16) {
        let s = (shard as usize).min(MAX_SHARDS - 1);
        self.active.fetch_max(s as u64 + 1, Ordering::SeqCst);
    }

    /// Advance `shard` and return the new stamp
    /// `(epoch << SHARD_BITS) | shard` — a committing transaction's
    /// `wv`. Per shard, returned stamps are strictly increasing.
    ///
    /// The returned stamp is guaranteed to exceed every bound any
    /// reader could have observed before this call returns: after the
    /// CAS publishes the candidate stamp, a *post-check* re-reads the
    /// other shard words and the global clock, and retries at a higher
    /// epoch if any of them already reached the candidate — closing the
    /// race where a reader samples its `rv` between this committer's
    /// bound scan and its CAS (DESIGN.md §12).
    pub fn advance(&self, shard: u16) -> u64 {
        let s = (shard as usize).min(MAX_SHARDS - 1);
        self.active.fetch_max(s as u64 + 1, Ordering::SeqCst);
        loop {
            // Candidate: one epoch above everything currently visible.
            // `bound()` includes our own shard word, so the candidate
            // always exceeds it unless a same-shard committer races us.
            let epoch = (self.bound() >> SHARD_BITS).wrapping_add(1);
            let stamp = (epoch << SHARD_BITS) | s as u64;
            debug_assert!(
                stamp & LOCK_BIT == 0,
                "sharded clock overflowed into the lock bit (2^57 epochs)"
            );
            let cur = self.shards[s].stamp.load(Ordering::SeqCst);
            if cur >= stamp {
                continue; // same-shard race: re-derive from a fresh bound
            }
            if self.shards[s]
                .stamp
                .compare_exchange(cur, stamp, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            // Post-check: if any *other* clock component caught up to the
            // candidate while we were between the bound scan and the CAS,
            // a reader may already hold an rv ≥ stamp — retry at a higher
            // epoch. Our own (now published) word only raises future
            // bounds, which is harmless.
            let raced = global().now() >= stamp || {
                let active = (self.active.load(Ordering::SeqCst) as usize).min(MAX_SHARDS);
                self.shards[..active]
                    .iter()
                    .enumerate()
                    .any(|(o, w)| o != s && w.stamp.load(Ordering::SeqCst) >= stamp)
            };
            if raced {
                continue;
            }
            self.shards[s].advances.fetch_add(1, Ordering::SeqCst);
            return stamp;
        }
    }

    /// Current stamp word of a shard (0 if never advanced).
    pub fn shard_stamp(&self, shard: u16) -> u64 {
        self.shards[(shard as usize).min(MAX_SHARDS - 1)]
            .stamp
            .load(Ordering::SeqCst)
    }

    /// How many stamps [`ShardedClock::advance`] has returned for a shard.
    pub fn shard_advances(&self, shard: u16) -> u64 {
        self.shards[(shard as usize).min(MAX_SHARDS - 1)]
            .advances
            .load(Ordering::SeqCst)
    }

    /// The active-shard high-water mark (`max used shard + 1`).
    pub fn active(&self) -> usize {
        (self.active.load(Ordering::SeqCst) as usize).min(MAX_SHARDS)
    }

    /// Snapshot every component for later delta computation.
    pub fn snapshot(&self) -> ClockSnapshot {
        let mut stamps = [0u64; MAX_SHARDS];
        let mut advances = [0u64; MAX_SHARDS];
        for (i, w) in self.shards.iter().enumerate() {
            stamps[i] = w.stamp.load(Ordering::SeqCst);
            advances[i] = w.advances.load(Ordering::SeqCst);
        }
        ClockSnapshot {
            global: global().now(),
            stamps,
            advances,
            active: self.active(),
        }
    }
}

/// The epoch component of a sharded stamp.
#[inline]
pub fn stamp_epoch(stamp: u64) -> u64 {
    stamp >> SHARD_BITS
}

/// The shard component of a sharded stamp.
#[inline]
pub fn stamp_shard(stamp: u64) -> u16 {
    (stamp & (MAX_SHARDS as u64 - 1)) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_advances_are_unique() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.advance()).collect::<Vec<u64>>()
            }));
        }
        // Re-raise a worker panic with its original payload instead of
        // unwrapping the JoinHandle (which would swallow the assertion
        // message inside a Box<dyn Any>).
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every advance() must be unique");
        assert_eq!(c.now(), 4000);
    }

    #[test]
    fn global_stamps_are_monotone_under_contention() {
        // Satellite check for the overflow/monotonicity contract: per
        // thread, successive advance() results must strictly increase
        // and never set the lock bit, under real contention.
        let c = Arc::new(GlobalClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut prev = 0u64;
                    for _ in 0..2000 {
                        let wv = c.advance();
                        assert!(wv > prev, "stamp {wv} not above {prev}");
                        assert_eq!(wv & (1 << 63), 0, "stamp {wv} sets the lock bit");
                        prev = wv;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    }

    #[test]
    fn clock_mode_parses_both_spellings() {
        assert_eq!(ClockMode::parse("global"), Ok(ClockMode::Global));
        assert_eq!(ClockMode::parse("sharded"), Ok(ClockMode::Sharded));
        assert!(ClockMode::parse("gv5").is_err());
        assert_eq!(ClockMode::Sharded.as_str(), "sharded");
        assert_eq!(ClockMode::default(), ClockMode::Global);
    }

    #[test]
    fn sharded_stamps_encode_their_shard() {
        let c = ShardedClock::new();
        let a = c.advance(3);
        assert_eq!(stamp_shard(a), 3);
        assert!(stamp_epoch(a) >= 1);
        let b = c.advance(5);
        assert_eq!(stamp_shard(b), 5);
        assert!(b > a, "later advance observes the earlier stamp in its bound");
        assert!(c.active() >= 6);
    }

    #[test]
    fn sharded_bound_covers_every_stamp() {
        let c = ShardedClock::new();
        let mut last = 0;
        for s in 0..8u16 {
            last = c.advance(s);
            assert!(c.bound() >= last, "bound below a published stamp");
        }
        assert_eq!(c.bound(), last);
    }

    #[test]
    fn sharded_advance_exceeds_prior_global_stamps() {
        // Values stamped through the global clock before a sharded run
        // (setup phases) must stay below every sharded rv: the bound
        // folds the global clock in, and stamps strictly exceed it.
        let g = global().now();
        let c = ShardedClock::new();
        assert!(c.bound() >= g);
        let stamp = c.advance(0);
        assert!(stamp > g, "sharded stamp {stamp} not above global value {g}");
    }

    #[test]
    fn sharded_stamps_are_strictly_monotone_per_shard_under_contention() {
        // Two threads share shard 0, two more run shards 1 and 2; per
        // shard the returned stamps must strictly increase, globally
        // every stamp must be unique, and Δepoch ≥ Δadvances.
        let c = Arc::new(ShardedClock::new());
        const N: usize = 2000;
        let handles: Vec<_> = [0u16, 0, 1, 2]
            .iter()
            .map(|&shard| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut prev = 0u64;
                    let mut out = Vec::with_capacity(N);
                    for _ in 0..N {
                        let wv = c.advance(shard);
                        assert_eq!(stamp_shard(wv), shard);
                        assert!(wv > prev, "shard {shard}: stamp {wv} not above {prev}");
                        prev = wv;
                        out.push(wv);
                    }
                    out
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4 * N, "every sharded stamp must be unique");
        for shard in 0..3u16 {
            let advances = c.shard_advances(shard);
            let epoch = stamp_epoch(c.shard_stamp(shard));
            assert!(
                epoch >= advances,
                "shard {shard}: epoch {epoch} below advance count {advances}"
            );
        }
    }

    #[test]
    fn snapshot_captures_deltas() {
        let c = ShardedClock::new();
        c.advance(1);
        let before = c.snapshot();
        c.advance(1);
        c.advance(1);
        let after = c.snapshot();
        assert_eq!(after.advances[1] - before.advances[1], 2);
        assert!(after.stamps[1] > before.stamps[1]);
        assert!(after.active >= 2);
    }
}
