//! The global version clock.
//!
//! TL2's central serialization device: a single monotonically increasing
//! counter. Transactions sample it at begin (`rv`); committing writers
//! advance it and stamp their write locations with the new value (`wv`).
//! A location whose version exceeds a transaction's `rv` was written after
//! that transaction began, so reading it would be inconsistent.

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared, monotonically increasing version clock.
#[derive(Debug, Default)]
pub struct GlobalClock(AtomicU64);

/// The process-wide version clock.
///
/// TL2 uses *one* global clock; sharing it across every [`crate::Stm`]
/// instance means a `TVar` created under one instance can safely be read
/// under another (its stamped versions are always ≤ the clock every
/// transaction samples its `rv` from).
static CLOCK: GlobalClock = GlobalClock::new();

/// The process-wide clock all STM instances commit through.
#[inline]
pub fn global() -> &'static GlobalClock {
    &CLOCK
}

impl GlobalClock {
    /// A clock starting at version 0.
    pub const fn new() -> Self {
        GlobalClock(AtomicU64::new(0))
    }

    /// Sample the current version (a transaction's read version `rv`).
    #[inline]
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Atomically advance the clock and return the new version (a
    /// committing transaction's write version `wv`).
    #[inline]
    pub fn advance(&self) -> u64 {
        self.0.fetch_add(1, Ordering::SeqCst) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_advances_are_unique() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.advance()).collect::<Vec<u64>>()
            }));
        }
        // Re-raise a worker panic with its original payload instead of
        // unwrapping the JoinHandle (which would swallow the assertion
        // message inside a Box<dyn Any>).
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every advance() must be unique");
        assert_eq!(c.now(), 4000);
    }
}
