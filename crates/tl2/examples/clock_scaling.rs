//! Dependency-free twin of `crates/bench/benches/clock_scaling.rs`: the
//! measurement tool behind `crates/bench/baselines/clock_scaling.txt`.
//!
//! Prints `name value` rows (the baseline-file format) for the commit
//! clock A/B at 1/2/4/8 threads:
//!
//! * `advance_{mode}_{t}t_ns` / `commit_{mode}_{t}t_ns` — wall
//!   nanoseconds per operation, best of [`ROUNDS`] barrier-synchronized
//!   rounds (best-of-N because the shared host's noise is one-sided:
//!   interference only ever slows a round down). The span is
//!   `max(worker end) - min(worker start)` from per-worker timestamps,
//!   not a coordinator-side stopwatch — on an oversubscribed host the
//!   coordinator may not be rescheduled until workers already finished,
//!   which would undercount arbitrarily.
//! * `contended_{mode}_{t}t_permille` — commit-path clock *write*
//!   contention: of 1000 advances, how many wrote clock state another
//!   thread had written since this thread's previous advance. For the
//!   global clock that is every advance whose returned `wv` is not the
//!   thread's previous `wv + 1` — the single counter word ping-pongs
//!   between committers. For the sharded clock a committer's shard word
//!   is written by nobody else (one shard per thread here, as the
//!   placement planner arranges for non-conflicting threads), so the
//!   count is structurally zero; the example *verifies* that by checking
//!   the shard's advance counter against the thread's own op tally.
//!   Measured in a separate pass with a `yield_now` every
//!   [`YIELD_EVERY`] ops in *both* modes: on a host with fewer cores
//!   than threads a 200k-op loop fits inside one scheduler timeslice and
//!   would otherwise never interleave, hiding the contention entirely.
//!   The yields never enter the `_ns` timing rows, and the reported
//!   permille is the worst round of N (a best-of pick would be biased
//!   toward schedules that happened not to interleave).
//!
//! Usage: `clock_scaling [--rounds N]`

use gstm_tl2::clock;
use std::sync::{Arc, Barrier};
use std::time::Instant;

const THREAD_COUNTS: [u16; 4] = [1, 2, 4, 8];
const OPS_PER_THREAD: u64 = 200_000;
const ROUNDS: usize = 5;
/// Forced interleaving granularity for the contention pass.
const YIELD_EVERY: u64 = 64;

struct Sample {
    ns_per_op: f64,
    contended: u64,
    ops: u64,
}

/// One barrier-synchronized round: every thread runs `OPS_PER_THREAD`
/// advances, tallying contended writes. `yield_every` forces periodic
/// rescheduling so threads interleave even when cores < threads.
fn round(threads: u16, sharded: bool, yield_every: Option<u64>) -> Sample {
    let barrier = Arc::new(Barrier::new(threads as usize));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let shard = t % clock::MAX_SHARDS as u16;
                if sharded {
                    clock::sharded().register_shard(shard);
                }
                let mut contended = 0u64;
                let mut prev = 0u64;
                barrier.wait();
                let start = Instant::now();
                if sharded {
                    let before = clock::sharded().shard_advances(shard);
                    for i in 0..OPS_PER_THREAD {
                        std::hint::black_box(clock::sharded().advance(shard));
                        if yield_every.is_some_and(|k| i % k == k - 1) {
                            std::thread::yield_now();
                        }
                    }
                    // One shard per thread: nobody else may have advanced
                    // this shard word. Any surplus would be a foreign
                    // write to our commit-path line — contention.
                    let after = clock::sharded().shard_advances(shard);
                    contended = (after - before).saturating_sub(OPS_PER_THREAD);
                } else {
                    for i in 0..OPS_PER_THREAD {
                        let wv = clock::global().advance();
                        // A gap means another committer wrote the shared
                        // counter word since our last advance: this op
                        // paid for a contended line.
                        if i > 0 && wv != prev + 1 {
                            contended += 1;
                        }
                        prev = wv;
                        if yield_every.is_some_and(|k| i % k == k - 1) {
                            std::thread::yield_now();
                        }
                    }
                }
                (start, Instant::now(), contended)
            })
        })
        .collect();
    let mut contended = 0u64;
    let mut first_start: Option<Instant> = None;
    let mut last_end: Option<Instant> = None;
    for h in handles {
        let (start, end, c) = h.join().unwrap();
        contended += c;
        first_start = Some(first_start.map_or(start, |s| s.min(start)));
        last_end = Some(last_end.map_or(end, |e| e.max(end)));
    }
    let span = last_end.unwrap().duration_since(first_start.unwrap());
    let ops = threads as u64 * OPS_PER_THREAD;
    Sample {
        ns_per_op: span.as_nanos() as f64 / ops as f64,
        contended,
        ops,
    }
}

fn best_of(rounds: usize, threads: u16, sharded: bool, yield_every: Option<u64>) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..rounds {
        let s = round(threads, sharded, yield_every);
        if best.as_ref().map_or(true, |b| s.ns_per_op < b.ns_per_op) {
            best = Some(s);
        }
    }
    best.unwrap()
}

/// Full-commit-path twin: per-thread private `TVar` increments through
/// `atomically`, so the clock op is the only cross-thread traffic.
fn commit_round(threads: u16, sharded: bool) -> f64 {
    use gstm_core::TxnId;
    use gstm_tl2::{ClockMode, StmBuilder, StmConfig, TVar};
    const TXNS_PER_THREAD: u64 = 50_000;
    let mode = if sharded { ClockMode::Sharded } else { ClockMode::Global };
    let stm = StmBuilder::new(StmConfig::default()).clock(mode).build();
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..threads).map(|_| TVar::new(0)).collect());
    let barrier = Arc::new(Barrier::new(threads as usize));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let stm = stm.clone();
            let vars = Arc::clone(&vars);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut ctx = stm.register();
                barrier.wait();
                let start = Instant::now();
                for _ in 0..TXNS_PER_THREAD {
                    ctx.atomically(TxnId(0), |tx| {
                        let x = tx.read(&vars[t as usize])?;
                        tx.write(&vars[t as usize], x.wrapping_add(1))
                    });
                }
                (start, Instant::now())
            })
        })
        .collect();
    let mut first_start: Option<Instant> = None;
    let mut last_end: Option<Instant> = None;
    for h in handles {
        let (start, end) = h.join().unwrap();
        first_start = Some(first_start.map_or(start, |s| s.min(start)));
        last_end = Some(last_end.map_or(end, |e| e.max(end)));
    }
    let span = last_end.unwrap().duration_since(first_start.unwrap());
    span.as_nanos() as f64 / (threads as u64 * TXNS_PER_THREAD) as f64
}

fn main() {
    let mut rounds = ROUNDS;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N");
            }
            other => {
                eprintln!("unknown argument {other:?} (usage: clock_scaling [--rounds N])");
                std::process::exit(2);
            }
        }
    }
    for &threads in &THREAD_COUNTS {
        for (mode, sharded) in [("global", false), ("sharded", true)] {
            let timed = best_of(rounds, threads, sharded, None);
            println!("advance_{mode}_{threads}t_ns {:.2}", timed.ns_per_op);
            // Contention pass: forced interleaving, never timed. Report
            // the *worst* round of N — "fastest round" would be biased
            // toward schedules that happened not to interleave.
            let permille = (0..rounds)
                .map(|_| {
                    let c = round(threads, sharded, Some(YIELD_EVERY));
                    c.contended * 1000 / c.ops
                })
                .max()
                .unwrap();
            println!("contended_{mode}_{threads}t_permille {permille}");
        }
        for (mode, sharded) in [("global", false), ("sharded", true)] {
            let best = (0..rounds)
                .map(|_| commit_round(threads, sharded))
                .fold(f64::INFINITY, f64::min);
            println!("commit_{mode}_{threads}t_ns {best:.2}");
        }
    }
}
