//! `gstm-mck` — exhaustive-interleaving model checker for the guidance
//! protocol (guided gate + circuit breaker + EpochCell hot-swap).
//!
//! Three modes:
//!
//! * **Explore** (default): enumerate every interleaving of the configured
//!   bounded model with DPOR, check all invariants, report the state count
//!   and the measured POR reduction factor. Exit 0 when clean, 2 on a
//!   violation (emitted to `--emit=PATH` when given).
//! * **Mutate** (`--mutate=SITE` or `--mutate=all`): flip one protocol
//!   decision and *demand* a violation — the checker proving it has teeth.
//!   Exit 0 when every requested site is caught with a counterexample that
//!   replays bit-identically, 2 when any site survives.
//! * **Replay** (`--replay=PATH`): parse a counterexample file, replay it,
//!   and verify the violation and trace fingerprint match the file bit for
//!   bit. Exit 0 on an identical reproduction, 2 on divergence.
//!
//! Only `std` is used; the model lives in `gstm_core::mck`.

use std::process::ExitCode;

use gstm_core::mck::{
    explore, replay_schedule, Counterexample, ExploreOptions, ExploreReport, MckConfig, Mutation,
};

const USAGE: &str = "\
gstm-mck — exhaustive-interleaving model checker for the guidance protocol

USAGE:
  gstm-mck [OPTIONS]                 explore the configured model
  gstm-mck --mutate=SITE [OPTIONS]   flip one decision, demand a counterexample
  gstm-mck --replay=PATH             replay a counterexample file bit-identically

MODEL OPTIONS (default: the CI configuration, 3 threads x 2 windows):
  --threads=N      logical worker threads (1..=16)       [default 3]
  --windows=N      transactions per thread (1..=8)       [default 2]
  --txns=N         distinct transaction ids              [default 1]
  --k=N            gate retry budget k_retries (1..=8)   [default 1]
  --abort-mask=M   bit t*windows+w => thread t aborts window w once  [default 0x1]
  --swaps=N        model hot-swaps the manager may run   [default 1]
  --tfactor=F      guidance threshold factor             [default 4]
  --no-breaker     run without the circuit breaker
  --no-adapt       run without the hot-swap manager (swaps=0)

SEARCH OPTIONS:
  --no-por         disable the reductions (still state-merging)
  --no-naive       skip the exact naive interleaving count
  --max-states=N   truncate the search after N states    [default 50000000]

OUTPUT:
  --emit=PATH      write the counterexample file here (explore/mutate modes)
  --mutate=all     check every mutation site in sequence
  -q               only the verdict lines
  -h, --help       this text

EXIT CODES: 0 verified as expected; 1 usage or I/O error; 2 verification failed.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("gstm-mck: {msg}");
    ExitCode::from(1)
}

struct Cli {
    cfg: MckConfig,
    opts: ExploreOptions,
    mutate: Option<Vec<Mutation>>,
    emit: Option<String>,
    replay: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Option<Cli>, String> {
    let mut cfg = MckConfig::ci();
    let mut opts = ExploreOptions::default();
    let mut mutate = None;
    let mut emit = None;
    let mut replay = None;
    let mut quiet = false;
    for arg in std::env::args().skip(1) {
        let (key, val) = match arg.split_once('=') {
            Some((k, v)) => (k.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        let want = |v: &Option<String>| {
            v.clone().ok_or_else(|| format!("{key} needs =VALUE"))
        };
        let num = |v: &Option<String>| -> Result<u64, String> {
            let s = want(v)?;
            let r = if let Some(h) = s.strip_prefix("0x") {
                u64::from_str_radix(h, 16)
            } else {
                s.parse()
            };
            r.map_err(|_| format!("bad number for {key}: {s:?}"))
        };
        match key.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "-q" => quiet = true,
            "--threads" => cfg.threads = num(&val)? as u16,
            "--windows" => cfg.windows = num(&val)? as u16,
            "--txns" => cfg.txns = num(&val)? as u16,
            "--k" => cfg.k_retries = num(&val)? as u32,
            "--abort-mask" => cfg.abort_mask = num(&val)?,
            "--swaps" => cfg.swaps = num(&val)? as u32,
            "--tfactor" => {
                let s = want(&val)?;
                cfg.tfactor = s.parse().map_err(|_| format!("bad tfactor {s:?}"))?;
            }
            "--no-breaker" => cfg.breaker = None,
            "--no-adapt" => cfg.swaps = 0,
            "--no-por" => opts.por = false,
            "--no-naive" => opts.count_naive = false,
            "--max-states" => opts.max_states = num(&val)?,
            "--emit" => emit = Some(want(&val)?),
            "--replay" => replay = Some(want(&val)?),
            "--mutate" => {
                let s = want(&val)?;
                mutate = Some(if s == "all" {
                    Mutation::ALL.to_vec()
                } else {
                    vec![Mutation::parse(&s).ok_or_else(|| {
                        let names: Vec<_> =
                            Mutation::ALL.iter().map(|m| m.name()).collect();
                        format!("unknown mutation {s:?} (sites: {}, all)", names.join(", "))
                    })?]
                });
            }
            other => return Err(format!("unknown option {other:?} (see --help)")),
        }
    }
    cfg.validate()?;
    Ok(Some(Cli { cfg, opts, mutate, emit, replay, quiet }))
}

fn print_report(cfg: &MckConfig, r: &ExploreReport, quiet: bool) {
    if !quiet {
        println!(
            "model: threads={} windows={} txns={} k={} abort-mask={:#x} swaps={} breaker={} mutation={}",
            cfg.threads,
            cfg.windows,
            cfg.txns,
            cfg.k_retries,
            cfg.abort_mask,
            cfg.swaps,
            if cfg.breaker.is_some() { "on" } else { "off" },
            cfg.mutation.map(|m| m.name()).unwrap_or("none"),
        );
        println!(
            "explored: states={} transitions={} complete-paths={} sleep-skips={} persistent-hits={}{}",
            r.states,
            r.transitions,
            r.complete_paths,
            r.sleep_skips,
            r.persistent_hits,
            if r.truncated { " TRUNCATED" } else { "" },
        );
        if let (Some(n), Some(s)) = (r.naive_interleavings, r.naive_states) {
            println!("naive: interleavings={n} states={s}");
        }
    }
    if let Some(f) = r.reduction_factor {
        println!("reduction-factor: {f:.1}x (naive interleavings / explored transitions)");
    }
}

fn emit_counterexample(
    cfg: &MckConfig,
    schedule: Vec<u16>,
    violation: gstm_core::mck::Violation,
    emit: &Option<String>,
    quiet: bool,
) -> Result<(), String> {
    let ce = Counterexample::capture(cfg, schedule, violation)?;
    ce.verify().map_err(|e| format!("counterexample failed self-verify: {e}"))?;
    println!(
        "counterexample: {} steps, fingerprint {:#018x}, replays bit-identically",
        ce.schedule.len(),
        ce.fingerprint
    );
    if let Some(path) = emit {
        std::fs::write(path, ce.to_text()).map_err(|e| format!("write {path}: {e}"))?;
        if !quiet {
            println!("emitted: {path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(Some(c)) => c,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => return fail(&e),
    };

    // Replay mode: the file is the whole specification.
    if let Some(path) = &cli.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("read {path}: {e}")),
        };
        let ce = match Counterexample::parse(&text) {
            Ok(ce) => ce,
            Err(e) => return fail(&format!("parse {path}: {e}")),
        };
        return match ce.verify() {
            Ok(out) => {
                println!(
                    "replay: {} steps -> {} agent={} step={} fingerprint {:#018x} (bit-identical)",
                    out.steps,
                    ce.violation.kind.name(),
                    ce.violation.agent,
                    ce.violation.step,
                    out.fingerprint
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("replay FAILED: {e}");
                ExitCode::from(2)
            }
        };
    }

    // Mutation mode: every requested site must yield a counterexample.
    if let Some(sites) = &cli.mutate {
        let mut all_caught = true;
        for (i, &m) in sites.iter().enumerate() {
            let cfg = MckConfig { mutation: Some(m), ..cli.cfg.clone() };
            let r = explore(&cfg, cli.opts);
            print_report(&cfg, &r, cli.quiet);
            match r.violation {
                Some((schedule, v)) => {
                    println!(
                        "mutation {}: CAUGHT {} agent={} step={} ({})",
                        m.name(),
                        v.kind.name(),
                        v.agent,
                        v.step,
                        v.detail
                    );
                    // With several sites, suffix the emit path per site.
                    let emit = cli.emit.as_ref().map(|p| {
                        if sites.len() == 1 { p.clone() } else { format!("{p}.{}", m.name()) }
                    });
                    if let Err(e) = emit_counterexample(&cfg, schedule, v, &emit, cli.quiet) {
                        eprintln!("gstm-mck: {e}");
                        all_caught = false;
                    }
                }
                None => {
                    eprintln!(
                        "mutation {}: NOT CAUGHT{} — the checker has a blind spot",
                        m.name(),
                        if r.truncated { " (search truncated)" } else { "" }
                    );
                    all_caught = false;
                }
            }
            if !cli.quiet && i + 1 < sites.len() {
                println!();
            }
        }
        return if all_caught { ExitCode::SUCCESS } else { ExitCode::from(2) };
    }

    // Explore mode: the trunk protocol must be clean.
    let r = explore(&cli.cfg, cli.opts);
    print_report(&cli.cfg, &r, cli.quiet);
    match r.violation {
        None if r.truncated => {
            eprintln!("verdict: INCONCLUSIVE (truncated at {} states)", r.states);
            ExitCode::from(2)
        }
        None => {
            println!("verdict: clean — all invariants hold in every interleaving");
            ExitCode::SUCCESS
        }
        Some((schedule, v)) => {
            println!(
                "verdict: VIOLATION {} agent={} step={} ({})",
                v.kind.name(),
                v.agent,
                v.step,
                v.detail
            );
            if let Err(e) = emit_counterexample(&cli.cfg, schedule, v, &cli.emit, cli.quiet) {
                eprintln!("gstm-mck: {e}");
            }
            // A sanity cross-check: the emitted schedule must drive the
            // machine to the violation via the public replay path too.
            ExitCode::from(2)
        }
    }
}

// Keep the helper honest: replay_schedule is re-exported for tests and
// external tooling; reference it so a rename breaks this binary loudly.
#[allow(dead_code)]
fn _assert_api(cfg: &MckConfig) {
    let _ = replay_schedule(cfg, &[]);
}
