//! Per-session state: decoder, bounded write queue, liveness.

use crate::proto::{Frame, FrameDecoder};
use std::collections::VecDeque;

/// Cap on a session's queued outbound bytes. Beyond this the session is
/// not draining (slow-loris or a dead link) and low-priority frames are
/// dropped instead of buffered without bound — the backpressure policy.
pub const WRITE_QUEUE_CAP: usize = 32 * 1024;

/// Priority at or above which a frame is *critical*: queued even past
/// the cap (`Welcome`/`Overloaded`/`Goodbye` use 255) so control frames
/// survive backpressure while bulk tick reports are shed.
pub const CRITICAL_PRIORITY: u8 = 250;

/// Ticks a session may sit without delivering a frame before the idle
/// reaper closes it.
pub const IDLE_TICKS_MAX: u64 = 1_000;

/// One connected client.
pub struct Session {
    /// Connection id (the net layer's handle).
    pub conn: u64,
    /// Assigned player, once the `Hello` handshake completed.
    pub player: Option<u32>,
    /// Incremental frame decoder for this session's byte stream.
    pub decoder: FrameDecoder,
    /// Encoded outbound bytes not yet handed to the socket layer.
    pub outq: VecDeque<u8>,
    /// Outbound frames dropped by backpressure.
    pub dropped_frames: u64,
    /// Ticks since the last complete inbound frame.
    pub idle_ticks: u64,
    /// Remaining ticks this session's drain is stalled (slow-loris
    /// fault: the peer reads one byte per eon, so our queue backs up).
    pub loris_ticks: u32,
    /// Inbound bytes deferred by a partial-read fault, prepended to the
    /// next delivery.
    pub deferred_in: Vec<u8>,
    /// A `Goodbye` is queued; close once the queue drains.
    pub closing: bool,
}

impl Session {
    /// A fresh session for connection `conn`.
    pub fn new(conn: u64) -> Session {
        Session {
            conn,
            player: None,
            decoder: FrameDecoder::new(),
            outq: VecDeque::new(),
            dropped_frames: 0,
            idle_ticks: 0,
            loris_ticks: 0,
            deferred_in: Vec::new(),
            closing: false,
        }
    }

    /// Queue a frame for delivery. Returns `false` (and counts a drop)
    /// when backpressure sheds it: queue at cap and the frame is below
    /// [`CRITICAL_PRIORITY`].
    pub fn queue_frame(&mut self, frame: &Frame) -> bool {
        if self.outq.len() >= WRITE_QUEUE_CAP && frame.priority < CRITICAL_PRIORITY {
            self.dropped_frames += 1;
            return false;
        }
        self.outq.extend(frame.encode());
        true
    }

    /// Take up to `max` queued bytes for the wire (empty while a
    /// slow-loris stall is in force).
    pub fn drain_out(&mut self, max: usize) -> Vec<u8> {
        if self.loris_ticks > 0 {
            return Vec::new();
        }
        let n = self.outq.len().min(max);
        self.outq.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::FrameType;

    #[test]
    fn backpressure_sheds_bulk_but_keeps_control_frames() {
        let mut s = Session::new(1);
        // Fill the queue past the cap with bulk frames.
        let bulk = Frame::new(FrameType::TickReport, 10, vec![0; 500]);
        while s.outq.len() < WRITE_QUEUE_CAP {
            assert!(s.queue_frame(&bulk));
        }
        assert!(!s.queue_frame(&bulk), "bulk frame shed at cap");
        assert_eq!(s.dropped_frames, 1);
        assert!(s.queue_frame(&Frame::goodbye(0)), "critical frame still queued");
    }

    #[test]
    fn loris_stall_blocks_drain() {
        let mut s = Session::new(1);
        s.queue_frame(&Frame::welcome(3));
        s.loris_ticks = 2;
        assert!(s.drain_out(4096).is_empty());
        s.loris_ticks = 0;
        assert_eq!(s.drain_out(4096), Frame::welcome(3).encode());
        assert!(s.outq.is_empty());
    }
}
