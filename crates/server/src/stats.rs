//! Server counters and their ops-plane export.
//!
//! [`ServerStats`] is the one shared sink: the engine increments it,
//! the ops plane drains one [`ServerWindow`] per roll (via the
//! [`ServerSource`] impl) to annotate the closed window for SLO
//! judging, and `/metrics` scrapes gain the cumulative `gstm_server_*`
//! families.

use gstm_core::ops::{ServerSource, ServerWindow};
use gstm_core::sync::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::admission::Rung;

/// Cumulative server counters plus window bookkeeping.
#[derive(Default)]
pub struct ServerStats {
    /// Complete frames decoded from clients.
    pub frames_in: AtomicU64,
    /// Frames queued toward clients.
    pub frames_out: AtomicU64,
    /// Outbound frames shed by per-session backpressure.
    pub frames_dropped: AtomicU64,
    /// Actions executed against the world.
    pub actions_executed: AtomicU64,
    /// Actions shed by admission control.
    pub actions_shed: AtomicU64,
    /// Sessions refused with an `Overloaded` frame.
    pub sessions_rejected: AtomicU64,
    /// Sessions accepted over the server's lifetime.
    pub sessions_accepted: AtomicU64,
    /// Frames the decoder could not parse (desyncs observed).
    pub malformed_frames: AtomicU64,
    /// Sessions closed, any reason.
    pub disconnects: AtomicU64,
    /// Sessions closed by the idle reaper specifically.
    pub idle_reaped: AtomicU64,
    /// Live sessions (gauge).
    pub sessions: AtomicU64,
    /// Current ladder rung (gauge; [`Rung::code`]).
    pub ladder: AtomicU32,
    /// Ladder entries per rung (index = code).
    pub ladder_entries: [AtomicU64; 4],
    /// Ticks processed.
    pub ticks: AtomicU64,
    /// Σ engine frame time, ns.
    pub frame_ns_sum: AtomicU64,
    inner: Mutex<StatsInner>,
}

#[derive(Default)]
struct StatsInner {
    /// Frame times since the last window drain, ns.
    window_frame_ns: Vec<u64>,
    /// Cumulative counter values at the last drain (delta base).
    last: ServerWindow,
}

impl ServerStats {
    /// Fresh zeroed stats.
    pub fn new() -> ServerStats {
        ServerStats::default()
    }

    /// Record one engine tick's duration.
    pub fn record_tick(&self, frame_ns: u64) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.frame_ns_sum.fetch_add(frame_ns, Ordering::Relaxed);
        self.inner.lock().window_frame_ns.push(frame_ns);
    }

    /// Record a ladder move (updates the gauge and entry counter).
    pub fn record_ladder(&self, to: Rung) {
        self.ladder.store(to.code() as u32, Ordering::Relaxed);
        self.ladder_entries[to.code() as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Sorted-quantile upper bound over `sorted` (empty → 0).
    fn quantile(sorted: &[u64], q: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }
}

impl ServerSource for ServerStats {
    fn window(&self) -> ServerWindow {
        let mut inner = self.inner.lock();
        let mut frames = std::mem::take(&mut inner.window_frame_ns);
        frames.sort_unstable();
        let cur = ServerWindow {
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            actions_executed: self.actions_executed.load(Ordering::Relaxed),
            actions_shed: self.actions_shed.load(Ordering::Relaxed),
            sessions_rejected: self.sessions_rejected.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            frame_p50_ns: Self::quantile(&frames, 0.50),
            frame_p99_ns: Self::quantile(&frames, 0.99),
            ladder: self.ladder.load(Ordering::Relaxed) as u8,
            sessions: self.sessions.load(Ordering::Relaxed),
        };
        let out = ServerWindow {
            frames_in: cur.frames_in - inner.last.frames_in,
            frames_out: cur.frames_out - inner.last.frames_out,
            actions_executed: cur.actions_executed - inner.last.actions_executed,
            actions_shed: cur.actions_shed - inner.last.actions_shed,
            sessions_rejected: cur.sessions_rejected - inner.last.sessions_rejected,
            malformed_frames: cur.malformed_frames - inner.last.malformed_frames,
            disconnects: cur.disconnects - inner.last.disconnects,
            ..cur.clone()
        };
        inner.last = cur;
        out
    }

    fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE gstm_server_frames_total counter");
        let _ = writeln!(
            out,
            "gstm_server_frames_total{{dir=\"in\"}} {}",
            self.frames_in.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "gstm_server_frames_total{{dir=\"out\"}} {}",
            self.frames_out.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE gstm_server_frames_dropped_total counter");
        let _ = writeln!(
            out,
            "gstm_server_frames_dropped_total {}",
            self.frames_dropped.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE gstm_server_actions_total counter");
        let _ = writeln!(
            out,
            "gstm_server_actions_total{{outcome=\"executed\"}} {}",
            self.actions_executed.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "gstm_server_actions_total{{outcome=\"shed\"}} {}",
            self.actions_shed.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE gstm_server_sessions_total counter");
        let _ = writeln!(
            out,
            "gstm_server_sessions_total{{outcome=\"accepted\"}} {}",
            self.sessions_accepted.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "gstm_server_sessions_total{{outcome=\"rejected\"}} {}",
            self.sessions_rejected.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE gstm_server_malformed_frames_total counter");
        let _ = writeln!(
            out,
            "gstm_server_malformed_frames_total {}",
            self.malformed_frames.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE gstm_server_disconnects_total counter");
        let _ = writeln!(
            out,
            "gstm_server_disconnects_total {}",
            self.disconnects.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE gstm_server_idle_reaped_total counter");
        let _ = writeln!(
            out,
            "gstm_server_idle_reaped_total {}",
            self.idle_reaped.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE gstm_server_sessions gauge");
        let _ = writeln!(out, "gstm_server_sessions {}", self.sessions.load(Ordering::Relaxed));
        let _ = writeln!(out, "# TYPE gstm_server_ladder gauge");
        let _ = writeln!(out, "gstm_server_ladder {}", self.ladder.load(Ordering::Relaxed));
        let _ = writeln!(out, "# TYPE gstm_server_ladder_entries_total counter");
        for rung in [Rung::FullTick, Rung::ReducedAoi, Rung::GuidedBypass, Rung::LoadShed] {
            let _ = writeln!(
                out,
                "gstm_server_ladder_entries_total{{rung=\"{}\"}} {}",
                rung.label(),
                self.ladder_entries[rung.code() as usize].load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(out, "# TYPE gstm_server_ticks_total counter");
        let _ = writeln!(out, "gstm_server_ticks_total {}", self.ticks.load(Ordering::Relaxed));
        let _ = writeln!(out, "# TYPE gstm_server_frame_ns_sum counter");
        let _ = writeln!(
            out,
            "gstm_server_frame_ns_sum {}",
            self.frame_ns_sum.load(Ordering::Relaxed)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_deltas_and_gauges_are_points() {
        let s = ServerStats::new();
        s.frames_in.store(10, Ordering::Relaxed);
        s.sessions.store(3, Ordering::Relaxed);
        s.record_tick(100);
        s.record_tick(900);
        let w1 = s.window();
        assert_eq!(w1.frames_in, 10);
        assert_eq!(w1.sessions, 3);
        assert_eq!(w1.frame_p50_ns, 100);
        assert_eq!(w1.frame_p99_ns, 900);
        s.frames_in.store(15, Ordering::Relaxed);
        let w2 = s.window();
        assert_eq!(w2.frames_in, 5, "second window is a delta");
        assert_eq!(w2.frame_p99_ns, 0, "frame samples drained");
    }

    #[test]
    fn prometheus_exposition_has_the_core_families() {
        let s = ServerStats::new();
        s.record_ladder(Rung::ReducedAoi);
        let text = s.render_prometheus();
        for family in [
            "gstm_server_frames_total",
            "gstm_server_actions_total",
            "gstm_server_sessions_total",
            "gstm_server_malformed_frames_total",
            "gstm_server_ladder 1",
            "gstm_server_ladder_entries_total{rung=\"reduced-aoi\"} 1",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
}
