//! Admission control and the graceful-degradation ladder.
//!
//! The engine measures each tick's cost against a budget (abstract cost
//! units: in real mode elapsed nanoseconds are scaled into units, in
//! deterministic replay mode a synthetic cost model produces them as a
//! pure function of the work). Sustained over-budget ticks climb the
//! ladder one rung at a time; sustained headroom climbs back down:
//!
//! | rung | label          | effect                                        |
//! |------|----------------|-----------------------------------------------|
//! | 0    | `full-tick`    | everything                                    |
//! | 1    | `reduced-aoi`  | tick reports shrink to the player's own cell  |
//! | 2    | `guided-bypass`| the guidance breaker is forced open           |
//! | 3    | `load-shed`    | action cap quartered, new sessions rejected   |
//!
//! Hysteresis (escalate/de-escalate streaks) keeps one noisy tick from
//! flapping the rung, mirroring the SLO watchdog's design. Within a
//! tick, admission itself is priority-ordered: the engine sorts offered
//! actions and sheds the lowest priorities first.

/// Ladder rungs, mild to drastic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum Rung {
    /// Normal service.
    #[default]
    FullTick = 0,
    /// Tick reports cover only the player's own cell.
    ReducedAoi = 1,
    /// Guidance cost shed: the breaker is forced open (fail-open
    /// unguided STM); recovery rides the breaker's own probe path.
    GuidedBypass = 2,
    /// Action cap quartered and new sessions rejected.
    LoadShed = 3,
}

impl Rung {
    /// Stable numeric code (metrics).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decode a code (clamped into range).
    pub fn from_code(code: u8) -> Rung {
        match code {
            0 => Rung::FullTick,
            1 => Rung::ReducedAoi,
            2 => Rung::GuidedBypass,
            _ => Rung::LoadShed,
        }
    }

    /// Stable label (metrics/logs).
    pub fn label(self) -> &'static str {
        match self {
            Rung::FullTick => "full-tick",
            Rung::ReducedAoi => "reduced-aoi",
            Rung::GuidedBypass => "guided-bypass",
            Rung::LoadShed => "load-shed",
        }
    }

    fn up(self) -> Rung {
        Rung::from_code(self.code().saturating_add(1).min(3))
    }

    fn down(self) -> Rung {
        Rung::from_code(self.code().saturating_sub(1))
    }
}

/// Admission/ladder tunables.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Tick budget in cost units.
    pub tick_budget: u64,
    /// Estimated cost units per admitted action.
    pub action_cost: u64,
    /// Fixed per-tick overhead in cost units (deterministic cost model).
    pub base_cost: u64,
    /// Maximum live sessions; beyond this new sessions get `Overloaded`
    /// regardless of rung.
    pub max_sessions: usize,
    /// Consecutive over-budget ticks per rung climbed.
    pub escalate_after: u32,
    /// Consecutive low-water ticks per rung descended.
    pub deescalate_after: u32,
    /// De-escalation low-water mark, percent of budget.
    pub low_water_pct: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            tick_budget: 1_000,
            action_cost: 10,
            base_cost: 50,
            max_sessions: 64,
            escalate_after: 2,
            deescalate_after: 4,
            low_water_pct: 60,
        }
    }
}

/// One ladder transition: `(tick, from, to)`.
pub type LadderTransition = (u64, Rung, Rung);

/// The admission controller: per-tick action caps plus the ladder state
/// machine.
pub struct Admission {
    cfg: AdmissionConfig,
    rung: Rung,
    over_streak: u32,
    under_streak: u32,
    transitions: Vec<LadderTransition>,
}

impl Admission {
    /// A controller at `full-tick`.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg,
            rung: Rung::FullTick,
            over_streak: 0,
            under_streak: 0,
            transitions: Vec::new(),
        }
    }

    /// The tunables in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Current rung.
    pub fn rung(&self) -> Rung {
        self.rung
    }

    /// Ladder transitions so far, oldest first.
    pub fn transitions(&self) -> &[LadderTransition] {
        &self.transitions
    }

    /// How many of `offered` actions to admit this tick; the rest are
    /// shed (lowest priority first — the caller orders them).
    pub fn admit(&self, offered: usize) -> usize {
        let budget_actions =
            (self.cfg.tick_budget.saturating_sub(self.cfg.base_cost) / self.cfg.action_cost.max(1))
                .max(1) as usize;
        let cap = if self.rung == Rung::LoadShed {
            (budget_actions / 4).max(1)
        } else {
            budget_actions
        };
        offered.min(cap)
    }

    /// Whether a new session may be admitted with `live` already
    /// connected.
    pub fn accepts_sessions(&self, live: usize) -> bool {
        live < self.cfg.max_sessions && self.rung < Rung::LoadShed
    }

    /// Synthetic cost of a tick that admitted `admitted` actions and
    /// shed `shed` — the deterministic replay's clock. Shed actions
    /// still cost a quarter unit each: shedding is cheaper than
    /// executing, not free, which is what lets sustained overload climb
    /// past the shedding rungs.
    pub fn synthetic_cost(&self, admitted: usize, shed: usize) -> u64 {
        self.cfg.base_cost
            + admitted as u64 * self.cfg.action_cost
            + shed as u64 * self.cfg.action_cost.div_ceil(4)
    }

    /// Feed one tick's measured cost; hysteresis may move the rung one
    /// step. Returns the transition, if any.
    pub fn observe_tick(&mut self, tick: u64, cost: u64) -> Option<(Rung, Rung)> {
        let low_water = self.cfg.tick_budget * self.cfg.low_water_pct as u64 / 100;
        if cost > self.cfg.tick_budget {
            self.under_streak = 0;
            self.over_streak += 1;
            if self.over_streak >= self.cfg.escalate_after && self.rung < Rung::LoadShed {
                let from = self.rung;
                self.rung = self.rung.up();
                self.over_streak = 0;
                self.transitions.push((tick, from, self.rung));
                return Some((from, self.rung));
            }
        } else if cost < low_water {
            self.over_streak = 0;
            self.under_streak += 1;
            if self.under_streak >= self.cfg.deescalate_after && self.rung > Rung::FullTick {
                let from = self.rung;
                self.rung = self.rung.down();
                self.under_streak = 0;
                self.transitions.push((tick, from, self.rung));
                return Some((from, self.rung));
            }
        } else {
            self.over_streak = 0;
            self.under_streak = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            tick_budget: 100,
            action_cost: 10,
            base_cost: 10,
            max_sessions: 4,
            escalate_after: 2,
            deescalate_after: 3,
            low_water_pct: 60,
        }
    }

    #[test]
    fn ladder_climbs_one_rung_at_a_time_with_hysteresis() {
        let mut a = Admission::new(cfg());
        assert_eq!(a.observe_tick(0, 200), None, "one hot tick is noise");
        assert_eq!(a.observe_tick(1, 200), Some((Rung::FullTick, Rung::ReducedAoi)));
        assert_eq!(a.observe_tick(2, 200), None);
        assert_eq!(a.observe_tick(3, 200), Some((Rung::ReducedAoi, Rung::GuidedBypass)));
        assert_eq!(a.observe_tick(4, 200), None);
        assert_eq!(a.observe_tick(5, 200), Some((Rung::GuidedBypass, Rung::LoadShed)));
        // Saturates at load-shed.
        assert_eq!(a.observe_tick(6, 200), None);
        assert_eq!(a.observe_tick(7, 200), None);
        assert_eq!(a.rung(), Rung::LoadShed);
    }

    #[test]
    fn ladder_descends_on_sustained_headroom() {
        let mut a = Admission::new(cfg());
        for t in 0..4 {
            a.observe_tick(t, 200);
        }
        assert_eq!(a.rung(), Rung::GuidedBypass);
        assert_eq!(a.observe_tick(4, 20), None);
        assert_eq!(a.observe_tick(5, 20), None);
        assert_eq!(a.observe_tick(6, 20), Some((Rung::GuidedBypass, Rung::ReducedAoi)));
        // Mid-band cost resets both streaks.
        assert_eq!(a.observe_tick(7, 80), None);
        assert_eq!(a.observe_tick(8, 20), None);
        assert_eq!(a.observe_tick(9, 20), None);
        assert_eq!(a.observe_tick(10, 20), Some((Rung::ReducedAoi, Rung::FullTick)));
        assert_eq!(a.transitions().len(), 4);
    }

    #[test]
    fn load_shed_quarters_the_cap_and_rejects_sessions() {
        let mut a = Admission::new(cfg());
        assert_eq!(a.admit(100), 9, "budget (100-10)/10 actions");
        assert!(a.accepts_sessions(3));
        assert!(!a.accepts_sessions(4), "session cap");
        for t in 0..6 {
            a.observe_tick(t, 500);
        }
        assert_eq!(a.rung(), Rung::LoadShed);
        assert_eq!(a.admit(100), 2, "quartered cap");
        assert!(!a.accepts_sessions(0), "load-shed rejects all new sessions");
    }

    #[test]
    fn synthetic_cost_charges_shedding_a_quarter_rate() {
        let a = Admission::new(cfg());
        assert_eq!(a.synthetic_cost(5, 0), 10 + 50);
        assert_eq!(a.synthetic_cost(5, 8), 10 + 50 + 8 * 3);
    }
}
