//! The SynQuake network server.
//!
//! Promotes the in-process SynQuake workload (`gstm-synquake`) to a real
//! TCP game server so the guidance/breaker/ops stack faces traffic it
//! does not script: sessions speak a length-prefixed frame protocol
//! ([`proto`]), a per-tick cost budget drives admission control and a
//! four-rung graceful-degradation ladder ([`admission`]), and bounded
//! per-session write queues give backpressure instead of unbounded
//! buffering ([`session`]).
//!
//! The heart is [`engine::Engine`]: a *pure, single-threaded* state
//! machine mapping input events (connect / bytes / disconnect / tick)
//! to output effects (send / close). All socket-layer chaos — accept
//! stalls, partial reads, mid-frame disconnects, malformed frames,
//! slow-loris clients — is probed from `gstm_core::faultinject` inside
//! the engine in input order, so a given `--chaos=SEED` and input
//! script replays a bit-identical fault log and ladder trajectory. The
//! real socket loop ([`net`]) feeds the engine from non-blocking
//! sockets; the deterministic tests feed it directly.
//!
//! Operational state exports through the PR 8 ops plane: [`stats`]
//! implements `gstm_core::ops::ServerSource`, annotating every closed
//! window with frame-time quantiles and the ladder rung (new
//! `frame-p99-*`/`ladder` SLO rules judge them) and contributing the
//! `gstm_server_*` Prometheus families to `/metrics`.

pub mod admission;
pub mod engine;
pub mod net;
pub mod proto;
pub mod session;
pub mod signal;
pub mod stats;

pub use admission::{Admission, AdmissionConfig, Rung};
pub use engine::{Effect, Engine, EngineConfig, Event, TickRecord};
pub use proto::{DecodeStep, Frame, FrameDecoder, FrameType};
pub use session::Session;
pub use stats::ServerStats;
