//! The socket loop: std-only non-blocking TCP feeding the engine.
//!
//! One thread owns the listener, every connection, and the engine — an
//! epoll-style readiness loop approximated with non-blocking sockets
//! and a short poll sleep (the container build is std-only; no OS
//! readiness API bindings). Single ownership is a feature, not a
//! shortcut: events reach the engine in one deterministic order, which
//! is what makes the chaos sites replayable.
//!
//! The same socket fault sites the engine probes on scripted input are
//! probed here against real traffic: accept stalls skip the accept
//! round, partial-I/O clamps `read`/`write` lengths, slow-loris skips a
//! session's read turn, and disconnect faults drop the socket outright.
//! (Malformed-frame corruption happens inside the engine so the fault
//! log ordering is identical in both modes.)

use crate::engine::{Effect, Engine, Event};
use gstm_core::faultinject::{FaultPlan, FaultSite};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Socket-loop tunables.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Engine tick cadence.
    pub tick_ms: u64,
    /// Poll sleep between readiness sweeps.
    pub poll_ms: u64,
    /// Max bytes read per session per sweep.
    pub read_chunk: usize,
    /// Bytes of OS-refused writes buffered per connection before the
    /// link is declared dead (physical backpressure bound; the engine's
    /// per-session queue is the logical one).
    pub write_buf_cap: usize,
    /// Stop after this many ticks (0 = run until `stop`).
    pub max_ticks: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            tick_ms: 20,
            poll_ms: 2,
            read_chunk: 4096,
            write_buf_cap: 64 * 1024,
            max_ticks: 0,
        }
    }
}

struct Conn {
    stream: TcpStream,
    /// Bytes the OS would not take yet.
    backlog: Vec<u8>,
    /// Read turns to skip (slow-loris fault).
    skip_reads: u32,
    /// Engine asked for close once the backlog drains.
    closing: bool,
}

/// Serve until `stop` flips, `max_ticks` elapse, or the listener dies.
/// Returns the number of ticks run.
pub fn serve(
    engine: &mut Engine,
    listener: TcpListener,
    stop: &AtomicBool,
    cfg: &NetConfig,
    faults: Option<Arc<FaultPlan>>,
) -> std::io::Result<u64> {
    listener.set_nonblocking(true)?;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 1;
    let mut accept_skip: u32 = 0;
    let mut last_tick = Instant::now();
    let tick_every = Duration::from_millis(cfg.tick_ms.max(1));
    let mut ticks = 0u64;
    let probe = |site: FaultSite| faults.as_ref().and_then(|f| f.should_fire(site, 0));

    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // ---- accept ----
        if accept_skip > 0 {
            accept_skip -= 1;
        } else {
            loop {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        if let Some(f) = probe(FaultSite::AcceptStall) {
                            accept_skip = accept_skip.max(f.spins.max(1));
                        }
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        let id = next_conn;
                        next_conn += 1;
                        conns.insert(
                            id,
                            Conn { stream, backlog: Vec::new(), skip_reads: 0, closing: false },
                        );
                        apply(engine.handle(Event::Connect { conn: id }), &mut conns);
                        if accept_skip > 0 {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }

        // ---- read sweep (sorted ids: deterministic event order) ----
        let mut ids: Vec<u64> = conns.keys().copied().collect();
        ids.sort_unstable();
        let mut buf = vec![0u8; cfg.read_chunk];
        for id in ids {
            let Some(c) = conns.get_mut(&id) else { continue };
            if c.skip_reads > 0 {
                c.skip_reads -= 1;
                continue;
            }
            if let Some(f) = probe(FaultSite::SlowLoris) {
                c.skip_reads = f.spins.max(1);
                continue;
            }
            let mut cap = buf.len();
            if let Some(f) = probe(FaultSite::PartialIo) {
                cap = 1 + (f.entropy % cap as u64) as usize;
            }
            match c.stream.read(&mut buf[..cap]) {
                Ok(0) => {
                    conns.remove(&id);
                    apply(engine.handle(Event::Disconnect { conn: id }), &mut conns);
                }
                Ok(n) => {
                    if probe(FaultSite::Disconnect).is_some() {
                        conns.remove(&id);
                        apply(engine.handle(Event::Disconnect { conn: id }), &mut conns);
                        continue;
                    }
                    let bytes = buf[..n].to_vec();
                    apply(engine.handle(Event::Data { conn: id, bytes }), &mut conns);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conns.remove(&id);
                    apply(engine.handle(Event::Disconnect { conn: id }), &mut conns);
                }
            }
        }

        // ---- tick ----
        if last_tick.elapsed() >= tick_every {
            last_tick = Instant::now();
            ticks += 1;
            apply(engine.handle(Event::Tick), &mut conns);
            if cfg.max_ticks != 0 && ticks >= cfg.max_ticks {
                break;
            }
        }

        // ---- flush backlogs ----
        let mut dead: Vec<u64> = Vec::new();
        for (&id, c) in conns.iter_mut() {
            if c.backlog.is_empty() {
                if c.closing {
                    dead.push(id);
                }
                continue;
            }
            let mut cap = c.backlog.len();
            if let Some(f) = probe(FaultSite::PartialIo) {
                cap = 1 + (f.entropy % cap as u64) as usize;
            }
            match c.stream.write(&c.backlog[..cap]) {
                Ok(n) => {
                    c.backlog.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => dead.push(id),
            }
            if c.backlog.len() > cfg.write_buf_cap {
                // The peer stopped draining and the engine-level queue
                // already shed what it could: cut the link.
                dead.push(id);
            }
        }
        for id in dead {
            if conns.remove(&id).is_some() {
                apply(engine.handle(Event::Disconnect { conn: id }), &mut conns);
            }
        }

        std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
    }

    // Graceful drain: goodbye frames out, best-effort flush, close.
    apply(engine.shutdown(), &mut conns);
    let deadline = Instant::now() + Duration::from_millis(500);
    while conns.values().any(|c| !c.backlog.is_empty()) && Instant::now() < deadline {
        for c in conns.values_mut() {
            if c.backlog.is_empty() {
                continue;
            }
            match c.stream.write(&c.backlog) {
                Ok(n) => {
                    c.backlog.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(_) => c.backlog.clear(),
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Ok(ticks)
}

/// Apply engine effects to the physical connections. `Send` appends to
/// the connection's backlog (flushed by the loop); `Close` marks the
/// connection for teardown once its backlog drains.
fn apply(effects: Vec<Effect>, conns: &mut HashMap<u64, Conn>) {
    for fx in effects {
        match fx {
            Effect::Send { conn, bytes } => {
                if let Some(c) = conns.get_mut(&conn) {
                    c.backlog.extend_from_slice(&bytes);
                }
            }
            Effect::Close { conn } => {
                if let Some(c) = conns.get_mut(&conn) {
                    c.closing = true;
                }
            }
        }
    }
    // Closing connections with nothing left to say can go now.
    conns.retain(|_, c| !(c.closing && c.backlog.is_empty()));
}
