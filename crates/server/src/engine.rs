//! The deterministic server engine.
//!
//! A pure, single-threaded state machine: the socket layer (or a test
//! script) feeds [`Event`]s — connects, byte deliveries, disconnects,
//! ticks — and the engine answers with [`Effect`]s — bytes to send,
//! sessions to close. All world mutation goes through the guided STM
//! (`LibTm` transactions on the SynQuake [`World`]), so "zero lost
//! committed updates" is checkable: executed actions equal STM commits
//! and the world audit stays clean.
//!
//! Determinism is the design constraint everything else bends around:
//!
//! - sessions live in a `BTreeMap` (stable iteration order);
//! - every socket fault site is probed *here*, in event order, from the
//!   one engine thread — so a fault schedule is a pure function of the
//!   `--chaos` seed and the input script;
//! - in deterministic mode the tick clock is synthetic
//!   ([`Admission::synthetic_cost`]), making the degradation-ladder
//!   trajectory itself replayable bit-for-bit (wall time never feeds
//!   back into control flow);
//! - ties inside a tick break on arrival order (`seq`), never on map or
//!   hash order.

use crate::admission::{Admission, AdmissionConfig, Rung};
use crate::proto::{ActionOp, DecodeStep, Frame, FrameType};
use crate::session::Session;
use crate::stats::ServerStats;
use gstm_core::breaker::Breaker;
use gstm_core::faultinject::{FaultPlan, FaultSite};
use gstm_core::ids::{ThreadId, TxnId};
use gstm_libtm::{LibTm, LtThreadCtx};
use gstm_synquake::World;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Bytes drained from one session's write queue per tick.
const DRAIN_PER_TICK: usize = 64 * 1024;
/// Backoff hint (ticks) inside an `Overloaded` frame.
const OVERLOAD_BACKOFF_TICKS: u16 = 32;
/// Cap on retained per-tick records (the tail is what analysis wants).
const MAX_TICK_RECORDS: usize = 200_000;

/// Goodbye reason codes.
pub mod goodbye {
    /// Orderly close (client `Bye` or server shutdown).
    pub const ORDERLY: u8 = 0;
    /// Idle reaper.
    pub const IDLE: u8 = 1;
    /// Protocol violation (decoder fatal).
    pub const PROTOCOL: u8 = 2;
}

/// Engine tunables.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// World edge length.
    pub world_size: u32,
    /// Cell edge length.
    pub cell_size: u32,
    /// Player slots (one per concurrent session).
    pub players: u32,
    /// Items scattered at startup.
    pub items: u32,
    /// World/placement seed.
    pub seed: u64,
    /// Admission/ladder tunables.
    pub admission: AdmissionConfig,
    /// Use the synthetic tick clock (replayable) instead of wall time.
    pub deterministic: bool,
    /// Real-mode tick budget in nanoseconds (maps elapsed ns onto the
    /// admission cost scale).
    pub tick_budget_ns: u64,
    /// Ticks a session may idle before the reaper closes it.
    pub idle_ticks_max: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            world_size: 256,
            cell_size: 64,
            players: 64,
            items: 128,
            seed: 0x9a3e,
            admission: AdmissionConfig::default(),
            deterministic: false,
            tick_budget_ns: 2_000_000,
            idle_ticks_max: crate::session::IDLE_TICKS_MAX,
        }
    }
}

/// One input to the engine.
#[derive(Clone, Debug)]
pub enum Event {
    /// A new connection.
    Connect {
        /// Connection id (net layer handle).
        conn: u64,
    },
    /// Bytes received on a connection.
    Data {
        /// Connection id.
        conn: u64,
        /// Received bytes.
        bytes: Vec<u8>,
    },
    /// The peer went away.
    Disconnect {
        /// Connection id.
        conn: u64,
    },
    /// One server tick.
    Tick,
}

/// One output of the engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Effect {
    /// Write these bytes to the connection.
    Send {
        /// Connection id.
        conn: u64,
        /// Encoded frame bytes.
        bytes: Vec<u8>,
    },
    /// Close the connection.
    Close {
        /// Connection id.
        conn: u64,
    },
}

/// One action waiting for the tick barrier.
struct PendingAction {
    conn: u64,
    priority: u8,
    op: ActionOp,
    a: u16,
    b: u16,
    seq: u64,
}

/// One tick's bookkeeping, exported as `ticks.jsonl` for
/// `gstm-analyze`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TickRecord {
    /// Tick index (1-based).
    pub tick: u64,
    /// Tick duration: wall ns in real mode, synthetic cost units in
    /// deterministic mode.
    pub frame_ns: u64,
    /// Cost on the admission scale.
    pub cost: u64,
    /// Ladder rung after this tick.
    pub ladder: u8,
    /// Actions offered this tick.
    pub offered: u64,
    /// Actions executed.
    pub executed: u64,
    /// Actions shed.
    pub shed: u64,
    /// Live sessions after this tick.
    pub sessions: u64,
}

impl TickRecord {
    /// One JSONL line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tick\":{},\"frame_ns\":{},\"cost\":{},\"ladder\":{},\"offered\":{},\
             \"executed\":{},\"shed\":{},\"sessions\":{}}}",
            self.tick,
            self.frame_ns,
            self.cost,
            self.ladder,
            self.offered,
            self.executed,
            self.shed,
            self.sessions
        )
    }
}

/// The server state machine. See the module docs for the determinism
/// contract.
pub struct Engine {
    cfg: EngineConfig,
    world: World,
    tm: Arc<LibTm>,
    ctx: LtThreadCtx,
    breaker: Option<Arc<Breaker>>,
    faults: Option<Arc<FaultPlan>>,
    stats: Arc<ServerStats>,
    admission: Admission,
    sessions: BTreeMap<u64, Session>,
    free_players: Vec<u32>,
    pending: Vec<PendingAction>,
    deferred_connects: VecDeque<u64>,
    accept_stall_ticks: u32,
    tick: u64,
    seq: u64,
    records: Vec<TickRecord>,
    records_dropped: u64,
    shutting_down: bool,
}

impl Engine {
    /// Build an engine over an STM instance the caller configured
    /// (hook, telemetry, faults). The engine registers itself as
    /// `ThreadId(0)`.
    pub fn new(
        cfg: EngineConfig,
        tm: Arc<LibTm>,
        breaker: Option<Arc<Breaker>>,
        faults: Option<Arc<FaultPlan>>,
        stats: Arc<ServerStats>,
    ) -> Engine {
        let mut world = World::new(cfg.world_size, cfg.cell_size, cfg.players, cfg.seed);
        world.spawn_items(cfg.items, cfg.seed ^ 0x17e5);
        let ctx = tm.register_as(ThreadId(0));
        Engine {
            admission: Admission::new(cfg.admission),
            free_players: (0..cfg.players).rev().collect(),
            cfg,
            world,
            tm,
            ctx,
            breaker,
            faults,
            stats,
            sessions: BTreeMap::new(),
            pending: Vec::new(),
            deferred_connects: VecDeque::new(),
            accept_stall_ticks: 0,
            tick: 0,
            seq: 0,
            records: Vec::new(),
            records_dropped: 0,
            shutting_down: false,
        }
    }

    /// The game world (tests audit it).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// STM commits so far (zero-lost-updates accounting).
    pub fn commits(&self) -> u64 {
        self.tm.total_commits()
    }

    /// Live sessions.
    pub fn sessions_live(&self) -> usize {
        self.sessions.len()
    }

    /// Ticks processed.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Current ladder rung.
    pub fn rung(&self) -> Rung {
        self.admission.rung()
    }

    /// Ladder transitions so far.
    pub fn ladder_transitions(&self) -> &[(u64, Rung, Rung)] {
        self.admission.transitions()
    }

    /// Retained per-tick records (oldest dropped past the cap).
    pub fn records(&self) -> &[TickRecord] {
        &self.records
    }

    /// The per-tick ladder trajectory (replay comparisons).
    pub fn ladder_trajectory(&self) -> Vec<u8> {
        self.records.iter().map(|r| r.ladder).collect()
    }

    /// Serialize the retained tick records as JSONL.
    pub fn write_ticks_jsonl(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        if self.records_dropped > 0 {
            writeln!(w, "{{\"truncated_ticks\":{}}}", self.records_dropped)?;
        }
        for r in &self.records {
            writeln!(w, "{}", r.to_json())?;
        }
        Ok(())
    }

    fn probe(&self, site: FaultSite) -> Option<gstm_core::faultinject::InjectedFault> {
        self.faults.as_ref()?.should_fire(site, 0)
    }

    /// Feed one event; returns the effects it produced.
    pub fn handle(&mut self, ev: Event) -> Vec<Effect> {
        match ev {
            Event::Connect { conn } => self.on_connect(conn),
            Event::Data { conn, bytes } => self.on_data(conn, bytes),
            Event::Disconnect { conn } => self.on_disconnect(conn),
            Event::Tick => self.on_tick(),
        }
    }

    fn on_connect(&mut self, conn: u64) -> Vec<Effect> {
        if self.shutting_down {
            return vec![
                Effect::Send { conn, bytes: Frame::goodbye(goodbye::ORDERLY).encode() },
                Effect::Close { conn },
            ];
        }
        if let Some(f) = self.probe(FaultSite::AcceptStall) {
            self.accept_stall_ticks = self.accept_stall_ticks.max(f.spins.max(1));
        }
        if self.accept_stall_ticks > 0 {
            // The accept loop is stalled: the connection sits unserved
            // until the stall lifts at a later tick.
            self.deferred_connects.push_back(conn);
            return Vec::new();
        }
        self.admit(conn)
    }

    fn admit(&mut self, conn: u64) -> Vec<Effect> {
        if !self.admission.accepts_sessions(self.sessions.len()) || self.free_players.is_empty() {
            self.stats.sessions_rejected.fetch_add(1, atomic_order());
            return vec![
                Effect::Send {
                    conn,
                    bytes: Frame::overloaded(OVERLOAD_BACKOFF_TICKS).encode(),
                },
                Effect::Close { conn },
            ];
        }
        self.sessions.insert(conn, Session::new(conn));
        self.stats.sessions_accepted.fetch_add(1, atomic_order());
        self.stats.sessions.store(self.sessions.len() as u64, atomic_order());
        Vec::new()
    }

    fn on_data(&mut self, conn: u64, mut bytes: Vec<u8>) -> Vec<Effect> {
        if !self.sessions.contains_key(&conn) {
            return Vec::new();
        }
        // Socket-layer chaos, probed in delivery order from the one
        // engine thread (determinism).
        if self.probe(FaultSite::Disconnect).is_some() {
            return self.close_session(conn, None);
        }
        if let Some(f) = self.probe(FaultSite::SlowLoris) {
            if let Some(s) = self.sessions.get_mut(&conn) {
                s.loris_ticks = s.loris_ticks.saturating_add(f.spins.max(1));
            }
        }
        if let Some(f) = self.probe(FaultSite::MalformedFrame) {
            if !bytes.is_empty() {
                let i = (f.entropy % bytes.len() as u64) as usize;
                bytes[i] ^= 1 << ((f.entropy >> 8) % 8);
            }
        }
        if let Some(f) = self.probe(FaultSite::PartialIo) {
            // Short read: only a prefix arrives now; the tail is
            // re-delivered at the next tick.
            let keep = (f.entropy % (bytes.len() as u64 + 1)) as usize;
            let tail = bytes.split_off(keep);
            if let Some(s) = self.sessions.get_mut(&conn) {
                s.deferred_in.extend_from_slice(&tail);
            }
        }
        self.feed_decoder(conn, &bytes)
    }

    /// Push bytes through a session's decoder and act on every frame.
    fn feed_decoder(&mut self, conn: u64, bytes: &[u8]) -> Vec<Effect> {
        let Some(s) = self.sessions.get_mut(&conn) else {
            return Vec::new();
        };
        s.idle_ticks = 0;
        let before = s.decoder.desyncs();
        s.decoder.push(bytes);
        let mut frames = Vec::new();
        let mut fatal = false;
        loop {
            match s.decoder.next() {
                DecodeStep::Frame(f) => frames.push(f),
                DecodeStep::NeedMore => break,
                DecodeStep::Fatal(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        let desyncs = s.decoder.desyncs() - before;
        if desyncs > 0 {
            self.stats.malformed_frames.fetch_add(desyncs as u64, atomic_order());
        }
        self.stats.frames_in.fetch_add(frames.len() as u64, atomic_order());
        for f in frames {
            self.on_frame(conn, f);
        }
        if fatal {
            return self.close_session(conn, Some(goodbye::PROTOCOL));
        }
        Vec::new()
    }

    fn on_frame(&mut self, conn: u64, frame: Frame) {
        match frame.kind {
            FrameType::Hello => {
                let player = self.free_players.pop();
                if let Some(s) = self.sessions.get_mut(&conn) {
                    if s.player.is_some() {
                        // Duplicate Hello: keep the original assignment.
                        if let Some(p) = player {
                            self.free_players.push(p);
                        }
                        return;
                    }
                    match player {
                        Some(p) => {
                            s.player = Some(p);
                            self.queue(conn, &Frame::welcome(p as u16));
                        }
                        None => {
                            self.queue(conn, &Frame::overloaded(OVERLOAD_BACKOFF_TICKS));
                        }
                    }
                } else if let Some(p) = player {
                    self.free_players.push(p);
                }
            }
            FrameType::Action => match Frame::parse_action(&frame.payload) {
                Some((op, a, b)) => {
                    let player_ready =
                        self.sessions.get(&conn).map(|s| s.player.is_some()).unwrap_or(false);
                    if player_ready {
                        self.seq += 1;
                        self.pending.push(PendingAction {
                            conn,
                            priority: frame.priority,
                            op,
                            a,
                            b,
                            seq: self.seq,
                        });
                    }
                }
                None => {
                    self.stats.malformed_frames.fetch_add(1, atomic_order());
                }
            },
            FrameType::Ping => {
                let pong = Frame::pong(&frame.payload);
                self.queue(conn, &pong);
            }
            FrameType::Bye => {
                if let Some(s) = self.sessions.get_mut(&conn) {
                    s.closing = true;
                }
                self.queue(conn, &Frame::goodbye(goodbye::ORDERLY));
            }
            // Server→client frames from a client are protocol noise;
            // tolerated (the decoder already validated framing).
            _ => {}
        }
    }

    /// Queue a frame toward a session, counting backpressure drops.
    fn queue(&mut self, conn: u64, frame: &Frame) {
        if let Some(s) = self.sessions.get_mut(&conn) {
            if s.queue_frame(frame) {
                self.stats.frames_out.fetch_add(1, atomic_order());
            } else {
                self.stats.frames_dropped.fetch_add(1, atomic_order());
            }
        }
    }

    fn on_disconnect(&mut self, conn: u64) -> Vec<Effect> {
        if self.sessions.contains_key(&conn) {
            self.close_session(conn, None)
        } else {
            Vec::new()
        }
    }

    /// Tear a session down. With a reason, a `Goodbye` is flushed ahead
    /// of the close; without, the close is abrupt (peer is gone).
    fn close_session(&mut self, conn: u64, reason: Option<u8>) -> Vec<Effect> {
        let Some(mut s) = self.sessions.remove(&conn) else {
            return Vec::new();
        };
        if let Some(p) = s.player.take() {
            self.free_players.push(p);
        }
        self.pending.retain(|a| a.conn != conn);
        self.stats.disconnects.fetch_add(1, atomic_order());
        self.stats.sessions.store(self.sessions.len() as u64, atomic_order());
        let mut fx = Vec::new();
        if let Some(code) = reason {
            let mut bytes: Vec<u8> = s.outq.drain(..).collect();
            bytes.extend(Frame::goodbye(code).encode());
            self.stats.frames_out.fetch_add(1, atomic_order());
            fx.push(Effect::Send { conn, bytes });
        }
        fx.push(Effect::Close { conn });
        fx
    }

    fn on_tick(&mut self) -> Vec<Effect> {
        let started = (!self.cfg.deterministic).then(std::time::Instant::now);
        self.tick += 1;
        let mut fx = Vec::new();

        // Accept stall bookkeeping: lift by one tick, then serve the
        // backlog once clear.
        if self.accept_stall_ticks > 0 {
            self.accept_stall_ticks -= 1;
        }
        if self.accept_stall_ticks == 0 {
            while let Some(conn) = self.deferred_connects.pop_front() {
                fx.extend(self.admit(conn));
            }
        }

        // Re-deliver partial-read tails.
        let held: Vec<(u64, Vec<u8>)> = self
            .sessions
            .iter_mut()
            .filter(|(_, s)| !s.deferred_in.is_empty())
            .map(|(&c, s)| (c, std::mem::take(&mut s.deferred_in)))
            .collect();
        for (conn, bytes) in held {
            fx.extend(self.feed_decoder(conn, &bytes));
        }

        // Admission: order by priority (high first), arrival order
        // breaking ties, then shed the tail.
        let mut actions = std::mem::take(&mut self.pending);
        actions.retain(|a| self.sessions.get(&a.conn).is_some_and(|s| s.player.is_some()));
        actions.sort_by_key(|a| (std::cmp::Reverse(a.priority), a.seq));
        let offered = actions.len();
        let admit = self.admission.admit(offered);
        let shed: Vec<PendingAction> = actions.split_off(admit);
        let executed = actions.len();
        self.stats.actions_shed.fetch_add(shed.len() as u64, atomic_order());
        let mut overloaded_conns: Vec<u64> = shed.iter().map(|a| a.conn).collect();
        overloaded_conns.sort_unstable();
        overloaded_conns.dedup();
        for conn in overloaded_conns {
            self.queue(conn, &Frame::overloaded(OVERLOAD_BACKOFF_TICKS));
        }

        // Execute admitted actions through the guided STM.
        for a in &actions {
            let Some(player) = self.sessions.get(&a.conn).and_then(|s| s.player) else {
                continue;
            };
            let world = &self.world;
            match a.op {
                ActionOp::Move => {
                    let x = (a.a as u32).min(self.cfg.world_size - 1);
                    let y = (a.b as u32).min(self.cfg.world_size - 1);
                    self.ctx.atomically(TxnId(0), |tx| world.move_player(tx, player, x, y));
                }
                ActionOp::Attack => {
                    let _ = self.ctx.atomically(TxnId(1), |tx| {
                        world.attack(tx, player, 10, a.a as u64)
                    });
                }
                ActionOp::Pickup => {
                    let _ = self.ctx.atomically(TxnId(2), |tx| world.pickup(tx, player));
                }
            }
        }
        self.stats.actions_executed.fetch_add(executed as u64, atomic_order());

        // Tick cost → ladder. Deterministic mode charges the synthetic
        // model (replayable); real mode scales elapsed wall time onto
        // the admission cost scale.
        let shed_n = shed.len();
        let elapsed_ns = started.map(|t| t.elapsed().as_nanos() as u64);
        let cost = match elapsed_ns {
            None => self.admission.synthetic_cost(executed, shed_n),
            Some(ns) => {
                ns.saturating_mul(self.admission.config().tick_budget)
                    / self.cfg.tick_budget_ns.max(1)
            }
        };
        if let Some((from, to)) = self.admission.observe_tick(self.tick, cost) {
            self.stats.record_ladder(to);
            if to >= Rung::GuidedBypass && from < Rung::GuidedBypass {
                if let Some(b) = &self.breaker {
                    b.force_open();
                }
            }
        }

        // Tick reports: full neighborhood at rung 0, own cell only
        // under reduced AOI.
        let rung = self.admission.rung();
        let conns: Vec<u64> = self.sessions.keys().copied().collect();
        for conn in conns {
            let Some(player) = self.sessions.get(&conn).and_then(|s| s.player) else {
                continue;
            };
            let report = self.tick_report(player, rung);
            self.queue(conn, &report);
        }

        // Idle reaper + slow-loris countdown + queue drain.
        let mut to_close: Vec<(u64, Option<u8>)> = Vec::new();
        for (&conn, s) in self.sessions.iter_mut() {
            s.idle_ticks += 1;
            if s.loris_ticks > 0 {
                s.loris_ticks -= 1;
            }
            if s.idle_ticks > self.cfg.idle_ticks_max {
                self.stats.idle_reaped.fetch_add(1, atomic_order());
                to_close.push((conn, Some(goodbye::IDLE)));
                continue;
            }
            let bytes = s.drain_out(DRAIN_PER_TICK);
            if !bytes.is_empty() {
                fx.push(Effect::Send { conn, bytes });
            }
            if s.closing && s.outq.is_empty() {
                to_close.push((conn, None));
            }
        }
        for (conn, reason) in to_close {
            fx.extend(self.close_session(conn, reason));
        }

        // Bookkeeping.
        let frame_ns = elapsed_ns.unwrap_or(cost);
        self.stats.record_tick(frame_ns);
        if self.records.len() == MAX_TICK_RECORDS {
            self.records.remove(0);
            self.records_dropped += 1;
        }
        self.records.push(TickRecord {
            tick: self.tick,
            frame_ns,
            cost,
            ladder: rung.code(),
            offered: offered as u64,
            executed: executed as u64,
            shed: shed_n as u64,
            sessions: self.sessions.len() as u64,
        });
        fx
    }

    /// Build one tick report for `player` at `rung`.
    fn tick_report(&self, player: u32, rung: Rung) -> Frame {
        let p = self.world.players[player as usize].load_quiesced();
        let mut payload = Vec::with_capacity(32);
        payload.push(rung.code());
        payload.extend_from_slice(&(self.tick as u32).to_le_bytes());
        payload.extend_from_slice(&(p.x as u16).to_le_bytes());
        payload.extend_from_slice(&(p.y as u16).to_le_bytes());
        payload.extend_from_slice(&(p.hp.clamp(0, 255) as u8).to_le_bytes());
        payload.extend_from_slice(&(p.score.min(u16::MAX as u32) as u16).to_le_bytes());
        if rung < Rung::ReducedAoi {
            // Full AOI: occupancy of the player's cell neighborhood.
            let cell = self.world.cell_index(p.x, p.y);
            let per_row = self.world.cells_per_row() as usize;
            let (cx, cy) = (cell % per_row, cell / per_row);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    let n = if nx < 0 || ny < 0 || nx >= per_row as i64 || ny >= per_row as i64 {
                        0
                    } else {
                        self.world.cells[ny as usize * per_row + nx as usize]
                            .load_quiesced()
                            .len()
                            .min(255)
                    };
                    payload.push(n as u8);
                }
            }
        }
        Frame::new(FrameType::TickReport, 10, payload)
    }

    /// Graceful shutdown: flush every queue, say `Goodbye`, close
    /// everything. The engine refuses new connections afterwards.
    pub fn shutdown(&mut self) -> Vec<Effect> {
        self.shutting_down = true;
        let conns: Vec<u64> = self.sessions.keys().copied().collect();
        let mut fx = Vec::new();
        for conn in conns {
            fx.extend(self.close_session(conn, Some(goodbye::ORDERLY)));
        }
        fx
    }
}

#[inline]
fn atomic_order() -> std::sync::atomic::Ordering {
    std::sync::atomic::Ordering::Relaxed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::MAGIC0;
    use gstm_libtm::LibTmConfig;

    fn engine(det: bool) -> Engine {
        let cfg = EngineConfig {
            players: 8,
            deterministic: det,
            admission: AdmissionConfig {
                tick_budget: 200,
                action_cost: 10,
                base_cost: 20,
                max_sessions: 8,
                escalate_after: 2,
                deescalate_after: 3,
                low_water_pct: 60,
            },
            ..EngineConfig::default()
        };
        let tm = LibTm::new(LibTmConfig::default());
        Engine::new(cfg, tm, None, None, Arc::new(ServerStats::new()))
    }

    fn hello(e: &mut Engine, conn: u64) {
        assert!(e.handle(Event::Connect { conn }).is_empty());
        assert!(e
            .handle(Event::Data { conn, bytes: Frame::hello().encode() })
            .is_empty());
    }

    #[test]
    fn handshake_assigns_a_player_and_welcomes() {
        let mut e = engine(true);
        hello(&mut e, 1);
        let fx = e.handle(Event::Tick);
        // Welcome + tick report flushed as one Send.
        let Some(Effect::Send { conn, bytes }) = fx.first() else {
            panic!("expected a send, got {fx:?}");
        };
        assert_eq!(*conn, 1);
        assert!(bytes.starts_with(&Frame::welcome(0).encode()), "player 0 assigned first");
        assert_eq!(e.sessions_live(), 1);
    }

    #[test]
    fn actions_execute_through_stm_and_stay_accounted() {
        let mut e = engine(true);
        hello(&mut e, 1);
        e.handle(Event::Tick);
        let base = e.commits();
        for i in 0..5u16 {
            let f = crate::proto::Frame::action(ActionOp::Move, 5, 10 + i, 10);
            e.handle(Event::Data { conn: 1, bytes: f.encode() });
        }
        e.handle(Event::Tick);
        assert_eq!(e.commits() - base, 5, "every executed action is one commit");
        assert_eq!(e.world().audit(), 0);
        let rec = e.records().last().unwrap();
        assert_eq!((rec.offered, rec.executed, rec.shed), (5, 5, 0));
    }

    #[test]
    fn overload_sheds_lowest_priority_first_and_climbs_the_ladder() {
        let mut e = engine(true);
        hello(&mut e, 1);
        e.handle(Event::Tick);
        // Budget admits (200-20)/10 = 18 actions; offer 40 per tick.
        let mut saw_shed = false;
        for _ in 0..8 {
            for i in 0..40u16 {
                let pri = (i % 4) as u8;
                let f = Frame::action(ActionOp::Move, pri, 10 + i, 20);
                e.handle(Event::Data { conn: 1, bytes: f.encode() });
            }
            e.handle(Event::Tick);
            let rec = *e.records().last().unwrap();
            if rec.shed > 0 {
                saw_shed = true;
                assert_eq!(rec.executed + rec.shed, rec.offered);
            }
        }
        assert!(saw_shed);
        assert!(e.rung() > Rung::FullTick, "sustained overload climbed the ladder");
        assert!(!e.ladder_transitions().is_empty());
        // Drain the pressure: the ladder steps back down.
        for _ in 0..32 {
            e.handle(Event::Tick);
        }
        assert_eq!(e.rung(), Rung::FullTick, "recovered");
        assert_eq!(e.world().audit(), 0);
    }

    #[test]
    fn session_cap_rejects_with_overloaded() {
        let mut e = engine(true);
        for conn in 0..8 {
            hello(&mut e, conn);
        }
        let fx = e.handle(Event::Connect { conn: 99 });
        assert_eq!(
            fx,
            vec![
                Effect::Send { conn: 99, bytes: Frame::overloaded(32).encode() },
                Effect::Close { conn: 99 },
            ]
        );
    }

    #[test]
    fn protocol_violation_gets_goodbye_then_close() {
        let mut e = engine(true);
        hello(&mut e, 1);
        // Flood garbage past the desync budget.
        let garbage: Vec<u8> = (0..64).flat_map(|_| [MAGIC0, 0x00]).collect();
        let fx = e.handle(Event::Data { conn: 1, bytes: garbage });
        let sends: Vec<_> = fx
            .iter()
            .filter_map(|f| match f {
                Effect::Send { bytes, .. } => Some(bytes.clone()),
                _ => None,
            })
            .collect();
        assert!(
            sends.iter().any(|b| b
                .windows(3)
                .any(|w| w[..2] == [MAGIC0, 0x7e] && w[2] == FrameType::Goodbye.code())),
            "goodbye flushed before close"
        );
        assert!(fx.contains(&Effect::Close { conn: 1 }));
        assert_eq!(e.sessions_live(), 0);
    }

    #[test]
    fn idle_reaper_closes_quiet_sessions() {
        let mut e = engine(true);
        e.cfg.idle_ticks_max = 3;
        hello(&mut e, 1);
        let mut closed = false;
        for _ in 0..6 {
            if e.handle(Event::Tick).contains(&Effect::Close { conn: 1 }) {
                closed = true;
                break;
            }
        }
        assert!(closed, "idle session reaped");
        assert_eq!(e.stats.idle_reaped.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_flushes_goodbyes() {
        let mut e = engine(true);
        hello(&mut e, 1);
        hello(&mut e, 2);
        let fx = e.shutdown();
        let closes = fx.iter().filter(|f| matches!(f, Effect::Close { .. })).count();
        assert_eq!(closes, 2);
        assert_eq!(e.sessions_live(), 0);
        // Late connect is refused.
        let fx = e.handle(Event::Connect { conn: 9 });
        assert!(fx.contains(&Effect::Close { conn: 9 }));
    }
}
