//! The wire protocol: length-prefixed frames with a resynchronizing
//! decoder.
//!
//! A frame is a 6-byte header followed by a payload:
//!
//! ```text
//! +------+------+------+----------+-----------+---------\
//! | 0xA5 | 0x7E | type | priority | len (LE16)| payload  \
//! +------+------+------+----------+-----------+---------/
//! ```
//!
//! The two magic bytes exist for the decoder's benefit: after garbage
//! (a malformed-frame fault, a buggy client, a mid-frame disconnect
//! splice) it scans forward to the next magic and resumes, counting one
//! *desync* per scan. A session that desyncs more than [`MAX_DESYNCS`]
//! times is judged hostile or hopeless and disconnected. The decoder
//! never panics on any byte sequence — the seeded fuzz tests below hold
//! it to that.

/// First magic byte.
pub const MAGIC0: u8 = 0xA5;
/// Second magic byte.
pub const MAGIC1: u8 = 0x7E;
/// Header length: magic (2) + type (1) + priority (1) + len (2, LE).
pub const HEADER_LEN: usize = 6;
/// Hard cap on a frame payload; a longer length field is treated as
/// garbage (desync), not an allocation request.
pub const MAX_PAYLOAD: usize = 512;
/// Desyncs tolerated per session before the decoder turns fatal.
pub const MAX_DESYNCS: u32 = 8;
/// Cap on buffered undecoded bytes per session; beyond this the peer is
/// not speaking the protocol and the decoder turns fatal.
const MAX_BUFFER: usize = 8 * 1024;

/// Frame types. Client→server types are `0x0_`, server→client `0x8_`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameType {
    /// C→S: open a session.
    Hello = 0x01,
    /// C→S: one player action (payload: op, a, b — see [`Frame::action`]).
    Action = 0x02,
    /// C→S: RTT probe; payload echoed back in a `Pong`.
    Ping = 0x03,
    /// C→S: polite close; server answers `Goodbye` and drops the session.
    Bye = 0x04,
    /// S→C: session accepted (payload: assigned player id, LE16).
    Welcome = 0x81,
    /// S→C: per-tick world report (payload starts with the ladder rung).
    TickReport = 0x82,
    /// S→C: `Ping` echo.
    Pong = 0x83,
    /// S→C: admission control rejected the session or action
    /// (payload: suggested backoff in ticks, LE16).
    Overloaded = 0x84,
    /// S→C: orderly close (payload: reason code).
    Goodbye = 0x85,
}

impl FrameType {
    /// Decode a type byte.
    pub fn from_code(code: u8) -> Option<FrameType> {
        Some(match code {
            0x01 => FrameType::Hello,
            0x02 => FrameType::Action,
            0x03 => FrameType::Ping,
            0x04 => FrameType::Bye,
            0x81 => FrameType::Welcome,
            0x82 => FrameType::TickReport,
            0x83 => FrameType::Pong,
            0x84 => FrameType::Overloaded,
            0x85 => FrameType::Goodbye,
            _ => return None,
        })
    }

    /// The wire byte.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Stable label (logs/metrics).
    pub fn label(self) -> &'static str {
        match self {
            FrameType::Hello => "hello",
            FrameType::Action => "action",
            FrameType::Ping => "ping",
            FrameType::Bye => "bye",
            FrameType::Welcome => "welcome",
            FrameType::TickReport => "tick-report",
            FrameType::Pong => "pong",
            FrameType::Overloaded => "overloaded",
            FrameType::Goodbye => "goodbye",
        }
    }
}

/// Action opcodes inside an `Action` payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ActionOp {
    /// Move to absolute `(a, b)` (clamped to the map by the engine).
    Move = 0,
    /// Attack a cell-mate; `a` seeds the victim pick.
    Attack = 1,
    /// Pick up an item in the current cell.
    Pickup = 2,
}

impl ActionOp {
    /// Decode an opcode byte.
    pub fn from_code(code: u8) -> Option<ActionOp> {
        Some(match code {
            0 => ActionOp::Move,
            1 => ActionOp::Attack,
            2 => ActionOp::Pickup,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Frame type.
    pub kind: FrameType,
    /// Priority, 0 (droppable) … 255 (critical). Admission control
    /// sheds the lowest priorities first.
    pub priority: u8,
    /// Payload bytes (≤ [`MAX_PAYLOAD`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with an explicit payload (truncated to [`MAX_PAYLOAD`]).
    pub fn new(kind: FrameType, priority: u8, mut payload: Vec<u8>) -> Frame {
        payload.truncate(MAX_PAYLOAD);
        Frame { kind, priority, payload }
    }

    /// C→S session open.
    pub fn hello() -> Frame {
        Frame::new(FrameType::Hello, 255, Vec::new())
    }

    /// C→S action: `op` with two 16-bit arguments.
    pub fn action(op: ActionOp, priority: u8, a: u16, b: u16) -> Frame {
        let mut p = Vec::with_capacity(5);
        p.push(op as u8);
        p.extend_from_slice(&a.to_le_bytes());
        p.extend_from_slice(&b.to_le_bytes());
        Frame::new(FrameType::Action, priority, p)
    }

    /// Parse an `Action` payload back into `(op, a, b)`.
    pub fn parse_action(payload: &[u8]) -> Option<(ActionOp, u16, u16)> {
        if payload.len() < 5 {
            return None;
        }
        let op = ActionOp::from_code(payload[0])?;
        let a = u16::from_le_bytes([payload[1], payload[2]]);
        let b = u16::from_le_bytes([payload[3], payload[4]]);
        Some((op, a, b))
    }

    /// C→S RTT probe carrying an opaque token.
    pub fn ping(token: u64) -> Frame {
        Frame::new(FrameType::Ping, 200, token.to_le_bytes().to_vec())
    }

    /// C→S polite close.
    pub fn bye() -> Frame {
        Frame::new(FrameType::Bye, 255, Vec::new())
    }

    /// S→C session accepted, carrying the assigned player id.
    pub fn welcome(player: u16) -> Frame {
        Frame::new(FrameType::Welcome, 255, player.to_le_bytes().to_vec())
    }

    /// S→C rejection with a suggested backoff (ticks).
    pub fn overloaded(backoff_ticks: u16) -> Frame {
        Frame::new(FrameType::Overloaded, 255, backoff_ticks.to_le_bytes().to_vec())
    }

    /// S→C orderly close.
    pub fn goodbye(reason: u8) -> Frame {
        Frame::new(FrameType::Goodbye, 255, vec![reason])
    }

    /// S→C `Ping` echo.
    pub fn pong(token_payload: &[u8]) -> Frame {
        Frame::new(FrameType::Pong, 200, token_payload.to_vec())
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let len = self.payload.len().min(MAX_PAYLOAD) as u16;
        let mut out = Vec::with_capacity(HEADER_LEN + len as usize);
        out.push(MAGIC0);
        out.push(MAGIC1);
        out.push(self.kind.code());
        out.push(self.priority);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.payload[..len as usize]);
        out
    }
}

/// One step of the incremental decoder.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeStep {
    /// A complete frame.
    Frame(Frame),
    /// The buffer holds no complete frame — feed more bytes.
    NeedMore,
    /// The stream is beyond saving (desync budget exhausted or the peer
    /// floods undecodable bytes); disconnect the session.
    Fatal(&'static str),
}

/// Incremental, resynchronizing frame decoder. One per session.
///
/// Invariants the fuzz tests enforce: `push`+`next` never panic on any
/// input, a `Fatal` verdict is sticky, and after arbitrary garbage a
/// well-formed frame is either decoded or the session is cleanly
/// fatal — never silently stuck.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    desyncs: u32,
    dead: Option<&'static str>,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.dead.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Desyncs survived so far.
    pub fn desyncs(&self) -> u32 {
        self.desyncs
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Drop `n` buffered bytes as garbage, counting one desync and
    /// turning fatal past the budget.
    fn desync(&mut self, n: usize) -> DecodeStep {
        self.buf.drain(..n.min(self.buf.len()));
        self.desyncs += 1;
        if self.desyncs > MAX_DESYNCS {
            self.dead = Some("desync budget exhausted");
            self.buf.clear();
            return DecodeStep::Fatal("desync budget exhausted");
        }
        // Tail-call into the (now shorter) buffer.
        self.next()
    }

    /// Pull the next complete frame, resynchronizing past garbage.
    pub fn next(&mut self) -> DecodeStep {
        if let Some(why) = self.dead {
            return DecodeStep::Fatal(why);
        }
        // Scan to the next plausible frame start.
        if !self.buf.is_empty() && self.buf[0] != MAGIC0 {
            let skip = self
                .buf
                .iter()
                .position(|&b| b == MAGIC0)
                .unwrap_or(self.buf.len());
            return self.desync(skip);
        }
        if self.buf.len() < HEADER_LEN {
            if self.buf.len() >= 2 && self.buf[1] != MAGIC1 {
                return self.desync(1);
            }
            return DecodeStep::NeedMore;
        }
        if self.buf[1] != MAGIC1 {
            return self.desync(1);
        }
        let kind = FrameType::from_code(self.buf[2]);
        let len = u16::from_le_bytes([self.buf[4], self.buf[5]]) as usize;
        let (Some(kind), true) = (kind, len <= MAX_PAYLOAD) else {
            // Unknown type or absurd length: this was not a real header.
            return self.desync(1);
        };
        if self.buf.len() < HEADER_LEN + len {
            if self.buf.len() > MAX_BUFFER {
                self.dead = Some("buffer cap exceeded");
                self.buf.clear();
                return DecodeStep::Fatal("buffer cap exceeded");
            }
            return DecodeStep::NeedMore;
        }
        let priority = self.buf[3];
        let payload = self.buf[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.buf.drain(..HEADER_LEN + len);
        DecodeStep::Frame(Frame { kind, priority, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::rng::SplitMix64;

    fn decode_all(dec: &mut FrameDecoder) -> (Vec<Frame>, Option<&'static str>) {
        let mut out = Vec::new();
        loop {
            match dec.next() {
                DecodeStep::Frame(f) => out.push(f),
                DecodeStep::NeedMore => return (out, None),
                DecodeStep::Fatal(why) => return (out, Some(why)),
            }
        }
    }

    #[test]
    fn roundtrip_every_frame_type() {
        let frames = vec![
            Frame::hello(),
            Frame::action(ActionOp::Move, 3, 120, 77),
            Frame::ping(0xdead_beef),
            Frame::bye(),
            Frame::welcome(42),
            Frame::overloaded(16),
            Frame::goodbye(1),
            Frame::pong(&7u64.to_le_bytes()),
        ];
        let mut dec = FrameDecoder::new();
        for f in &frames {
            dec.push(&f.encode());
        }
        let (got, fatal) = decode_all(&mut dec);
        assert_eq!(fatal, None);
        assert_eq!(got, frames);
        assert_eq!(dec.desyncs(), 0);
    }

    #[test]
    fn action_payload_roundtrips() {
        let f = Frame::action(ActionOp::Attack, 9, 500, 65535);
        let (op, a, b) = Frame::parse_action(&f.payload).unwrap();
        assert_eq!((op, a, b), (ActionOp::Attack, 500, 65535));
        assert_eq!(Frame::parse_action(&[1, 2]), None, "short payload is None, not a panic");
    }

    #[test]
    fn resyncs_after_leading_garbage() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0x00, 0x13, 0x37]);
        dec.push(&Frame::welcome(7).encode());
        let (got, fatal) = decode_all(&mut dec);
        assert_eq!(fatal, None);
        assert_eq!(got, vec![Frame::welcome(7)]);
        assert!(dec.desyncs() >= 1);
    }

    #[test]
    fn split_delivery_reassembles() {
        let wire = Frame::action(ActionOp::Move, 1, 9, 9).encode();
        let mut dec = FrameDecoder::new();
        for b in &wire[..wire.len() - 1] {
            dec.push(&[*b]);
            assert_eq!(dec.next(), DecodeStep::NeedMore);
        }
        dec.push(&[wire[wire.len() - 1]]);
        assert!(matches!(dec.next(), DecodeStep::Frame(_)));
    }

    #[test]
    fn oversized_length_is_desync_not_allocation() {
        let mut dec = FrameDecoder::new();
        let mut evil = vec![MAGIC0, MAGIC1, 0x02, 0, 0xff, 0xff];
        evil.extend_from_slice(&Frame::hello().encode());
        dec.push(&evil);
        let (got, fatal) = decode_all(&mut dec);
        assert_eq!(fatal, None);
        assert_eq!(got, vec![Frame::hello()]);
        assert!(dec.desyncs() >= 1);
    }

    #[test]
    fn persistent_garbage_turns_fatal() {
        let mut dec = FrameDecoder::new();
        for _ in 0..=MAX_DESYNCS {
            dec.push(&[MAGIC0, 0x00]);
        }
        let (_, fatal) = decode_all(&mut dec);
        assert!(fatal.is_some(), "desync budget must be finite");
        // Sticky: later perfect frames are refused.
        dec.push(&Frame::hello().encode());
        assert!(matches!(dec.next(), DecodeStep::Fatal(_)));
    }

    #[test]
    fn fuzz_decoder_never_panics_and_always_recovers_or_dies() {
        // Satellite: seeded fuzz of truncated/oversized/garbage frames.
        // For each seed: a mix of valid frames, corrupted frames, and raw
        // noise; the decoder must never panic, and afterwards must either
        // be fatal or decode a fresh well-formed frame (resynchronized).
        for seed in 0..64u64 {
            let mut rng = SplitMix64::new(0x5eed ^ seed);
            let mut dec = FrameDecoder::new();
            for _ in 0..200 {
                match rng.below(4) {
                    0 => {
                        let f = Frame::action(
                            ActionOp::Move,
                            rng.below(256) as u8,
                            rng.below(65536) as u16,
                            rng.below(65536) as u16,
                        );
                        dec.push(&f.encode());
                    }
                    1 => {
                        // Corrupted frame: flip one byte.
                        let mut wire = Frame::ping(rng.next()).encode();
                        let i = (rng.below(wire.len() as u64)) as usize;
                        wire[i] ^= 1 << rng.below(8);
                        dec.push(&wire);
                    }
                    2 => {
                        // Truncated frame.
                        let wire = Frame::welcome(rng.below(65536) as u16).encode();
                        let keep = (rng.below(wire.len() as u64)) as usize;
                        dec.push(&wire[..keep]);
                    }
                    _ => {
                        // Raw noise.
                        let n = rng.below(32) + 1;
                        let noise: Vec<u8> =
                            (0..n).map(|_| rng.below(256) as u8).collect();
                        dec.push(&noise);
                    }
                }
                // Drain whatever is decodable; must not panic.
                let (_, fatal) = decode_all(&mut dec);
                if fatal.is_some() {
                    break;
                }
            }
            // Post-condition: fatal (clean disconnect) or able to decode
            // a fresh frame once the noise stops.
            let probe = Frame::goodbye(0);
            dec.push(&probe.encode());
            let (got, fatal) = decode_all(&mut dec);
            assert!(
                fatal.is_some() || got.contains(&probe),
                "seed {seed}: decoder wedged — neither fatal nor resynchronized"
            );
        }
    }

    #[test]
    fn fuzz_decoder_is_deterministic() {
        // Same seed → same frame sequence and desync count.
        let run = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            let mut dec = FrameDecoder::new();
            let mut log = Vec::new();
            for _ in 0..300 {
                let n = rng.below(24) + 1;
                let noise: Vec<u8> = (0..n).map(|_| rng.below(256) as u8).collect();
                dec.push(&noise);
                loop {
                    match dec.next() {
                        DecodeStep::Frame(f) => log.push(format!("{:?}", f.kind)),
                        DecodeStep::NeedMore => break,
                        DecodeStep::Fatal(w) => {
                            log.push(format!("fatal:{w}"));
                            break;
                        }
                    }
                }
            }
            (log, dec.desyncs())
        };
        assert_eq!(run(0xabcd), run(0xabcd));
    }
}
