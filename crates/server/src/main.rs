//! `gstm-server` — the overload-hardened SynQuake network server.
//!
//! Startup trains a guided model by self-play (the same
//! train-on-worst-case pipeline the harness uses), then serves the
//! world over TCP with admission control, the degradation ladder, and
//! the ops plane attached. `--chaos=SEED` arms the deterministic socket
//! fault plan; `--ticks=N` bounds the run for scripted campaigns.

use gstm_core::ops::{self, OpsPlane, SloSpec};
use gstm_core::prelude::*;
use gstm_libtm::{LibTm, LibTmConfig};
use gstm_server::admission::AdmissionConfig;
use gstm_server::engine::{Engine, EngineConfig};
use gstm_server::net::{self, NetConfig};
use gstm_server::signal;
use gstm_server::stats::ServerStats;
use gstm_synquake::{run_game, GameConfig, QuestLayout};
use std::io::Write as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

struct Options {
    port: u16,
    tick_ms: u64,
    players: u32,
    world_size: u32,
    cell_size: u32,
    items: u32,
    max_sessions: usize,
    budget_us: u64,
    chaos: Option<String>,
    slo: Option<String>,
    ops_port: Option<u16>,
    out: PathBuf,
    ticks: u64,
    train_frames: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            port: 7777,
            tick_ms: 20,
            players: 64,
            world_size: 256,
            cell_size: 64,
            items: 128,
            max_sessions: 64,
            budget_us: 2_000,
            chaos: None,
            slo: None,
            ops_port: None,
            out: PathBuf::from("results/server"),
            ticks: 0,
            train_frames: 24,
        }
    }
}

const USAGE: &str = "usage: gstm-server [options]
  --port=N           TCP port (default 7777)
  --tick-ms=N        tick cadence, ms (default 20)
  --players=N        player slots (default 64)
  --world-size=N     world edge length (default 256)
  --cell-size=N      cell edge length (default 64)
  --items=N          items spawned (default 128)
  --max-sessions=N   session cap (default 64)
  --budget-us=N      tick budget, microseconds (default 2000)
  --chaos=SEED[:PLAN] arm the socket fault plan (plan default: socket)
  --slo=SPEC         SLO spec for the ops watchdog
  --ops-port=N       serve /metrics /health on this port
  --out=DIR          artifact directory (default results/server)
  --ticks=N          stop after N ticks (default: run until SIGINT)
  --train-frames=N   self-play training frames (default 24; 0 skips)";

fn parse_num<T: std::str::FromStr>(key: &str, val: &str) -> Result<T, String> {
    val.parse().map_err(|_| format!("{key} wants a number, got {val:?}"))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    for arg in args {
        let (key, val) = match arg.split_once('=') {
            Some((k, v)) => (k, v),
            None => (arg.as_str(), ""),
        };
        match key {
            "--port" => o.port = parse_num(key, val)?,
            "--tick-ms" => o.tick_ms = parse_num(key, val)?,
            "--players" => o.players = parse_num(key, val)?,
            "--world-size" => o.world_size = parse_num(key, val)?,
            "--cell-size" => o.cell_size = parse_num(key, val)?,
            "--items" => o.items = parse_num(key, val)?,
            "--max-sessions" => o.max_sessions = parse_num(key, val)?,
            "--budget-us" => o.budget_us = parse_num(key, val)?,
            "--chaos" => o.chaos = Some(val.to_string()),
            "--slo" => o.slo = Some(val.to_string()),
            "--ops-port" => o.ops_port = Some(parse_num(key, val)?),
            "--out" => o.out = PathBuf::from(val),
            "--ticks" => o.ticks = parse_num(key, val)?,
            "--train-frames" => o.train_frames = parse_num(key, val)?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            _ => return Err(format!("unknown flag {key:?}\n{USAGE}")),
        }
    }
    if o.players == 0 || o.world_size == 0 || o.cell_size == 0 {
        return Err("--players/--world-size/--cell-size must be nonzero".into());
    }
    Ok(o)
}

/// Self-play training: record two training quests, build the TSA model.
/// `frames == 0` skips training and serves a trivial (empty-run) model,
/// which the breaker will gate on its own.
fn train_model(opts: &Options, guidance: &GuidanceConfig) -> Arc<GuidedModel> {
    let recorder = Arc::new(RecorderHook::new());
    let mut runs = Vec::new();
    if opts.train_frames > 0 {
        for quest in [QuestLayout::WorstCase4, QuestLayout::Moving4] {
            let tm = LibTm::with_hook(recorder.clone(), LibTmConfig::default());
            let cfg = GameConfig {
                threads: 2,
                players: opts.players.min(64),
                frames: opts.train_frames,
                quest,
                seed: 0x9a3e,
                ..GameConfig::default()
            };
            let _ = run_game(&tm, &cfg);
            runs.push(recorder.take_run());
        }
    }
    let tsa = Tsa::from_runs(&runs);
    Arc::new(GuidedModel::build(tsa, guidance))
}

fn run(opts: Options) -> Result<(), String> {
    if !signal::install() {
        eprintln!("[gstm-server] no signal handler on this target; Ctrl-C will not drain");
    }

    // ---- fault plan ----
    let faults = match opts.chaos.as_deref() {
        Some(spec) => {
            let spec = if spec.contains(':') { spec.to_string() } else { format!("{spec}:socket") };
            let plan = FaultPlan::parse_spec(&spec).map_err(|e| format!("bad --chaos: {e}"))?;
            Some(Arc::new(plan.with_log()))
        }
        None => None,
    };

    // ---- model + STM runtime ----
    let guidance = GuidanceConfig::default();
    eprintln!("[gstm-server] training guided model ({} frames/quest)...", opts.train_frames);
    let model = train_model(&opts, &guidance);
    let tel = Arc::new(Telemetry::new());
    let breaker = Arc::new(Breaker::new(BreakerConfig::default(), Some(tel.clone())));
    let hook = Arc::new(GuidedHook::with_robustness(
        model,
        guidance,
        Some(tel.clone()),
        None,
        Some(breaker.clone()),
        faults.clone(),
    ));
    let tm = LibTm::with_robustness(hook, LibTmConfig::default(), Some(tel.clone()), faults.clone());

    // ---- ops plane ----
    let spec = match opts.slo.as_deref() {
        Some(s) => SloSpec::parse(s).map_err(|e| format!("bad --slo: {e}"))?,
        None => SloSpec::default(),
    };
    let cadence = std::time::Duration::from_millis(spec.window_ms);
    let plane = Arc::new(OpsPlane::new(spec));
    plane.attach(&tel);
    let stats = Arc::new(ServerStats::new());
    plane.set_server_source(stats.clone());
    let ops_server = match opts.ops_port {
        Some(p) => {
            let s = ops::serve(Arc::clone(&plane), &format!("127.0.0.1:{p}"))
                .map_err(|e| format!("failed to bind --ops-port={p}: {e}"))?;
            eprintln!("[gstm-server] ops endpoint on http://{} (/metrics /health)", s.addr);
            Some(s)
        }
        None => None,
    };
    let roller = ops::start_roller(Arc::clone(&plane), cadence);

    // ---- engine + socket loop ----
    let ecfg = EngineConfig {
        world_size: opts.world_size,
        cell_size: opts.cell_size,
        players: opts.players,
        items: opts.items,
        seed: faults.as_ref().map(|f| f.seed()).unwrap_or(0x9a3e),
        admission: AdmissionConfig {
            tick_budget: opts.budget_us,
            max_sessions: opts.max_sessions,
            ..AdmissionConfig::default()
        },
        // Chaos runs use the synthetic tick clock so the ladder
        // trajectory is a pure function of (seed, traffic).
        deterministic: faults.is_some(),
        tick_budget_ns: opts.budget_us * 1_000,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(ecfg, tm, Some(breaker.clone()), faults.clone(), stats.clone());
    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| format!("failed to bind port {}: {e}", opts.port))?;
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or_default();
    eprintln!("[gstm-server] serving on {bound}");
    let ncfg = NetConfig { tick_ms: opts.tick_ms, max_ticks: opts.ticks, ..NetConfig::default() };
    let ticks = net::serve(&mut engine, listener, signal::stop_flag(), &ncfg, faults.clone())
        .map_err(|e| format!("socket loop failed: {e}"))?;

    // ---- drain + artifacts ----
    roller.stop();
    let audit = engine.world().audit();
    std::fs::create_dir_all(&opts.out)
        .map_err(|e| format!("cannot create {}: {e}", opts.out.display()))?;
    let ticks_path = opts.out.join("ticks.jsonl");
    let write_ticks = || -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&ticks_path)?);
        engine.write_ticks_jsonl(&mut f)?;
        f.flush()
    };
    write_ticks().map_err(|e| format!("cannot write {}: {e}", ticks_path.display()))?;
    let prom_path = opts.out.join("ops.prom");
    std::fs::write(&prom_path, plane.freeze())
        .map_err(|e| format!("cannot write {}: {e}", prom_path.display()))?;
    if let Some(f) = &faults {
        let log: Vec<String> = f
            .log()
            .iter()
            .map(|r| format!("{} slot={} n={} entropy={:#x}", r.site.name(), r.slot, r.n, r.entropy))
            .collect();
        let fp = opts.out.join("faults.log");
        std::fs::write(&fp, log.join("\n") + "\n")
            .map_err(|e| format!("cannot write {}: {e}", fp.display()))?;
        eprintln!("[gstm-server] {} fault(s) fired, log at {}", log.len(), fp.display());
    }
    if let Some(s) = ops_server {
        s.stop();
    }
    eprintln!(
        "[gstm-server] done: {ticks} tick(s), {} commit(s), rung {}, {} ladder move(s), \
         breaker {:?}, audit {}",
        engine.commits(),
        engine.rung().label(),
        engine.ladder_transitions().len(),
        breaker.state(),
        audit,
    );
    if audit != 0 {
        return Err(format!("world audit failed: {audit} inconsistent cell(s)"));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(opts) {
        eprintln!("[gstm-server] error: {e}");
        std::process::exit(1);
    }
}
