//! SIGINT/SIGTERM → graceful-shutdown flag, without a signal crate.
//!
//! The container build has no registry access, so this installs the
//! handler with a raw `rt_sigaction` syscall (same inline-asm idiom as
//! `gstm_core::placement`'s affinity syscalls). The kernel requires a
//! userspace restorer trampoline on x86-64; a two-instruction
//! `global_asm!` stub issuing `rt_sigreturn` serves. On other targets
//! installation fails open: [`install`] returns `false` and the server
//! runs without signal-driven drain (Ctrl-C then kills it the default
//! way), which is acceptable degradation for a diagnostics binary.

use std::sync::atomic::{AtomicBool, Ordering};

/// Flipped once by the first SIGINT/SIGTERM; the net loop polls it.
static STOP: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has arrived.
pub fn stop_requested() -> bool {
    STOP.load(Ordering::Relaxed)
}

/// The flag itself, for loops that poll a `&AtomicBool`.
pub fn stop_flag() -> &'static AtomicBool {
    &STOP
}

/// Request shutdown programmatically (tests, `--ticks` runs).
pub fn request_stop() {
    STOP.store(true, Ordering::Relaxed);
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use super::STOP;
    use std::arch::{asm, global_asm};
    use std::sync::atomic::Ordering;

    const SYS_RT_SIGACTION: u64 = 13;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SA_RESTORER: u64 = 0x0400_0000;
    const SA_RESTART: u64 = 0x1000_0000;

    // The kernel returns to this trampoline after the handler; it must
    // issue rt_sigreturn(nr 15) to restore the interrupted context.
    global_asm!(
        ".global gstm_server_sigreturn",
        "gstm_server_sigreturn:",
        "mov rax, 15",
        "syscall",
    );

    extern "C" {
        fn gstm_server_sigreturn();
    }

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::Relaxed);
    }

    /// Matches the kernel's struct sigaction layout on x86-64 (which is
    /// not libc's): handler, flags, restorer, mask.
    #[repr(C)]
    struct KernelSigaction {
        handler: usize,
        flags: u64,
        restorer: usize,
        mask: u64,
    }

    unsafe fn rt_sigaction(sig: i32, act: *const KernelSigaction) -> i64 {
        let ret: i64;
        asm!(
            "syscall",
            inlateout("rax") SYS_RT_SIGACTION as i64 => ret,
            in("rdi") sig as u64,
            in("rsi") act,
            in("rdx") 0u64,             // no old-action readback
            in("r10") 8u64,             // sigsetsize
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub fn install() -> bool {
        let act = KernelSigaction {
            handler: on_signal as extern "C" fn(i32) as usize,
            flags: SA_RESTORER | SA_RESTART,
            restorer: gstm_server_sigreturn as unsafe extern "C" fn() as usize,
            mask: 0,
        };
        // Both signals share the handler; either one starts the drain.
        let a = unsafe { rt_sigaction(SIGINT, &act) };
        let b = unsafe { rt_sigaction(SIGTERM, &act) };
        a == 0 && b == 0
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

/// Install the SIGINT/SIGTERM handler. Returns `false` where raw signal
/// installation is unsupported (non-x86-64-linux); callers keep running
/// without graceful drain in that case.
pub fn install() -> bool {
    imp::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stop_flips_the_flag() {
        // Note: STOP is process-global; this test only ever sets it.
        assert!(!stop_requested() || stop_requested());
        request_stop();
        assert!(stop_requested());
        assert!(stop_flag().load(std::sync::atomic::Ordering::Relaxed));
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn handler_installs_on_linux_x86_64() {
        assert!(install(), "rt_sigaction failed");
    }
}
