//! # gstm-stamp — Rust ports of the STAMP benchmark suite
//!
//! Transactional kernels of the seven STAMP applications the paper
//! evaluates (Stanford Transactional Applications for Multi-Processing,
//! Cao Minh et al., IISWC'08): *genome*, *intruder*, *kmeans*,
//! *labyrinth*, *ssca2*, *vacation*, and *yada*. (*bayes* is excluded —
//! the paper excludes it too, as it seg-faults in the original suite.)
//!
//! Each port reproduces the original's transactional structure — which
//! data is shared, which operations are atomic, how work is divided among
//! threads — on top of [`gstm_tl2`] and the containers in
//! [`gstm_structs`]. Inputs come from seeded generators reproducing the
//! documented input parameters at [`InputSize`] presets scaled for this
//! reproduction's single-host setting.
//!
//! Every benchmark implements [`Benchmark`]: the harness hands it a
//! pre-configured [`Stm`] (plain, recording, or guided — the benchmark
//! never knows) and receives per-thread timings and abort statistics back.
//!
//! ## Example
//!
//! ```
//! use gstm_stamp::{by_name, RunConfig, InputSize};
//! use gstm_tl2::{Stm, StmConfig};
//!
//! let kmeans = by_name("kmeans").unwrap();
//! let stm = Stm::new(StmConfig::default());
//! let cfg = RunConfig { threads: 2, size: InputSize::Small, seed: 42 };
//! let result = kmeans.run(&stm, &cfg);
//! assert_eq!(result.per_thread_secs.len(), 2);
//! assert!(result.merged_stats().commits > 0);
//! ```

pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod ssca2;
pub mod vacation;
pub mod yada;

use gstm_tl2::{Stm, ThreadStats};
use std::sync::Arc;
use std::time::Instant;

/// Input scale presets (the suite's `small`/`medium`/`large` flags),
/// calibrated so a run completes in fractions of a second on one core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InputSize {
    /// Quick test-sized input.
    Small,
    /// Profiling/measurement input (the paper trains on medium).
    Medium,
    /// Stress input.
    Large,
}

/// Parameters of one benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Worker thread count (the paper uses 8 and 16).
    pub threads: u16,
    /// Input scale.
    pub size: InputSize,
    /// Seed for the input generator. The *same* seed produces the same
    /// input, so run-to-run variation comes from scheduling alone — the
    /// paper's experimental setup.
    pub seed: u64,
}

impl RunConfig {
    /// A config with everything defaulted except the thread count.
    pub fn with_threads(threads: u16) -> Self {
        RunConfig {
            threads,
            size: InputSize::Small,
            seed: 0x5eed_cafe,
        }
    }
}

/// What a benchmark run produced.
#[derive(Clone, Debug, Default)]
pub struct BenchResult {
    /// Per-thread execution time of the thread function, in seconds —
    /// the quantity whose variance the paper minimizes.
    pub per_thread_secs: Vec<f64>,
    /// Per-thread STM statistics (commit/abort counts, abort histograms).
    pub per_thread_stats: Vec<ThreadStats>,
    /// Wall-clock time of the parallel region.
    pub wall_secs: f64,
    /// A workload-defined checksum for validating the computation.
    pub checksum: u64,
}

impl BenchResult {
    /// Aggregate statistics across all threads.
    pub fn merged_stats(&self) -> ThreadStats {
        let mut total = ThreadStats::new();
        for s in &self.per_thread_stats {
            total.merge(s);
        }
        total
    }
}

/// A STAMP application: deterministic input generation plus a transactional
/// parallel kernel.
pub trait Benchmark: Send + Sync {
    /// Lower-case benchmark name (`"kmeans"`, ...).
    fn name(&self) -> &'static str;
    /// How many static transaction sites the kernel contains (ids
    /// `0..num_txn_sites` are used in `TM_BEGIN(id)` fashion).
    fn num_txn_sites(&self) -> u16;
    /// Execute one run on the given STM instance.
    fn run(&self, stm: &Arc<Stm>, cfg: &RunConfig) -> BenchResult;
}

/// All seven benchmarks, in the paper's table order.
pub fn all_benchmarks() -> Vec<Arc<dyn Benchmark>> {
    vec![
        Arc::new(genome::Genome),
        Arc::new(intruder::Intruder),
        Arc::new(kmeans::KMeans),
        Arc::new(labyrinth::Labyrinth),
        Arc::new(ssca2::Ssca2),
        Arc::new(vacation::Vacation),
        Arc::new(yada::Yada),
    ]
}

/// Look a benchmark up by name.
pub fn by_name(name: &str) -> Option<Arc<dyn Benchmark>> {
    all_benchmarks().into_iter().find(|b| b.name() == name)
}

/// Shared worker-pool runner: spawns `cfg.threads` workers with stable
/// thread ids 0..n-1, times each worker's thread function, and collects
/// per-thread stats. `work` receives `(thread_index, ThreadCtx)` and
/// returns a checksum contribution.
pub(crate) fn run_workers(
    stm: &Arc<Stm>,
    cfg: &RunConfig,
    work: impl Fn(u16, &mut gstm_tl2::ThreadCtx) -> u64 + Send + Sync,
) -> BenchResult {
    use gstm_core::ThreadId;
    let n = cfg.threads.max(1);
    let work = &work;
    let start = Instant::now();
    let per_thread: Vec<(f64, ThreadStats, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let stm = Arc::clone(stm);
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    let t0 = Instant::now();
                    let checksum = work(t, &mut ctx);
                    let secs = t0.elapsed().as_secs_f64();
                    (secs, ctx.take_stats(), checksum)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let mut result = BenchResult {
        wall_secs,
        ..Default::default()
    };
    let mut checksum = 0u64;
    for (secs, stats, c) in per_thread {
        result.per_thread_secs.push(secs);
        result.per_thread_stats.push(stats);
        checksum = checksum.wrapping_add(c);
    }
    result.checksum = checksum;
    result
}

/// Deterministic 64-bit mix used by the input generators.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_seven_benchmarks_in_paper_order() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "genome",
                "intruder",
                "kmeans",
                "labyrinth",
                "ssca2",
                "vacation",
                "yada"
            ]
        );
    }

    #[test]
    fn by_name_resolves() {
        assert!(by_name("kmeans").is_some());
        assert!(by_name("bayes").is_none(), "bayes is excluded");
    }

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Low bits should differ for consecutive inputs.
        assert_ne!(mix64(1) & 0xff, mix64(2) & 0xff);
    }
}
