//! yada — Delaunay mesh refinement (STAMP `yada`).
//!
//! The original implements Ruppert's algorithm: threads pull *bad*
//! triangles from a shared work queue, transactionally build the
//! re-triangulation *cavity* around each (the triangle plus affected
//! neighbors), replace the cavity with fresh triangles, and enqueue any
//! new bad ones. Conflicts arise when two threads' cavities overlap.
//!
//! This port keeps the full transactional pattern — shared mesh map,
//! shared work queue, cavity = element + live neighbors, atomic
//! remove/replace/enqueue, shared element-id allocation — while replacing
//! the geometric bad-triangle predicate with a deterministic synthetic one
//! (elements carry a refinement `depth`; children are bad until a depth
//! bound). The paper's metrics concern transactional behaviour, which this
//! preserves; see DESIGN.md ("Substitutions").
//!
//! Txn sites: 0 = take work item, 1 = refine cavity (remove + insert +
//! enqueue children).

use crate::{mix64, run_workers, BenchResult, Benchmark, InputSize, RunConfig};
use gstm_core::TxnId;
use gstm_structs::{TMap, TQueue};
use gstm_tl2::{Stm, TVar};
use std::sync::Arc;

const TXN_TAKE: TxnId = TxnId(0);
const TXN_REFINE: TxnId = TxnId(1);

/// Refinement stops at this depth (guarantees termination).
const MAX_DEPTH: u32 = 3;

struct Params {
    initial_triangles: u64,
    initial_bad_pct: u64,
}

fn params(size: InputSize) -> Params {
    match size {
        InputSize::Small => Params {
            initial_triangles: 128,
            initial_bad_pct: 25,
        },
        InputSize::Medium => Params {
            initial_triangles: 512,
            initial_bad_pct: 25,
        },
        InputSize::Large => Params {
            initial_triangles: 2048,
            initial_bad_pct: 30,
        },
    }
}

/// A mesh element.
#[derive(Clone, Debug)]
struct Triangle {
    neighbors: Vec<u64>,
    depth: u32,
}

/// Is a (new) element bad, i.e. in need of further refinement?
fn is_bad(id: u64, depth: u32, seed: u64) -> bool {
    depth < MAX_DEPTH && mix64(seed ^ id).is_multiple_of(3)
}

/// The yada benchmark.
pub struct Yada;

impl Benchmark for Yada {
    fn name(&self) -> &'static str {
        "yada"
    }

    fn num_txn_sites(&self) -> u16 {
        2
    }

    fn run(&self, stm: &Arc<Stm>, cfg: &RunConfig) -> BenchResult {
        let p = params(cfg.size);
        let mesh: TMap<Triangle> = TMap::new();
        let work: TQueue<u64> = TQueue::new();
        let next_id = TVar::new(p.initial_triangles);
        // queued + popped-but-unfinished items; 0 means refinement is done.
        let pending = TVar::new(0i64);

        // Initial mesh: a ring of triangles, each neighboring its two ring
        // neighbors (the original reads a planar mesh from disk; a ring
        // gives every element the same connectivity degree).
        {
            let setup = Stm::new(gstm_tl2::StmConfig::default());
            let mut ctx = setup.register_as(gstm_core::ThreadId(u16::MAX));
            let n = p.initial_triangles;
            let mut initial_bad = Vec::new();
            for id in 0..n {
                let tri = Triangle {
                    neighbors: vec![(id + n - 1) % n, (id + 1) % n],
                    depth: 0,
                };
                ctx.atomically(TxnId(100), |tx| mesh.insert(tx, id, tri.clone()));
                if mix64(cfg.seed ^ id ^ 0xbad) % 100 < p.initial_bad_pct {
                    initial_bad.push(id);
                }
            }
            for &id in &initial_bad {
                ctx.atomically(TxnId(100), |tx| {
                    work.push(tx, id)?;
                    tx.modify(&pending, |x| x + 1)
                });
            }
        }

        let mut result = run_workers(stm, cfg, |_t, ctx| {
            let mut refined = 0u64;
            loop {
                let item = ctx.atomically(TXN_TAKE, |tx| work.pop(tx));
                let id = match item {
                    Some(id) => id,
                    None => {
                        if pending.load_quiesced() <= 0 {
                            break;
                        }
                        // Back off while stragglers refine: polling the
                        // queue with read-only transactions floods the
                        // transaction sequence (and the model) with
                        // meaningless solo-commit states.
                        for _ in 0..32 {
                            if pending.load_quiesced() <= 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        continue;
                    }
                };
                let did_refine = ctx.atomically(TXN_REFINE, |tx| {
                    let tri = match mesh.get(tx, id)? {
                        Some(t) => t,
                        None => {
                            // Swallowed by an earlier overlapping cavity.
                            tx.modify(&pending, |x| x - 1)?;
                            return Ok(false);
                        }
                    };
                    // Build the cavity: the element plus its live neighbors.
                    let mut cavity = vec![id];
                    for &nb in &tri.neighbors {
                        if mesh.contains(tx, nb)? {
                            cavity.push(nb);
                        }
                    }
                    for &cid in &cavity {
                        mesh.remove(tx, cid)?;
                    }
                    // Replace with cavity.len() + 1 fresh elements linked in
                    // a ring (refinement adds elements).
                    let k = cavity.len() as u64 + 1;
                    let base = tx.read(&next_id)?;
                    tx.write(&next_id, base + k)?;
                    let depth = tri.depth + 1;
                    let mut children_bad = 0i64;
                    for j in 0..k {
                        let nid = base + j;
                        let tri = Triangle {
                            neighbors: vec![base + (j + k - 1) % k, base + (j + 1) % k],
                            depth,
                        };
                        mesh.insert(tx, nid, tri)?;
                        if is_bad(nid, depth, cfg.seed) {
                            work.push(tx, nid)?;
                            children_bad += 1;
                        }
                    }
                    tx.modify(&pending, |x| x + children_bad - 1)?;
                    Ok(true)
                });
                if did_refine {
                    refined += 1;
                }
            }
            refined
        });

        // Fold validation into the checksum: refinement must fully drain.
        let drained = (pending.load_quiesced() == 0) as u64;
        result.checksum = result.checksum.wrapping_add(drained << 48);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_tl2::StmConfig;

    fn drained(r: &BenchResult) -> bool {
        (r.checksum >> 48) & 1 == 1
    }

    #[test]
    fn refinement_terminates_and_drains() {
        let stm = Stm::new(StmConfig::default());
        let cfg = RunConfig {
            threads: 2,
            size: InputSize::Small,
            seed: 17,
        };
        let r = Yada.run(&stm, &cfg);
        assert!(drained(&r), "work queue fully drained");
        let refined = r.checksum & 0xffff_ffff;
        assert!(refined > 0, "some triangles were refined");
    }

    #[test]
    fn concurrent_refinement_also_drains() {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let cfg = RunConfig {
            threads: 4,
            size: InputSize::Small,
            seed: 17,
        };
        let r = Yada.run(&stm, &cfg);
        assert!(drained(&r));
        // Cavities overlap under concurrency, so conflicts should occur
        // at least occasionally across the refine transactions.
        let stats = r.merged_stats();
        assert!(stats.commits > 0);
    }

    #[test]
    fn bad_predicate_is_deterministic_and_bounded() {
        assert_eq!(is_bad(5, 1, 9), is_bad(5, 1, 9));
        assert!(!is_bad(5, MAX_DEPTH, 9), "depth bound forces termination");
    }
}
