//! genome — gene sequencing by segment assembly (STAMP `genome`).
//!
//! The original reconstructs a gene from overlapping nucleotide segments
//! in three phases: (1) deduplicate segments into a hash set, (2) match
//! overlapping segment ends and link matches, (3) walk the links to emit
//! the sequence. Phases 1 and 2 are parallel and transactional; threads
//! synchronize on barriers between phases.
//!
//! This port keeps that exact structure: txn 0 deduplicates, txn 1 builds
//! the prefix table, txn 2 claims and links matches, and phase 3 walks
//! the links sequentially to rebuild the gene (run() verifies the
//! reconstruction byte-for-byte and folds the outcome into the
//! checksum). The gene is drawn over the `{a,c,g,t}` alphabet with a
//! 24-base overlap, long enough that accidental window collisions are
//! negligible at these input sizes.

use crate::{mix64, run_workers, BenchResult, Benchmark, InputSize, RunConfig};
use gstm_core::TxnId;
use gstm_structs::{THashMap, TMap};
use gstm_tl2::Stm;
use std::sync::{Arc, Barrier, OnceLock};

const TXN_DEDUP: TxnId = TxnId(0);
const TXN_PREFIX_TABLE: TxnId = TxnId(1);
const TXN_LINK: TxnId = TxnId(2);

/// Segment length in bases.
const SEG_LEN: usize = 32;
/// Segments start every `STEP` bases, so consecutive segments overlap by
/// `SEG_LEN - STEP` = 24 bases.
const STEP: usize = 8;
const OVERLAP: usize = SEG_LEN - STEP;

struct Params {
    gene_len: usize,
    /// Each segment is duplicated this many times before shuffling
    /// (sequencers oversample; dedup is phase 1's whole job).
    duplication: usize,
}

fn params(size: InputSize) -> Params {
    match size {
        InputSize::Small => Params {
            gene_len: 1 << 11,
            duplication: 2,
        },
        InputSize::Medium => Params {
            gene_len: 1 << 13,
            duplication: 3,
        },
        InputSize::Large => Params {
            gene_len: 1 << 15,
            duplication: 4,
        },
    }
}

fn gen_gene(len: usize, seed: u64) -> Vec<u8> {
    const BASES: [u8; 4] = *b"acgt";
    (0..len)
        .map(|i| BASES[(mix64(seed ^ i as u64) % 4) as usize])
        .collect()
}

/// Cut the gene into duplicated, deterministically shuffled segments.
fn gen_segments(gene: &[u8], dup: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut segs = Vec::new();
    let mut start = 0;
    while start + SEG_LEN <= gene.len() {
        for _ in 0..dup {
            segs.push(gene[start..start + SEG_LEN].to_vec());
        }
        start += STEP;
    }
    // Fisher-Yates with a deterministic stream.
    for i in (1..segs.len()).rev() {
        let j = (mix64(seed ^ i as u64) % (i as u64 + 1)) as usize;
        segs.swap(i, j);
    }
    segs
}

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Avoid pathological zero keys.
    mix64(h) | 1
}

/// The genome benchmark.
pub struct Genome;

impl Benchmark for Genome {
    fn name(&self) -> &'static str {
        "genome"
    }

    fn num_txn_sites(&self) -> u16 {
        3
    }

    fn run(&self, stm: &Arc<Stm>, cfg: &RunConfig) -> BenchResult {
        let p = params(cfg.size);
        let gene = gen_gene(p.gene_len, cfg.seed);
        let segments = Arc::new(gen_segments(&gene, p.duplication, cfg.seed));
        let n_threads = cfg.threads.max(1) as usize;

        // Phase-1 output: unique segments keyed by content hash.
        let unique: THashMap<Vec<u8>> = THashMap::new(256);
        // Phase-2a output: prefix-of-OVERLAP hash -> segment content hash.
        let prefixes: THashMap<u64> = THashMap::new(256);
        // Phase-2b output: links (successor content hash claimed by
        // predecessor content hash).
        let links: TMap<u64> = TMap::new();

        /// Keyed unique segments, published by thread 0 between phases.
        type UniqueSnapshot = Vec<(u64, Vec<u8>)>;
        let barrier = Arc::new(Barrier::new(n_threads));
        let unique_snapshot: Arc<OnceLock<UniqueSnapshot>> = Arc::new(OnceLock::new());

        let mut result = run_workers(stm, cfg, |t, ctx| {
            // ---- Phase 1: deduplicate segments ----
            let chunk = segments.len().div_ceil(n_threads);
            let lo = (t as usize * chunk).min(segments.len());
            let hi = ((t as usize + 1) * chunk).min(segments.len());
            let mut inserted = 0u64;
            for seg in &segments[lo..hi] {
                let key = hash_bytes(seg);
                let fresh =
                    ctx.atomically(TXN_DEDUP, |tx| unique.insert(tx, key, seg.clone()));
                if fresh {
                    inserted += 1;
                }
            }
            barrier.wait();
            // Thread 0 snapshots the unique set for the next phases.
            if t == 0 {
                let snap = ctx.atomically(TXN_DEDUP, |tx| unique.snapshot(tx));
                let _ = unique_snapshot.set(snap);
            }
            barrier.wait();
            let uniq = unique_snapshot.get().expect("snapshot published");

            // ---- Phase 2a: publish prefix table ----
            let chunk = uniq.len().div_ceil(n_threads);
            let lo = (t as usize * chunk).min(uniq.len());
            let hi = ((t as usize + 1) * chunk).min(uniq.len());
            for (key, seg) in &uniq[lo..hi] {
                let pre = hash_bytes(&seg[..OVERLAP]);
                let (key, pre) = (*key, pre);
                ctx.atomically(TXN_PREFIX_TABLE, |tx| prefixes.insert(tx, pre, key));
            }
            barrier.wait();

            // ---- Phase 2b: match suffixes to prefixes and claim links ----
            let mut linked = 0u64;
            for (key, seg) in &uniq[lo..hi] {
                let suf = hash_bytes(&seg[SEG_LEN - OVERLAP..]);
                let (key, suf) = (*key, suf);
                let claimed = ctx.atomically(TXN_LINK, |tx| {
                    match prefixes.get(tx, suf)? {
                        // A segment may not follow itself, and each
                        // successor may be claimed exactly once.
                        Some(succ) if succ != key => Ok(links.insert(tx, succ, key)?),
                        _ => Ok(false),
                    }
                });
                if claimed {
                    linked += 1;
                }
            }
            inserted.wrapping_mul(1_000_000).wrapping_add(linked)
        });

        // ---- Phase 3: sequence construction (sequential, like the
        // original's final phase) + validation term: every unique segment
        // except the chain head found a predecessor, and walking the
        // links reproduces the gene byte-for-byte.
        let stm2 = Stm::new(gstm_tl2::StmConfig::default());
        let mut vctx = stm2.register_as(gstm_core::ThreadId(u16::MAX));
        let n_unique = vctx.atomically(TxnId(10), |tx| unique.len(tx));
        let n_links = vctx.atomically(TxnId(10), |tx| links.len(tx));
        let reconstructed = reconstruct(&mut vctx, &unique, &links);
        let intact = (reconstructed.as_deref() == Some(&gene[..])) as u64;
        result.checksum = n_unique
            .wrapping_mul(1_000_000)
            .wrapping_add(n_links)
            .wrapping_add(intact << 62);
        result
    }
}

/// Walk the claimed links from the chain head and rebuild the gene.
/// Returns `None` if the chain is broken or ambiguous.
fn reconstruct(
    ctx: &mut gstm_tl2::ThreadCtx,
    unique: &THashMap<Vec<u8>>,
    links: &TMap<u64>,
) -> Option<Vec<u8>> {
    let (segments, link_pairs) = ctx.atomically(TxnId(11), |tx| {
        Ok((unique.snapshot(tx)?, links.snapshot(tx)?))
    });
    let by_key: std::collections::HashMap<u64, &Vec<u8>> =
        segments.iter().map(|(k, s)| (*k, s)).collect();
    // links maps successor -> predecessor; invert it.
    let succ_of: std::collections::HashMap<u64, u64> =
        link_pairs.iter().map(|&(succ, pred)| (pred, succ)).collect();
    let has_pred: std::collections::HashSet<u64> =
        link_pairs.iter().map(|&(succ, _)| succ).collect();
    // The head is the unique segment nobody claimed as a successor.
    let mut heads = segments.iter().filter(|(k, _)| !has_pred.contains(k));
    let (head, _) = heads.next()?;
    if heads.next().is_some() {
        return None; // broken chain: more than one head
    }
    let mut seq: Vec<u8> = by_key.get(head)?.to_vec();
    let mut cur = *head;
    while let Some(&next) = succ_of.get(&cur) {
        let seg = by_key.get(&next)?;
        // Consecutive segments overlap by OVERLAP bases; append the rest.
        seq.extend_from_slice(&seg[OVERLAP..]);
        cur = next;
    }
    Some(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_tl2::StmConfig;

    #[test]
    fn generator_is_deterministic() {
        let g1 = gen_gene(512, 5);
        let g2 = gen_gene(512, 5);
        assert_eq!(g1, g2);
        assert!(g1.iter().all(|b| b"acgt".contains(b)));
        let s1 = gen_segments(&g1, 2, 5);
        assert_eq!(s1, gen_segments(&g2, 2, 5));
        // Duplication doubles the segment count.
        let expected = ((512 - SEG_LEN) / STEP + 1) * 2;
        assert_eq!(s1.len(), expected);
    }

    #[test]
    fn reconstruction_reproduces_the_gene() {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let cfg = RunConfig {
            threads: 4,
            size: InputSize::Small,
            seed: 99,
        };
        let r = Genome.run(&stm, &cfg);
        assert_eq!(
            r.checksum >> 62,
            1,
            "phase 3 must rebuild the gene byte-for-byte"
        );
    }

    #[test]
    fn assembly_links_nearly_all_unique_segments() {
        let stm = Stm::new(StmConfig::default());
        let cfg = RunConfig {
            threads: 2,
            size: InputSize::Small,
            seed: 99,
        };
        let r = Genome.run(&stm, &cfg);
        let body = r.checksum & ((1u64 << 62) - 1);
        let n_unique = body / 1_000_000;
        let n_links = body % 1_000_000;
        let p = params(InputSize::Small);
        let n_positions = (p.gene_len - SEG_LEN) / STEP + 1;
        assert_eq!(n_unique, n_positions as u64, "dedup found every position");
        // Every segment has a unique successor except the last one.
        assert_eq!(n_links, n_unique - 1, "chain fully linked");
    }

    #[test]
    fn concurrent_assembly_matches_sequential() {
        let cfg = |threads| RunConfig {
            threads,
            size: InputSize::Small,
            seed: 7,
        };
        let seq = Genome.run(&Stm::new(StmConfig::default()), &cfg(1));
        let par = Genome.run(
            &Stm::new(StmConfig::with_yield_injection(2)),
            &cfg(4),
        );
        assert_eq!(seq.checksum, par.checksum, "assembly is schedule-invariant");
    }
}
