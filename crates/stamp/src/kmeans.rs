//! kmeans — iterative K-means clustering (STAMP `kmeans`).
//!
//! Threads partition the points; for each point they find the nearest
//! center (pure computation over the previous iteration's centers) and
//! then transactionally accumulate the point into the new center sums
//! (txn site 0). At the end of each pass one thread folds the global
//! membership-delta counter (txn site 1). The paper notes kmeans varied by
//! as much as 8 seconds across runs in the original suite.

use crate::{mix64, run_workers, BenchResult, Benchmark, InputSize, RunConfig};
use gstm_core::TxnId;
use gstm_tl2::{Stm, TVar};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Txn site: accumulate a point into its cluster's new-center sums.
const TXN_ACCUMULATE: TxnId = TxnId(0);
/// Txn site: fold a thread's membership delta into the global counter.
const TXN_DELTA: TxnId = TxnId(1);

struct Params {
    points: usize,
    dims: usize,
    clusters: usize,
    iterations: usize,
}

fn params(size: InputSize) -> Params {
    match size {
        InputSize::Small => Params {
            points: 512,
            dims: 4,
            clusters: 8,
            iterations: 3,
        },
        InputSize::Medium => Params {
            points: 2048,
            dims: 8,
            clusters: 12,
            iterations: 4,
        },
        InputSize::Large => Params {
            points: 8192,
            dims: 16,
            clusters: 16,
            iterations: 6,
        },
    }
}

fn gen_points(p: &Params, seed: u64) -> Vec<Vec<f64>> {
    (0..p.points)
        .map(|i| {
            (0..p.dims)
                .map(|d| {
                    let r = mix64(seed ^ ((i as u64) << 20) ^ d as u64);
                    // Clustered around `clusters` loci so assignments are
                    // non-trivial.
                    let locus = (r % p.clusters as u64) as f64 * 10.0;
                    locus + (mix64(r) % 1000) as f64 / 250.0
                })
                .collect()
        })
        .collect()
}

/// Shared accumulator for one cluster: component sums plus member count.
#[derive(Clone, Debug)]
struct ClusterAcc {
    sums: Vec<f64>,
    count: u64,
}

/// The kmeans benchmark.
pub struct KMeans;

impl Benchmark for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn num_txn_sites(&self) -> u16 {
        2
    }

    fn run(&self, stm: &Arc<Stm>, cfg: &RunConfig) -> BenchResult {
        let p = params(cfg.size);
        let points = Arc::new(gen_points(&p, cfg.seed));
        // Initial centers: first `clusters` points.
        let mut centers: Vec<Vec<f64>> = points[..p.clusters].to_vec();
        let mut result = BenchResult::default();
        let mut checksum = 0u64;

        // Assignments from the previous pass, for delta counting.
        let assignments: Arc<Vec<AtomicUsize>> =
            Arc::new((0..p.points).map(|_| AtomicUsize::new(usize::MAX)).collect());

        for _iter in 0..p.iterations {
            let accs: Arc<Vec<TVar<ClusterAcc>>> = Arc::new(
                (0..p.clusters)
                    .map(|_| {
                        TVar::new(ClusterAcc {
                            sums: vec![0.0; p.dims],
                            count: 0,
                        })
                    })
                    .collect(),
            );
            let delta = TVar::new(0u64);
            let centers_ro = Arc::new(centers.clone());

            let pass = run_workers(stm, cfg, |t, ctx| {
                let n_threads = cfg.threads.max(1) as usize;
                let chunk = p.points.div_ceil(n_threads);
                let lo = (t as usize * chunk).min(p.points);
                let hi = ((t as usize + 1) * chunk).min(p.points);
                let mut my_delta = 0u64;
                for i in lo..hi {
                    let pt = &points[i];
                    // Nearest center: pure computation, outside any txn.
                    let mut best = 0usize;
                    let mut best_d = f64::INFINITY;
                    for (c, center) in centers_ro.iter().enumerate() {
                        let d: f64 = center
                            .iter()
                            .zip(pt)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    if assignments[i].swap(best, Ordering::Relaxed) != best {
                        my_delta += 1;
                    }
                    // Transactionally fold the point into its cluster.
                    let acc = &accs[best];
                    ctx.atomically(TXN_ACCUMULATE, |tx| {
                        let mut a = tx.read(acc)?;
                        for (s, x) in a.sums.iter_mut().zip(pt) {
                            *s += x;
                        }
                        a.count += 1;
                        tx.write(acc, a)
                    });
                }
                ctx.atomically(TXN_DELTA, |tx| tx.modify(&delta, |d| d + my_delta));
                my_delta
            });

            // Recompute centers from the accumulators (sequential, like the
            // original's master phase between passes).
            for (c, acc) in accs.iter().enumerate() {
                let a = acc.load_quiesced();
                if a.count > 0 {
                    centers[c] = a.sums.iter().map(|s| s / a.count as f64).collect();
                }
            }
            checksum = checksum
                .wrapping_add(delta.load_quiesced())
                .wrapping_add(accs.iter().map(|a| a.load_quiesced().count).sum::<u64>());

            // Accumulate timings/stats across passes.
            if result.per_thread_secs.is_empty() {
                result = pass;
            } else {
                for (acc, s) in result.per_thread_secs.iter_mut().zip(&pass.per_thread_secs) {
                    *acc += s;
                }
                for (acc, s) in result
                    .per_thread_stats
                    .iter_mut()
                    .zip(&pass.per_thread_stats)
                {
                    acc.merge(s);
                }
                result.wall_secs += pass.wall_secs;
            }
        }
        result.checksum = checksum;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_tl2::StmConfig;

    #[test]
    fn all_points_are_accumulated_each_pass() {
        let stm = Stm::new(StmConfig::default());
        let cfg = RunConfig {
            threads: 2,
            size: InputSize::Small,
            seed: 42,
        };
        let r = KMeans.run(&stm, &cfg);
        let p = params(InputSize::Small);
        // Each pass accumulates every point exactly once; the checksum
        // includes `points` per iteration plus the (input-dependent) deltas.
        let min_expected = (p.points * p.iterations) as u64;
        assert!(r.checksum >= min_expected, "checksum {}", r.checksum);
        assert_eq!(r.per_thread_secs.len(), 2);
        let commits: u64 = r.merged_stats().commits;
        // points + 1 delta-txn per thread, per iteration.
        assert_eq!(
            commits,
            (p.points + cfg.threads as usize) as u64 * p.iterations as u64
        );
    }

    #[test]
    fn deterministic_input_given_same_seed() {
        let p = params(InputSize::Small);
        assert_eq!(gen_points(&p, 7), gen_points(&p, 7));
        assert_ne!(gen_points(&p, 7), gen_points(&p, 8));
    }

    #[test]
    fn single_thread_run_works() {
        let stm = Stm::new(StmConfig::default());
        let cfg = RunConfig {
            threads: 1,
            size: InputSize::Small,
            seed: 1,
        };
        let r = KMeans.run(&stm, &cfg);
        assert_eq!(r.per_thread_secs.len(), 1);
        assert_eq!(r.merged_stats().aborts, 0, "no conflicts single-threaded");
    }
}
