//! labyrinth — parallel maze routing (STAMP `labyrinth`).
//!
//! Lee's algorithm on a 3-D grid: threads take `(source, destination)`
//! work items off a shared queue and route each one in a single *long*
//! transaction — a breadth-first expansion reading a large region of the
//! grid, then a backtrack writing the chosen path's cells. Two routes
//! crossing the same cells conflict, and the loser replans. Labyrinth is
//! STAMP's long-transaction/large-footprint extreme.
//!
//! Txn sites: 0 = take a work item, 1 = route (expand + write path).

use crate::{mix64, run_workers, BenchResult, Benchmark, InputSize, RunConfig};
use gstm_core::TxnId;
use gstm_structs::TQueue;
use gstm_tl2::{Stm, TVar, TxResult, Txn};
use std::collections::VecDeque;
use std::sync::Arc;

const TXN_TAKE: TxnId = TxnId(0);
const TXN_ROUTE: TxnId = TxnId(1);

/// A 3-D grid coordinate.
type Point = (usize, usize, usize);
/// A routing work item: `(path id, source, destination)`.
type Route = (u32, Point, Point);

struct Params {
    width: usize,
    height: usize,
    depth: usize,
    routes: usize,
}

fn params(size: InputSize) -> Params {
    match size {
        InputSize::Small => Params {
            width: 16,
            height: 16,
            depth: 2,
            routes: 12,
        },
        InputSize::Medium => Params {
            width: 32,
            height: 32,
            depth: 2,
            routes: 24,
        },
        InputSize::Large => Params {
            width: 48,
            height: 48,
            depth: 3,
            routes: 48,
        },
    }
}

/// The routing grid: one transactional cell per coordinate. 0 = free,
/// otherwise the id (1-based) of the path occupying the cell.
pub(crate) struct Grid {
    cells: Vec<TVar<u32>>,
    w: usize,
    h: usize,
    d: usize,
}

impl Grid {
    fn new(w: usize, h: usize, d: usize) -> Self {
        Grid {
            cells: (0..w * h * d).map(|_| TVar::new(0)).collect(),
            w,
            h,
            d,
        }
    }

    #[inline]
    fn idx(&self, (x, y, z): (usize, usize, usize)) -> usize {
        (z * self.h + y) * self.w + x
    }

    fn neighbors(&self, (x, y, z): (usize, usize, usize)) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::with_capacity(6);
        if x > 0 {
            out.push((x - 1, y, z));
        }
        if x + 1 < self.w {
            out.push((x + 1, y, z));
        }
        if y > 0 {
            out.push((x, y - 1, z));
        }
        if y + 1 < self.h {
            out.push((x, y + 1, z));
        }
        if z > 0 {
            out.push((x, y, z - 1));
        }
        if z + 1 < self.d {
            out.push((x, y, z + 1));
        }
        out
    }

    /// Transactional BFS from `src` to `dst` over free cells, then write
    /// the backtracked path with `path_id`. Returns the path length, or
    /// `None` if unroutable in the current grid state.
    fn route(
        &self,
        tx: &mut Txn,
        src: (usize, usize, usize),
        dst: (usize, usize, usize),
        path_id: u32,
    ) -> TxResult<Option<u32>> {
        let n = self.cells.len();
        let mut parent: Vec<usize> = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        let si = self.idx(src);
        let di = self.idx(dst);
        // Endpoints must be free (they are grid-edge pads in the original;
        // here any occupied endpoint makes the route unroutable).
        if tx.read(&self.cells[si])? != 0 || tx.read(&self.cells[di])? != 0 {
            return Ok(None);
        }
        parent[si] = si;
        queue.push_back(src);
        let mut found = false;
        'bfs: while let Some(pos) = queue.pop_front() {
            for nb in self.neighbors(pos) {
                let ni = self.idx(nb);
                if parent[ni] != usize::MAX {
                    continue;
                }
                if tx.read(&self.cells[ni])? != 0 {
                    continue;
                }
                parent[ni] = self.idx(pos);
                if ni == di {
                    found = true;
                    break 'bfs;
                }
                queue.push_back(nb);
            }
        }
        if !found {
            return Ok(None);
        }
        // Backtrack and claim the path cells.
        let mut len = 0u32;
        let mut cur = di;
        loop {
            tx.write(&self.cells[cur], path_id)?;
            len += 1;
            if cur == si {
                break;
            }
            cur = parent[cur];
        }
        Ok(Some(len))
    }
}

/// Generate distinct endpoint pairs on the grid boundary.
fn gen_routes(p: &Params, seed: u64) -> Vec<(Point, Point)> {
    let mut out = Vec::new();
    let mut used = std::collections::HashSet::new();
    let mut r = seed;
    while out.len() < p.routes {
        r = mix64(r);
        let x0 = (r % p.width as u64) as usize;
        let y0 = ((r >> 16) % p.height as u64) as usize;
        let x1 = ((r >> 24) % p.width as u64) as usize;
        let y1 = ((r >> 32) % p.height as u64) as usize;
        let z0 = ((r >> 40) % p.depth as u64) as usize;
        let z1 = ((r >> 48) % p.depth as u64) as usize;
        let (a, b) = ((x0, y0, z0), (x1, y1, z1));
        if a == b || !used.insert(a) || !used.insert(b) {
            continue;
        }
        out.push((a, b));
    }
    out
}

/// The labyrinth benchmark.
pub struct Labyrinth;

impl Benchmark for Labyrinth {
    fn name(&self) -> &'static str {
        "labyrinth"
    }

    fn num_txn_sites(&self) -> u16 {
        2
    }

    fn run(&self, stm: &Arc<Stm>, cfg: &RunConfig) -> BenchResult {
        let p = params(cfg.size);
        let grid = Arc::new(Grid::new(p.width, p.height, p.depth));
        let routes = gen_routes(&p, cfg.seed);
        let work: TQueue<Route> = TQueue::new();
        {
            let setup = Stm::new(gstm_tl2::StmConfig::default());
            let mut ctx = setup.register_as(gstm_core::ThreadId(u16::MAX));
            for (i, &(a, b)) in routes.iter().enumerate() {
                ctx.atomically(TxnId(100), |tx| work.push(tx, (i as u32 + 1, a, b)));
            }
        }

        let mut result = run_workers(stm, cfg, |_t, ctx| {
            let mut routed = 0u64;
            let mut total_len = 0u64;
            loop {
                let item = ctx.atomically(TXN_TAKE, |tx| work.pop(tx));
                let (id, src, dst) = match item {
                    Some(x) => x,
                    None => break,
                };
                let len = ctx.atomically(TXN_ROUTE, |tx| grid.route(tx, src, dst, id));
                if let Some(len) = len {
                    routed += 1;
                    total_len += len as u64;
                }
            }
            routed.wrapping_mul(1_000_000).wrapping_add(total_len)
        });

        // Audit the final grid: count claimed cells; fold into checksum.
        let claimed: u64 = grid
            .cells
            .iter()
            .filter(|c| c.load_quiesced() != 0)
            .count() as u64;
        result.checksum = result.checksum.wrapping_add(claimed << 32);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_tl2::StmConfig;

    fn claimed_cells_by_path(grid: &Grid) -> std::collections::HashMap<u32, Vec<usize>> {
        let mut by_path: std::collections::HashMap<u32, Vec<usize>> = Default::default();
        for (i, c) in grid.cells.iter().enumerate() {
            let v = c.load_quiesced();
            if v != 0 {
                by_path.entry(v).or_default().push(i);
            }
        }
        by_path
    }

    #[test]
    fn single_route_on_empty_grid_is_manhattan_or_better() {
        let grid = Grid::new(8, 8, 1);
        let stm = Stm::new(StmConfig::default());
        let mut ctx = stm.register();
        let len = ctx.atomically(TxnId(1), |tx| grid.route(tx, (0, 0, 0), (3, 4, 0), 1));
        // Shortest path length = manhattan distance + 1 cells.
        assert_eq!(len, Some(8));
        let by_path = claimed_cells_by_path(&grid);
        assert_eq!(by_path[&1].len(), 8);
    }

    #[test]
    fn blocked_route_returns_none() {
        let grid = Grid::new(3, 1, 1);
        let stm = Stm::new(StmConfig::default());
        let mut ctx = stm.register();
        // Occupy the middle cell; 0 -> 2 becomes unroutable.
        ctx.atomically(TxnId(1), |tx| tx.write(&grid.cells[1], 99));
        let len = ctx.atomically(TxnId(1), |tx| grid.route(tx, (0, 0, 0), (2, 0, 0), 1));
        assert_eq!(len, None);
    }

    #[test]
    fn concurrent_routes_never_share_cells() {
        let stm = Stm::new(StmConfig::with_yield_injection(3));
        let cfg = RunConfig {
            threads: 4,
            size: InputSize::Small,
            seed: 5,
        };
        let p = params(InputSize::Small);
        let grid = Arc::new(Grid::new(p.width, p.height, p.depth));
        let routes = gen_routes(&p, cfg.seed);
        let work: TQueue<Route> = TQueue::new();
        {
            let setup = Stm::new(StmConfig::default());
            let mut ctx = setup.register_as(gstm_core::ThreadId(u16::MAX));
            for (i, &(a, b)) in routes.iter().enumerate() {
                ctx.atomically(TxnId(100), |tx| work.push(tx, (i as u32 + 1, a, b)));
            }
        }
        let grid2 = Arc::clone(&grid);
        crate::run_workers(&stm, &cfg, |_t, ctx| {
            loop {
                let item = ctx.atomically(TXN_TAKE, |tx| work.pop(tx));
                let (id, src, dst) = match item {
                    Some(x) => x,
                    None => break,
                };
                ctx.atomically(TXN_ROUTE, |tx| grid2.route(tx, src, dst, id));
            }
            0
        });
        // Each claimed cell belongs to exactly one path by construction
        // (cells store one id); check per-path contiguity instead.
        let by_path = claimed_cells_by_path(&grid);
        for (id, cells) in by_path {
            let set: std::collections::HashSet<usize> = cells.iter().copied().collect();
            // Every path must be a connected chain: each cell has 1-2
            // neighbors within its own path.
            for &i in &cells {
                let z = i / (p.width * p.height);
                let y = (i / p.width) % p.height;
                let x = i % p.width;
                let n = grid
                    .neighbors((x, y, z))
                    .into_iter()
                    .filter(|&nb| set.contains(&grid.idx(nb)))
                    .count();
                assert!(
                    (1..=2).contains(&n) || cells.len() == 1,
                    "path {id} broken at cell {i} ({n} own-neighbors)"
                );
            }
        }
    }

    #[test]
    fn full_benchmark_routes_most_paths() {
        let stm = Stm::new(StmConfig::default());
        let cfg = RunConfig {
            threads: 2,
            size: InputSize::Small,
            seed: 5,
        };
        let r = Labyrinth.run(&stm, &cfg);
        let routed = (r.checksum & 0xffff_ffff) / 1_000_000;
        let p = params(InputSize::Small);
        assert!(
            routed as usize >= p.routes / 2,
            "routed only {routed}/{}",
            p.routes
        );
    }
}
