//! ssca2 — Scalable Synthetic Compact Applications graph kernel (STAMP
//! `ssca2`, kernel 1: graph construction).
//!
//! Threads partition a large synthetic edge list and transactionally
//! append each edge into the adjacency list of its source node (txn site
//! 0). With many more nodes than threads, two threads almost never touch
//! the same node at once — the benchmark is famously low-contention, with
//! "innately nearly zero aborts" (paper, Section VII), tiny equally likely
//! states, and therefore *no headroom for guidance*: the analyzer must
//! reject its model (Table I) and guided execution only adds overhead
//! (Figure 8).

use crate::{mix64, run_workers, BenchResult, Benchmark, InputSize, RunConfig};
use gstm_core::TxnId;
use gstm_tl2::{Stm, TVar};
use std::sync::Arc;

/// Txn site: append one edge to a node's adjacency list.
const TXN_ADD_EDGE: TxnId = TxnId(0);

struct Params {
    nodes: usize,
    edges: usize,
}

fn params(size: InputSize) -> Params {
    match size {
        InputSize::Small => Params {
            nodes: 256,
            edges: 2048,
        },
        InputSize::Medium => Params {
            nodes: 1024,
            edges: 8192,
        },
        InputSize::Large => Params {
            nodes: 4096,
            edges: 32768,
        },
    }
}

/// The ssca2 benchmark.
pub struct Ssca2;

impl Benchmark for Ssca2 {
    fn name(&self) -> &'static str {
        "ssca2"
    }

    fn num_txn_sites(&self) -> u16 {
        1
    }

    fn run(&self, stm: &Arc<Stm>, cfg: &RunConfig) -> BenchResult {
        let p = params(cfg.size);
        // Synthetic edge list: (u, v, weight) with uniformly random endpoints.
        let edges: Arc<Vec<(usize, usize, u32)>> = Arc::new(
            (0..p.edges)
                .map(|i| {
                    let r = mix64(cfg.seed ^ (i as u64));
                    let u = (r % p.nodes as u64) as usize;
                    let v = (mix64(r) % p.nodes as u64) as usize;
                    let w = (mix64(r >> 7) % 100) as u32 + 1;
                    (u, v, w)
                })
                .collect(),
        );
        #[allow(clippy::type_complexity)]
        let adjacency: Arc<Vec<TVar<Vec<(usize, u32)>>>> =
            Arc::new((0..p.nodes).map(|_| TVar::new(Vec::new())).collect());

        let mut result = run_workers(stm, cfg, |t, ctx| {
            let n_threads = cfg.threads.max(1) as usize;
            let chunk = p.edges.div_ceil(n_threads);
            let lo = (t as usize * chunk).min(p.edges);
            let hi = ((t as usize + 1) * chunk).min(p.edges);
            let mut local = 0u64;
            for &(u, v, w) in &edges[lo..hi] {
                let adj = &adjacency[u];
                ctx.atomically(TXN_ADD_EDGE, |tx| {
                    let mut list = tx.read(adj)?;
                    list.push((v, w));
                    tx.write(adj, list)
                });
                local = local.wrapping_add(w as u64);
            }
            local
        });

        // Validate: total degree equals edge count.
        let total_degree: usize = adjacency
            .iter()
            .map(|a| a.load_quiesced().len())
            .sum();
        result.checksum = result
            .checksum
            .wrapping_add(total_degree as u64)
            .wrapping_sub(p.edges as u64)
            .wrapping_add(1);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_tl2::StmConfig;

    #[test]
    fn every_edge_lands_exactly_once() {
        let stm = Stm::new(StmConfig::default());
        let cfg = RunConfig {
            threads: 4,
            size: InputSize::Small,
            seed: 3,
        };
        let r = Ssca2.run(&stm, &cfg);
        // checksum folds in (total_degree - edges + 1): if all edges
        // landed once, that term is exactly 1 plus the weight sums.
        let p = params(InputSize::Small);
        assert_eq!(r.merged_stats().commits, p.edges as u64);
        assert!(r.checksum > 0);
    }

    #[test]
    fn contention_is_low() {
        let stm = Stm::new(StmConfig::with_yield_injection(3));
        let cfg = RunConfig {
            threads: 8,
            size: InputSize::Small,
            seed: 3,
        };
        let r = Ssca2.run(&stm, &cfg);
        let stats = r.merged_stats();
        // Uniformly random nodes >> threads: abort rate should be tiny
        // (the property the paper's ssca2 analysis rests on).
        assert!(
            (stats.aborts as f64) < 0.10 * stats.commits as f64,
            "aborts {} vs commits {}",
            stats.aborts,
            stats.commits
        );
    }
}
