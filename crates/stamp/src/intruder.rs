//! intruder — network intrusion detection (STAMP `intruder`).
//!
//! The original's pipeline: *capture* (pop a packet fragment from a shared
//! queue), *reassembly* (insert the fragment into a shared map of
//! partially reassembled flows; extract the flow once complete), and
//! *detection* (scan the reassembled payload for attack signatures —
//! pure computation). Capture and reassembly are transactions; detection
//! is not.
//!
//! Txn sites: 0 = capture (queue pop), 1 = reassembly insert/complete,
//! 2 = record a detected attack.

use crate::{mix64, run_workers, BenchResult, Benchmark, InputSize, RunConfig};
use gstm_core::TxnId;
use gstm_structs::{TMap, TQueue};
use gstm_tl2::{Stm, TVar};
use std::sync::Arc;

const TXN_CAPTURE: TxnId = TxnId(0);
const TXN_REASSEMBLE: TxnId = TxnId(1);
const TXN_RECORD_ATTACK: TxnId = TxnId(2);

/// Attack signature planted in malicious payloads.
const SIGNATURE: &[u8] = b"<<EXPLOIT>>";

struct Params {
    flows: usize,
    max_fragments: usize,
    payload_len: usize,
    attack_pct: u64,
}

fn params(size: InputSize) -> Params {
    match size {
        InputSize::Small => Params {
            flows: 128,
            max_fragments: 4,
            payload_len: 64,
            attack_pct: 10,
        },
        InputSize::Medium => Params {
            flows: 512,
            max_fragments: 6,
            payload_len: 128,
            attack_pct: 10,
        },
        InputSize::Large => Params {
            flows: 2048,
            max_fragments: 8,
            payload_len: 256,
            attack_pct: 10,
        },
    }
}

/// One packet fragment on the wire.
#[derive(Clone, Debug)]
struct Fragment {
    flow: u64,
    index: usize,
    total: usize,
    data: Vec<u8>,
}

/// A partially reassembled flow.
#[derive(Clone, Debug)]
struct FlowBuf {
    got: Vec<Option<Vec<u8>>>,
}

/// Deterministically generate all fragments of all flows, shuffled.
fn gen_traffic(p: &Params, seed: u64) -> (Vec<Fragment>, u64) {
    let mut frags = Vec::new();
    let mut attacks = 0u64;
    for f in 0..p.flows {
        let r = mix64(seed ^ (f as u64) << 13);
        let mut payload: Vec<u8> = (0..p.payload_len)
            .map(|i| (mix64(r ^ i as u64) % 26) as u8 + b'a')
            .collect();
        if r % 100 < p.attack_pct {
            let at = (mix64(r >> 9) as usize) % (p.payload_len - SIGNATURE.len());
            payload[at..at + SIGNATURE.len()].copy_from_slice(SIGNATURE);
            attacks += 1;
        }
        let n = (mix64(r >> 5) as usize % p.max_fragments) + 1;
        let chunk = payload.len().div_ceil(n);
        for (i, piece) in payload.chunks(chunk).enumerate() {
            frags.push(Fragment {
                flow: f as u64,
                index: i,
                total: payload.chunks(chunk).count(),
                data: piece.to_vec(),
            });
        }
    }
    // Deterministic shuffle so fragments of a flow arrive out of order
    // and interleaved with other flows.
    for i in (1..frags.len()).rev() {
        let j = (mix64(seed ^ 0xabcd ^ i as u64) % (i as u64 + 1)) as usize;
        frags.swap(i, j);
    }
    (frags, attacks)
}

/// Pure detection pass (non-transactional, as in the original).
fn detect(payload: &[u8]) -> bool {
    payload
        .windows(SIGNATURE.len())
        .any(|w| w == SIGNATURE)
}

/// The intruder benchmark.
pub struct Intruder;

impl Benchmark for Intruder {
    fn name(&self) -> &'static str {
        "intruder"
    }

    fn num_txn_sites(&self) -> u16 {
        3
    }

    fn run(&self, stm: &Arc<Stm>, cfg: &RunConfig) -> BenchResult {
        let p = params(cfg.size);
        let (frags, _expected_attacks) = gen_traffic(&p, cfg.seed);

        // Load the capture queue (sequential setup).
        let queue: TQueue<Fragment> = TQueue::new();
        let reassembly: TMap<FlowBuf> = TMap::new();
        let attacks = TVar::new(0u64);
        let completed = TVar::new(0u64);
        {
            let setup_stm = Stm::new(gstm_tl2::StmConfig::default());
            let mut ctx = setup_stm.register_as(gstm_core::ThreadId(u16::MAX));
            for f in &frags {
                let f = f.clone();
                ctx.atomically(TxnId(100), |tx| queue.push(tx, f.clone()));
            }
        }

        let mut result = run_workers(stm, cfg, |_t, ctx| {
            let mut processed = 0u64;
            loop {
                // Capture: pop one fragment.
                let frag = ctx.atomically(TXN_CAPTURE, |tx| queue.pop(tx));
                let frag = match frag {
                    Some(f) => f,
                    None => break,
                };
                // Reassembly: insert the fragment; take the flow if complete.
                let complete = ctx.atomically(TXN_REASSEMBLE, |tx| {
                    let mut buf = match reassembly.get(tx, frag.flow)? {
                        Some(buf) => buf,
                        None => FlowBuf {
                            got: vec![None; frag.total],
                        },
                    };
                    buf.got[frag.index] = Some(frag.data.clone());
                    if buf.got.iter().all(Option::is_some) {
                        reassembly.remove(tx, frag.flow)?;
                        tx.modify(&completed, |c| c + 1)?;
                        Ok(Some(buf))
                    } else {
                        reassembly.upsert(tx, frag.flow, buf)?;
                        Ok(None)
                    }
                });
                processed += 1;
                // Detection: pure scan; record any hit transactionally.
                if let Some(buf) = complete {
                    let payload: Vec<u8> = buf
                        .got
                        .into_iter()
                        .flat_map(|p| p.unwrap())
                        .collect();
                    if detect(&payload) {
                        ctx.atomically(TXN_RECORD_ATTACK, |tx| {
                            tx.modify(&attacks, |a| a + 1)
                        });
                    }
                }
            }
            processed
        });

        result.checksum = completed
            .load_quiesced()
            .wrapping_mul(1_000_000)
            .wrapping_add(attacks.load_quiesced());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_tl2::StmConfig;

    #[test]
    fn traffic_generator_is_deterministic_and_fragmented() {
        let p = params(InputSize::Small);
        let (f1, a1) = gen_traffic(&p, 3);
        let (f2, a2) = gen_traffic(&p, 3);
        assert_eq!(a1, a2);
        assert_eq!(f1.len(), f2.len());
        assert!(f1.len() > p.flows, "flows are fragmented");
        assert!(a1 > 0, "some attacks are planted");
    }

    #[test]
    fn detector_finds_planted_signature() {
        assert!(detect(b"xxxx<<EXPLOIT>>yyy"));
        assert!(!detect(b"innocent traffic"));
        assert!(!detect(b"<<EXPLOI"));
    }

    #[test]
    fn all_flows_complete_and_attacks_match_plant_count() {
        let stm = Stm::new(StmConfig::default());
        let cfg = RunConfig {
            threads: 2,
            size: InputSize::Small,
            seed: 21,
        };
        let p = params(InputSize::Small);
        let (_, expected_attacks) = gen_traffic(&p, cfg.seed);
        let r = Intruder.run(&stm, &cfg);
        assert_eq!(r.checksum / 1_000_000, p.flows as u64, "all flows done");
        assert_eq!(r.checksum % 1_000_000, expected_attacks);
    }

    #[test]
    fn concurrent_run_processes_every_fragment_once() {
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let cfg = RunConfig {
            threads: 4,
            size: InputSize::Small,
            seed: 21,
        };
        let p = params(InputSize::Small);
        let (frags, expected_attacks) = gen_traffic(&p, cfg.seed);
        let r = Intruder.run(&stm, &cfg);
        assert_eq!(r.checksum / 1_000_000, p.flows as u64);
        assert_eq!(r.checksum % 1_000_000, expected_attacks);
        // Each thread's returned count sums to the number of fragments.
        let commits = r.merged_stats().commits;
        assert!(commits as usize >= frags.len(), "capture txns ran");
    }
}
