//! vacation — travel reservation system (STAMP `vacation`).
//!
//! A client/server OLTP emulation: four relation tables (cars, flights,
//! rooms, customers) held in transactional ordered maps. Client threads
//! issue a pseudo-random mix of operations, each one transaction:
//!
//! * **make reservation** (txn 0): query `q` random items across the three
//!   resource tables, pick the cheapest available one per kind, reserve it
//!   and bill the customer;
//! * **delete customer** (txn 1): cancel a customer's reservations and
//!   release the resources;
//! * **update tables** (txn 2): add/remove/reprice random items.
//!
//! The paper remarks that vacation's pseudo-random client behaviour is the
//! hardest pattern for the trained model to capture.

use crate::{mix64, run_workers, BenchResult, Benchmark, InputSize, RunConfig};
use gstm_core::TxnId;
use gstm_structs::TMap;
use gstm_tl2::Stm;
use std::sync::Arc;

const TXN_RESERVE: TxnId = TxnId(0);
const TXN_DELETE_CUSTOMER: TxnId = TxnId(1);
const TXN_UPDATE_TABLES: TxnId = TxnId(2);

struct Params {
    relations: u64,
    customers: u64,
    tasks_per_thread: usize,
    queries_per_task: usize,
}

fn params(size: InputSize) -> Params {
    match size {
        InputSize::Small => Params {
            relations: 32,
            customers: 24,
            tasks_per_thread: 100,
            queries_per_task: 6,
        },
        InputSize::Medium => Params {
            relations: 256,
            customers: 192,
            tasks_per_thread: 300,
            queries_per_task: 6,
        },
        InputSize::Large => Params {
            relations: 1024,
            customers: 768,
            tasks_per_thread: 800,
            queries_per_task: 8,
        },
    }
}

/// One reservable resource (a car, flight, or room).
#[derive(Clone, Debug)]
struct Resource {
    total: u32,
    used: u32,
    price: u32,
}

/// A customer with outstanding reservations `(kind, resource id)` and a
/// running bill.
#[derive(Clone, Debug, Default)]
struct Customer {
    reservations: Vec<(u8, u64)>,
    bill: u64,
}

/// The vacation benchmark.
pub struct Vacation;

struct Tables {
    resources: [TMap<Resource>; 3], // cars, flights, rooms
    customers: TMap<Customer>,
}

fn setup(p: &Params, seed: u64) -> Tables {
    let tables = Tables {
        resources: [TMap::new(), TMap::new(), TMap::new()],
        customers: TMap::new(),
    };
    // Populate sequentially through a throwaway STM instance.
    let stm = Stm::new(gstm_tl2::StmConfig::default());
    let mut ctx = stm.register_as(gstm_core::ThreadId(u16::MAX));
    for kind in 0..3usize {
        for i in 0..p.relations {
            let r = mix64(seed ^ ((kind as u64) << 40) ^ i);
            let res = Resource {
                total: (r % 4 + 1) as u32,
                used: 0,
                price: (mix64(r) % 500 + 50) as u32,
            };
            ctx.atomically(TxnId(100), |tx| tables.resources[kind].insert(tx, i, res.clone()));
        }
    }
    for c in 0..p.customers {
        ctx.atomically(TxnId(100), |tx| {
            tables.customers.insert(tx, c, Customer::default())
        });
    }
    tables
}

impl Benchmark for Vacation {
    fn name(&self) -> &'static str {
        "vacation"
    }

    fn num_txn_sites(&self) -> u16 {
        3
    }

    fn run(&self, stm: &Arc<Stm>, cfg: &RunConfig) -> BenchResult {
        let p = params(cfg.size);
        let tables = Arc::new(setup(&p, cfg.seed));

        run_workers(stm, cfg, |t, ctx| {
            let mut checksum = 0u64;
            let mut r = mix64(cfg.seed ^ thread_salt(t));
            for task in 0..p.tasks_per_thread {
                r = mix64(r ^ task as u64);
                let action = r % 100;
                if action < 80 {
                    // Make reservation.
                    let customer = mix64(r >> 3) % p.customers;
                    let queries: Vec<(usize, u64)> = (0..p.queries_per_task)
                        .map(|q| {
                            let rr = mix64(r ^ (q as u64) << 17);
                            ((rr % 3) as usize, mix64(rr) % p.relations)
                        })
                        .collect();
                    let booked = ctx.atomically(TXN_RESERVE, |tx| {
                        // Cheapest available item per kind among the queried.
                        let mut best: [Option<(u64, u32)>; 3] = [None, None, None];
                        for &(kind, id) in &queries {
                            if let Some(res) = tables.resources[kind].get(tx, id)? {
                                if res.used < res.total {
                                    let better = match best[kind] {
                                        Some((_, price)) => res.price < price,
                                        None => true,
                                    };
                                    if better {
                                        best[kind] = Some((id, res.price));
                                    }
                                }
                            }
                        }
                        let mut booked = 0u64;
                        if tables.customers.contains(tx, customer)? {
                            for (kind, slot) in best.iter().enumerate() {
                                if let Some((id, price)) = *slot {
                                    tables.resources[kind].update(tx, id, |mut res| {
                                        res.used += 1;
                                        res
                                    })?;
                                    tables.customers.update(tx, customer, |mut c| {
                                        c.reservations.push((kind as u8, id));
                                        c.bill += price as u64;
                                        c
                                    })?;
                                    booked += 1;
                                }
                            }
                        }
                        Ok(booked)
                    });
                    checksum = checksum.wrapping_add(booked);
                } else if action < 90 {
                    // Delete customer: release reservations.
                    let customer = mix64(r >> 5) % p.customers;
                    let released = ctx.atomically(TXN_DELETE_CUSTOMER, |tx| {
                        match tables.customers.remove(tx, customer)? {
                            Some(c) => {
                                for &(kind, id) in &c.reservations {
                                    tables.resources[kind as usize].update(tx, id, |mut res| {
                                        res.used = res.used.saturating_sub(1);
                                        res
                                    })?;
                                }
                                // Re-create the customer fresh (the original
                                // recycles ids).
                                tables
                                    .customers
                                    .insert(tx, customer, Customer::default())?;
                                Ok(c.reservations.len() as u64)
                            }
                            None => Ok(0),
                        }
                    });
                    checksum = checksum.wrapping_add(released);
                } else {
                    // Update tables: reprice or resize random items.
                    let kind = (mix64(r >> 7) % 3) as usize;
                    let id = mix64(r >> 9) % p.relations;
                    ctx.atomically(TXN_UPDATE_TABLES, |tx| {
                        tables.resources[kind].update(tx, id, |mut res| {
                            res.price = (mix64(res.price as u64 ^ r) % 500 + 50) as u32;
                            res
                        })
                    });
                    checksum = checksum.wrapping_add(1);
                }
            }
            checksum
        })
    }
}

/// Per-thread seed salt so client streams are decorrelated.
fn thread_salt(t: u16) -> u64 {
    0x7aca_7107 ^ ((t as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_tl2::StmConfig;

    fn run(threads: u16, yield_k: Option<u32>) -> BenchResult {
        let config = match yield_k {
            Some(k) => StmConfig::with_yield_injection(k),
            None => StmConfig::default(),
        };
        let stm = Stm::new(config);
        let cfg = RunConfig {
            threads,
            size: InputSize::Small,
            seed: 11,
        };
        Vacation.run(&stm, &cfg)
    }

    #[test]
    fn single_thread_completes_all_tasks() {
        let r = run(1, None);
        let p = params(InputSize::Small);
        assert_eq!(r.merged_stats().commits, p.tasks_per_thread as u64);
        assert!(r.checksum > 0, "some bookings must happen");
    }

    #[test]
    fn resource_accounting_never_oversubscribes() {
        // Run concurrently, then audit: used <= total for every resource
        // and every used seat corresponds to a customer reservation.
        let stm = Stm::new(StmConfig::with_yield_injection(2));
        let cfg = RunConfig {
            threads: 4,
            size: InputSize::Small,
            seed: 11,
        };
        let p = params(InputSize::Small);
        let tables = Arc::new(setup(&p, cfg.seed));
        let tables2 = Arc::clone(&tables);
        // Inline a small version of the kernel against our own tables so we
        // can audit them afterwards.
        crate::run_workers(&stm, &cfg, |t, ctx| {
            let mut r = mix64(t as u64 + 1);
            for _ in 0..150 {
                r = mix64(r);
                let customer = r % p.customers;
                let kind = (r >> 8) as usize % 3;
                let id = mix64(r) % p.relations;
                ctx.atomically(TXN_RESERVE, |tx| {
                    if let Some(res) = tables2.resources[kind].get(tx, id)? {
                        if res.used < res.total && tables2.customers.contains(tx, customer)? {
                            tables2.resources[kind].update(tx, id, |mut x| {
                                x.used += 1;
                                x
                            })?;
                            tables2.customers.update(tx, customer, |mut c| {
                                c.reservations.push((kind as u8, id));
                                c.bill += res.price as u64;
                                c
                            })?;
                        }
                    }
                    Ok(())
                });
            }
            0
        });
        // Audit with a fresh context.
        let mut ctx = stm.register_as(gstm_core::ThreadId(99));
        let (resources, customers) = ctx.atomically(TxnId(50), |tx| {
            let mut snaps = Vec::new();
            for k in 0..3 {
                snaps.push(tables.resources[k].snapshot(tx)?);
            }
            let c = tables.customers.snapshot(tx)?;
            Ok((snaps, c))
        });
        let mut reserved_per_item: std::collections::HashMap<(u8, u64), u32> = Default::default();
        for (_, c) in &customers {
            for &(kind, id) in &c.reservations {
                *reserved_per_item.entry((kind, id)).or_insert(0) += 1;
            }
        }
        for (kind, snap) in resources.iter().enumerate() {
            for &(id, ref res) in snap {
                assert!(res.used <= res.total, "oversubscribed {kind}/{id}");
                let held = reserved_per_item
                    .get(&(kind as u8, id))
                    .copied()
                    .unwrap_or(0);
                assert_eq!(res.used, held, "ledger mismatch on {kind}/{id}");
            }
        }
    }

    #[test]
    fn concurrent_full_kernel_is_consistent() {
        let r = run(4, Some(2));
        let p = params(InputSize::Small);
        assert_eq!(
            r.merged_stats().commits,
            4 * p.tasks_per_thread as u64,
            "every task commits exactly once"
        );
    }
}
