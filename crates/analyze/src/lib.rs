//! # gstm-analyze — cross-run variance analysis over telemetry artifacts
//!
//! The harness (`gstm-repro --telemetry=DIR`) exports one artifact set per
//! guided repetition (`<bench>_<threads>t_run<r>_telemetry.{prom,jsonl,trace.json}`)
//! plus two CSVs with its own accounting (`<bench>_<threads>t_runs.csv`,
//! `<bench>_<threads>t_guided_summary.csv`). This crate re-derives the
//! paper's variance metrics *from the exported telemetry alone* —
//! reconstructing each run's Tseq from the JSONL trace with the same
//! windowed attribution the profiler uses ([`gstm_core::tss::parse_tseq`]) —
//! and cross-checks them against the harness numbers:
//!
//! * per-thread execution-time standard deviation (recomputed from
//!   `runs.csv`, checked against `guided_summary.csv` at float tolerance),
//! * non-determinism (distinct TSS across reconstructed Tseqs, exact),
//! * the abort-tail metric Σj² per thread (exact),
//! * per-thread/gate-outcome partitions of the global counters (exact),
//! * commit-latency quantiles per run (exact nearest-rank over raw
//!   `commit_ns` samples) and their spread across runs,
//! * per-epoch segmentation of adaptive runs: the trace is split at
//!   [`TraceKind::ModelSwap`] events and the swap counter, epoch-id
//!   ordering, and per-epoch commit partition are cross-checked
//!   (`epoch_segmentation`).
//!
//! The result is a [`CampaignReport`]: a list of named pass/fail
//! [`Check`]s, the recomputed metrics, and the model-drift summary read
//! from the final run's Prometheus exposition. [`render_verdict_json`]
//! and [`render_markdown`] serialize it for CI (`verdict.json`) and for
//! humans.
//!
//! Counters are trusted unconditionally; trace-derived quantities (Tseq,
//! histograms) are only cross-checked exactly when the run's
//! `gstm_trace_dropped_total` is zero — a saturated ring makes the trace
//! a *sample*, and the affected checks degrade to "skipped" rather than
//! reporting false mismatches.

use gstm_core::events::TxEvent;
use gstm_core::metrics::{self, AbortHistogram};
use gstm_core::telemetry::{parse_jsonl, TraceEvent, TraceKind};
use gstm_core::tss::{parse_tseq, StateKey};
use std::fmt::Write as _;
use std::path::Path;

// ---------------------------------------------------------------------------
// Prometheus text exposition parsing
// ---------------------------------------------------------------------------

/// One sample from a Prometheus text exposition.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric family name.
    pub name: String,
    /// Label pairs, in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A parsed `.prom` file.
#[derive(Clone, Debug, Default)]
pub struct PromSnapshot {
    samples: Vec<PromSample>,
}

impl PromSnapshot {
    /// Parse the text exposition format emitted by
    /// `TelemetrySnapshot::render_prometheus` (and any conforming subset
    /// of the Prometheus format: `name{k="v",...} value` lines, `#`
    /// comments).
    pub fn parse(text: &str) -> Result<PromSnapshot, String> {
        let mut samples = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("prom line {}: {what}: {raw}", n + 1);
            let (series, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| err("missing value"))?;
            let value: f64 = value.parse().map_err(|_| err("bad value"))?;
            let (name, labels) = match series.split_once('{') {
                None => (series.to_string(), Vec::new()),
                Some((name, rest)) => {
                    let body = rest
                        .strip_suffix('}')
                        .ok_or_else(|| err("unterminated labels"))?;
                    let mut labels = Vec::new();
                    for pair in body.split(',').filter(|p| !p.is_empty()) {
                        let (k, v) = pair.split_once('=').ok_or_else(|| err("bad label"))?;
                        let v = v
                            .strip_prefix('"')
                            .and_then(|v| v.strip_suffix('"'))
                            .ok_or_else(|| err("unquoted label value"))?;
                        labels.push((k.to_string(), v.to_string()));
                    }
                    (name.to_string(), labels)
                }
            };
            samples.push(PromSample { name, labels, value });
        }
        Ok(PromSnapshot { samples })
    }

    /// First sample of `name` carrying every label in `labels`.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }

    /// Sum of every sample of `name` carrying every label in `labels`.
    pub fn sum(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.samples
            .iter()
            .filter(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
            .sum()
    }

    /// All samples of `name`.
    pub fn family(&self, name: &str) -> impl Iterator<Item = &PromSample> + '_ {
        let name = name.to_string();
        self.samples.iter().filter(move |s| s.name == name)
    }
}

// ---------------------------------------------------------------------------
// Harness CSV parsing
// ---------------------------------------------------------------------------

/// One row of `<stem>_runs.csv`: what the harness measured for one
/// thread in one guided repetition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CsvRunRow {
    /// Repetition index.
    pub run: usize,
    /// Thread index.
    pub thread: usize,
    /// Execution time of that thread, seconds.
    pub secs: f64,
    /// Commits that thread performed.
    pub commits: u64,
    /// Aborts that thread suffered.
    pub aborts: u64,
}

/// Parse `<stem>_runs.csv` (`run,thread,secs,commits,aborts`).
pub fn parse_runs_csv(text: &str) -> Result<Vec<CsvRunRow>, String> {
    let mut rows = Vec::new();
    for (n, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let err = |what: &str| format!("runs.csv line {}: {what}: {line}", n + 1);
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 5 {
            return Err(err("expected 5 fields"));
        }
        rows.push(CsvRunRow {
            run: f[0].parse().map_err(|_| err("bad run"))?,
            thread: f[1].parse().map_err(|_| err("bad thread"))?,
            secs: f[2].parse().map_err(|_| err("bad secs"))?,
            commits: f[3].parse().map_err(|_| err("bad commits"))?,
            aborts: f[4].parse().map_err(|_| err("bad aborts"))?,
        });
    }
    if rows.is_empty() {
        return Err("runs.csv has no data rows".into());
    }
    Ok(rows)
}

/// The harness's own cross-run metrics from `<stem>_guided_summary.csv`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HarnessSummary {
    /// Per-thread execution-time standard deviation, seconds.
    pub std_dev_secs: Vec<f64>,
    /// Per-thread abort-tail metric Σj².
    pub tail_metric: Vec<u64>,
    /// Distinct TSS across the guided repetitions.
    pub non_determinism: u64,
    /// Total guided commits across repetitions.
    pub commits: u64,
    /// Total guided aborts across repetitions.
    pub aborts: u64,
}

/// Parse `<stem>_guided_summary.csv` (`metric,thread,value`).
pub fn parse_summary_csv(text: &str) -> Result<HarnessSummary, String> {
    let mut s = HarnessSummary::default();
    for (n, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let err = |what: &str| format!("summary.csv line {}: {what}: {line}", n + 1);
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 3 {
            return Err(err("expected 3 fields"));
        }
        match f[0] {
            "std_dev_secs" => {
                let t: usize = f[1].parse().map_err(|_| err("bad thread"))?;
                if s.std_dev_secs.len() != t {
                    return Err(err("std_dev_secs rows out of order"));
                }
                s.std_dev_secs.push(f[2].parse().map_err(|_| err("bad value"))?);
            }
            "tail_metric" => {
                let t: usize = f[1].parse().map_err(|_| err("bad thread"))?;
                if s.tail_metric.len() != t {
                    return Err(err("tail_metric rows out of order"));
                }
                s.tail_metric.push(f[2].parse().map_err(|_| err("bad value"))?);
            }
            "non_determinism" => s.non_determinism = f[2].parse().map_err(|_| err("bad value"))?,
            "commits" => s.commits = f[2].parse().map_err(|_| err("bad value"))?,
            "aborts" => s.aborts = f[2].parse().map_err(|_| err("bad value"))?,
            other => return Err(err(&format!("unknown metric {other}"))),
        }
    }
    if s.std_dev_secs.is_empty() {
        return Err("summary.csv has no std_dev_secs rows".into());
    }
    Ok(s)
}

/// One row of `<stem>_failures.csv`: a measurement repetition that
/// panicked instead of completing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsvFailure {
    /// Phase the casualty occurred in (`default` or `guided`).
    pub phase: String,
    /// Repetition index within that phase's attempt sequence.
    pub rep: usize,
    /// The panic cause the harness recorded.
    pub cause: String,
}

/// Parse `<stem>_failures.csv` (`phase,rep,cause`). An empty table means
/// every repetition completed; the cause field may be CSV-quoted.
pub fn parse_failures_csv(text: &str) -> Result<Vec<CsvFailure>, String> {
    let unquote = |s: &str| -> String {
        s.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .map(|s| s.replace("\"\"", "\""))
            .unwrap_or_else(|| s.to_string())
    };
    let mut rows = Vec::new();
    for (n, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let err = |what: &str| format!("failures.csv line {}: {what}: {line}", n + 1);
        // The cause is free text (possibly quoted, possibly containing
        // commas); phase and rep never are, so split off the first two
        // fields only.
        let f: Vec<&str> = line.splitn(3, ',').collect();
        if f.len() != 3 {
            return Err(err("expected 3 fields"));
        }
        rows.push(CsvFailure {
            phase: f[0].to_string(),
            rep: f[1].parse().map_err(|_| err("bad rep"))?,
            cause: unquote(f[2]),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Per-run reconstruction from the JSONL trace
// ---------------------------------------------------------------------------

/// Rebuild the run's transaction sequence from its trace: map the
/// commit/abort events (already globally sequenced) onto the event-log
/// shape and apply the profiler's windowed attribution — aborts group
/// with the *next* commit, trailing aborts are dropped.
pub fn tseq_from_events(events: &[TraceEvent]) -> Vec<StateKey> {
    let log: Vec<TxEvent> = events
        .iter()
        .filter_map(|ev| match ev.kind {
            TraceKind::Abort { cause, .. } => Some(TxEvent::Abort(ev.pair, cause)),
            TraceKind::Commit { .. } => Some(TxEvent::Commit(ev.pair, 0)),
            _ => None,
        })
        .collect();
    parse_tseq(&log)
}

/// Rebuild per-thread abort histograms: each thread's aborts since its
/// previous commit are that commit's retry count, mirroring the
/// harness's `ThreadStats::record_commit` bookkeeping.
pub fn per_thread_hists(events: &[TraceEvent], threads: usize) -> Vec<AbortHistogram> {
    let mut hists = vec![AbortHistogram::new(); threads];
    let mut pending = vec![0u32; threads];
    for ev in events {
        let t = ev.pair.thread.0 as usize;
        if t >= threads {
            continue;
        }
        match ev.kind {
            TraceKind::Abort { .. } => pending[t] += 1,
            TraceKind::Commit { .. } => {
                hists[t].record(pending[t]);
                pending[t] = 0;
            }
            _ => {}
        }
    }
    hists
}

/// One model epoch's slice of a run's trace, delimited by
/// [`TraceKind::ModelSwap`] events. A run that never swapped has exactly
/// one segment: epoch 0, the initially trained model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochSegment {
    /// Epoch id of the model live during this segment.
    pub epoch: u32,
    /// Drift-verdict code carried by the swap that installed this epoch
    /// (`None` for the initial model, which was not installed by a swap).
    pub swap_verdict: Option<u8>,
    /// `StateTransition` events observed while this epoch was live.
    pub transitions: u64,
    /// `Commit` events observed while this epoch was live.
    pub commits: u64,
}

/// Segment a run's globally-sequenced trace at its `ModelSwap` events,
/// attributing every transition and commit to the model epoch that was
/// live when it was traced.
pub fn epoch_segments(events: &[TraceEvent]) -> Vec<EpochSegment> {
    let mut segs = vec![EpochSegment::default()];
    for ev in events {
        match ev.kind {
            TraceKind::ModelSwap { epoch, verdict } => segs.push(EpochSegment {
                epoch,
                swap_verdict: Some(verdict),
                ..EpochSegment::default()
            }),
            TraceKind::StateTransition { .. } => {
                if let Some(seg) = segs.last_mut() {
                    seg.transitions += 1;
                }
            }
            TraceKind::Commit { .. } => {
                if let Some(seg) = segs.last_mut() {
                    seg.commits += 1;
                }
            }
            _ => {}
        }
    }
    segs
}

/// Exact nearest-rank quantile over a sorted sample (`q` in `[0,1]`).
pub fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Everything re-derived from one repetition's artifacts.
#[derive(Clone, Debug)]
pub struct RunAnalysis {
    /// Repetition index.
    pub run: usize,
    /// Trace events, in global sequence order.
    pub events: usize,
    /// Reconstructed transaction sequence.
    pub tseq: Vec<StateKey>,
    /// Reconstructed per-thread abort histograms.
    pub hists: Vec<AbortHistogram>,
    /// Raw commit latencies, sorted ascending, nanoseconds.
    pub commit_ns: Vec<u64>,
    /// `gstm_trace_dropped_total` — nonzero means the trace is a sample
    /// and exact trace-derived cross-checks are skipped.
    pub dropped: u64,
    /// The run's trace split at its `ModelSwap` events — one segment per
    /// model epoch that was live during the run (always at least one).
    pub segments: Vec<EpochSegment>,
    /// Circuit-breaker transitions traced during the run, in sequence
    /// order (`(from, to, cause)` stable codes).
    pub breaker_events: Vec<BreakerEvent>,
    /// Abort events in the trace (every abort is traced, unlike the
    /// histogram reconstruction, which drops trailing aborts).
    pub abort_events: u64,
    /// Abort events carrying a culprit address (`addr != 0`) — the trace
    /// side of the contention tracker's `attributed` counter.
    pub abort_events_with_addr: u64,
    /// The run's parsed counter exposition.
    pub prom: PromSnapshot,
}

/// One traced circuit-breaker transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerEvent {
    /// State code left (0 closed, 1 open, 2 half-open).
    pub from: u8,
    /// State code entered.
    pub to: u8,
    /// Stable cause code (see `gstm_core::breaker::BreakerCause`).
    pub cause: u8,
}

impl RunAnalysis {
    /// Analyze one repetition's JSONL + prom artifact pair.
    pub fn from_artifacts(
        run: usize,
        jsonl: &str,
        prom_text: &str,
        threads: usize,
    ) -> Result<RunAnalysis, String> {
        let events = parse_jsonl(jsonl).map_err(|e| format!("run {run}: {e}"))?;
        let prom = PromSnapshot::parse(prom_text).map_err(|e| format!("run {run}: {e}"))?;
        let mut commit_ns: Vec<u64> = events
            .iter()
            .filter_map(|ev| match ev.kind {
                TraceKind::Commit { commit_ns, .. } => Some(commit_ns),
                _ => None,
            })
            .collect();
        commit_ns.sort_unstable();
        let breaker_events: Vec<BreakerEvent> = events
            .iter()
            .filter_map(|ev| match ev.kind {
                TraceKind::Breaker { from, to, cause } => {
                    Some(BreakerEvent { from, to, cause })
                }
                _ => None,
            })
            .collect();
        let (mut abort_events, mut abort_events_with_addr) = (0u64, 0u64);
        for ev in &events {
            if let TraceKind::Abort { addr, .. } = ev.kind {
                abort_events += 1;
                if addr != 0 {
                    abort_events_with_addr += 1;
                }
            }
        }
        Ok(RunAnalysis {
            run,
            events: events.len(),
            tseq: tseq_from_events(&events),
            hists: per_thread_hists(&events, threads),
            commit_ns,
            dropped: prom.get("gstm_trace_dropped_total", &[]).unwrap_or(0.0) as u64,
            segments: epoch_segments(&events),
            breaker_events,
            abort_events,
            abort_events_with_addr,
            prom,
        })
    }

    /// Commits reconstructed from the trace.
    pub fn trace_commits(&self) -> u64 {
        self.hists.iter().map(|h| h.total_commits()).sum()
    }

    /// Aborts reconstructed from the trace (attributed ones — trailing
    /// aborts with no following commit on their thread are not counted,
    /// same as the harness histograms).
    pub fn trace_aborts(&self) -> u64 {
        self.hists.iter().map(|h| h.total_aborts()).sum()
    }

    /// Model hot-swaps reconstructed from the trace (one per epoch
    /// boundary).
    pub fn trace_swaps(&self) -> u64 {
        self.segments.len() as u64 - 1
    }
}

// ---------------------------------------------------------------------------
// Campaign analysis
// ---------------------------------------------------------------------------

/// Pass/fail thresholds. Cross-*check* tolerances are always applied;
/// the `Option` fields add policy gates on the recomputed metrics.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Absolute tolerance for float cross-checks (the harness writes
    /// seconds at 9 decimals, so recomputation differs by < 1e-8).
    pub float_tol: f64,
    /// Fail if any thread's time coefficient of variation (std-dev /
    /// mean, percent) exceeds this.
    pub max_cv_pct: Option<f64>,
    /// Fail if cross-run non-determinism (distinct TSS) exceeds this.
    pub max_non_determinism: Option<u64>,
    /// Fail if the campaign abort ratio (aborts / (commits+aborts),
    /// percent) exceeds this.
    pub max_abort_ratio_pct: Option<f64>,
    /// Fail if the model's off-model transition share exceeds this.
    pub max_off_model_pct: Option<f64>,
    /// Fail if the drift verdict reached Stale (code 3).
    pub fail_on_stale: bool,
    /// Fail if the campaign degraded at all: any breaker trip, model
    /// rejection, guardian restart, or panicked repetition (the
    /// `--fail-on-degraded` CI gate).
    pub fail_on_degraded: bool,
    /// Fail if the campaign's hottest conflict address accounts for more
    /// than this share of attributed aborts, percent (the
    /// `--max-hot-addr-pct` gate: a single address dominating contention
    /// is a data-layout bug, not a scheduling problem).
    pub max_hot_addr_pct: Option<f64>,
    /// Fail if the server's frame-time coefficient of variation exceeds
    /// this, percent (the frame-rate-variance gate over `ticks.jsonl`).
    pub max_frame_cv_pct: Option<f64>,
    /// Fail if the server's frame-time p99 exceeds this, milliseconds.
    pub max_frame_p99_ms: Option<f64>,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            float_tol: 1e-6,
            max_cv_pct: None,
            max_non_determinism: None,
            max_abort_ratio_pct: None,
            max_off_model_pct: None,
            fail_on_stale: false,
            fail_on_degraded: false,
            max_hot_addr_pct: None,
            max_frame_cv_pct: None,
            max_frame_p99_ms: None,
        }
    }
}

/// One named cross-check or policy gate.
#[derive(Clone, Debug)]
pub struct Check {
    /// Stable identifier (snake_case), keyed on by CI.
    pub name: String,
    /// Whether it held.
    pub pass: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// Model-drift facts lifted from the final run's exposition (the drift
/// tracker is shared across repetitions, so the last run carries the
/// whole campaign).
#[derive(Clone, Debug, Default)]
pub struct DriftFacts {
    /// Staleness code: 0 insufficient, 1 fresh, 2 drifting, 3 stale.
    pub staleness: u64,
    /// Share of transitions leaving the modeled edge set, percent.
    pub off_model_pct: f64,
    /// Transition-weighted mean per-state KL divergence, nats.
    pub kl_mean_nats: f64,
    /// Worst per-state KL divergence, nats.
    pub kl_max_nats: f64,
    /// Guidance metric of the profiled model, percent.
    pub profiled_metric_pct: f64,
    /// Guidance metric recomputed from observed transitions, if enough
    /// were seen.
    pub observed_metric_pct: Option<f64>,
}

/// Degradation facts aggregated from breaker counters, trace events, and
/// the harness's failures CSV — the "Degradation events" section of the
/// report and the `--fail-on-degraded` gate's evidence.
#[derive(Clone, Debug, Default)]
pub struct DegradationFacts {
    /// Repetitions the harness recorded as panicked.
    pub failed_reps: Vec<CsvFailure>,
    /// Breaker trips (`gstm_breaker_tripped_total`) summed over runs.
    pub breaker_trips: u64,
    /// Breaker re-closes (`gstm_breaker_reclosed_total`) summed over runs.
    pub breaker_recloses: u64,
    /// Half-open probe admissions (`gstm_breaker_half_open_total`) summed
    /// over runs.
    pub breaker_probes: u64,
    /// Model files rejected at load (`gstm_breaker_model_rejected_total`)
    /// summed over runs.
    pub model_rejections: u64,
    /// Guardian restarts after a panic (`gstm_guardian_restarts_total`)
    /// summed over runs.
    pub guardian_restarts: u64,
    /// `gstm_breaker_state` of the final run (0 closed, 1 open, 2
    /// half-open).
    pub final_breaker_state: u64,
    /// Every traced breaker transition, as `(run, event)` in run order.
    pub events: Vec<(usize, BreakerEvent)>,
}

impl DegradationFacts {
    /// Whether the campaign degraded at all.
    pub fn any(&self) -> bool {
        !self.failed_reps.is_empty()
            || self.breaker_trips > 0
            || self.model_rejections > 0
            || self.guardian_restarts > 0
    }
}

/// Contention facts aggregated from the `gstm_contention_*` families —
/// the "Contention report" section and the `--max-hot-addr-pct` gate's
/// evidence. Absent from the report when no run exported the families
/// (pre-contention artifacts, or telemetry without a tracker).
#[derive(Clone, Debug, Default)]
pub struct ContentionFacts {
    /// Runs whose exposition carried the families.
    pub runs_with: usize,
    /// Σ `gstm_contention_attributed_total` over those runs.
    pub attributed: u64,
    /// Σ `gstm_contention_unattributed_total` over those runs.
    pub unattributed: u64,
    /// Sketch evictions summed over runs (how hard the top-K worked).
    pub replacements: u64,
    /// Hot addresses merged across runs by address, count-descending,
    /// top 16. Counts inherit the per-run sketches' over-count bounds.
    pub top: Vec<(usize, u64)>,
    /// Gini coefficient of the merged top-K counts: 0 = every hot
    /// address equally hot, →1 = one address dominates. Computed over
    /// the exported top-K only, so it measures concentration *among the
    /// hot set* — the sketch never exports the cold tail.
    pub gini: f64,
    /// Share of campaign-wide attributed aborts on the single hottest
    /// address, percent.
    pub hottest_pct: f64,
    /// Victim/owner conflict pairs merged across runs, count-descending.
    pub pairs: Vec<(u16, u16, u64)>,
}

impl ContentionFacts {
    /// Attribution rate: share of recorded aborts with a known culprit
    /// address, percent.
    pub fn attribution_pct(&self) -> f64 {
        let total = self.attributed + self.unattributed;
        if total == 0 {
            0.0
        } else {
            100.0 * self.attributed as f64 / total as f64
        }
    }
}

/// Gini coefficient of a count distribution (0 = uniform, →1 = one value
/// holds everything). Empty and all-zero inputs are 0.
pub fn gini(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if counts.len() < 2 || total == 0 {
        return 0.0;
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

/// Human-readable label for a breaker state code.
pub fn breaker_state_label(code: u64) -> &'static str {
    gstm_core::breaker::BreakerState::from_code(code as u8).label()
}

/// Human-readable staleness label for a `gstm_model_staleness` code.
pub fn staleness_label(code: u64) -> &'static str {
    match code {
        0 => "insufficient",
        1 => "fresh",
        2 => "drifting",
        _ => "stale",
    }
}

/// The analyzer's full output for one campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Artifact stem, `<bench>_<threads>t`.
    pub stem: String,
    /// Repetitions analyzed.
    pub runs: usize,
    /// Threads per repetition.
    pub threads: usize,
    /// All cross-checks and policy gates, in evaluation order.
    pub checks: Vec<Check>,
    /// Per-thread execution-time std-dev recomputed from `runs.csv`.
    pub std_dev_secs: Vec<f64>,
    /// Per-thread mean execution time from `runs.csv`.
    pub mean_secs: Vec<f64>,
    /// Per-thread abort tail Σj² from the merged reconstructed
    /// histograms.
    pub tail_metric: Vec<u64>,
    /// Distinct TSS across the reconstructed Tseqs.
    pub non_determinism: usize,
    /// Campaign commit total (from `runs.csv`).
    pub commits: u64,
    /// Campaign abort total (from `runs.csv`).
    pub aborts: u64,
    /// Per-run commit-latency median, nanoseconds.
    pub commit_p50_ns: Vec<u64>,
    /// Per-run commit-latency 99th percentile, nanoseconds.
    pub commit_p99_ns: Vec<u64>,
    /// Model hot-swaps across the campaign (adaptive runs; 0 otherwise).
    /// Taken from `gstm_model_swaps_total` per run, falling back to the
    /// trace-reconstructed count for artifacts predating the family.
    pub model_swaps: u64,
    /// Every run's epoch segmentation, flattened as `(run, segment)` in
    /// run order. Fixed-model campaigns carry one epoch-0 segment per
    /// run.
    pub epochs: Vec<(usize, EpochSegment)>,
    /// Model-drift facts, when the exposition carried them.
    pub drift: Option<DriftFacts>,
    /// Degradation facts: breaker activity, model rejections, guardian
    /// restarts, and panicked repetitions.
    pub degradation: DegradationFacts,
    /// Contention facts, when any run exported the `gstm_contention_*`
    /// families.
    pub contention: Option<ContentionFacts>,
    /// Trace events dropped across all runs (ring overflows) — nonzero
    /// means trace-derived cross-checks degraded to sampling.
    pub trace_dropped: u64,
    /// Live ops-plane facts, when the campaign exported `ops.prom`.
    pub ops: Option<OpsFacts>,
}

impl CampaignReport {
    /// Whether every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

fn approx(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Run every cross-check and policy gate over the re-derived runs, the
/// harness's raw per-run CSV, and its summary CSV.
pub fn analyze_campaign(
    stem: &str,
    runs: &[RunAnalysis],
    csv: &[CsvRunRow],
    summary: &HarnessSummary,
    th: &Thresholds,
) -> CampaignReport {
    analyze_campaign_with_failures(stem, runs, csv, summary, &[], th)
}

/// [`analyze_campaign`] plus the harness's failures CSV, folded into the
/// degradation facts (a campaign with casualties has fewer repetitions
/// than attempts; every other check already operates on the successful
/// ones only).
pub fn analyze_campaign_with_failures(
    stem: &str,
    runs: &[RunAnalysis],
    csv: &[CsvRunRow],
    summary: &HarnessSummary,
    failures: &[CsvFailure],
    th: &Thresholds,
) -> CampaignReport {
    let threads = csv.iter().map(|r| r.thread + 1).max().unwrap_or(0);
    let n_runs = csv.iter().map(|r| r.run + 1).max().unwrap_or(0);
    let mut checks = Vec::new();
    let mut check = |name: &str, pass: bool, detail: String| {
        checks.push(Check { name: name.into(), pass, detail });
    };

    // -- artifact inventory -------------------------------------------------
    let dropped_total: u64 = runs.iter().map(|r| r.dropped).sum();
    check(
        "artifacts",
        runs.len() == n_runs && !runs.is_empty(),
        format!(
            "{} telemetry artifact pair(s) for {} csv repetition(s); {} trace event(s) dropped",
            runs.len(),
            n_runs,
            dropped_total
        ),
    );
    let trace_exact = dropped_total == 0 && runs.len() == n_runs;

    // -- trace totals vs the run's own counters -----------------------------
    {
        let mut bad = Vec::new();
        for r in runs {
            if r.dropped > 0 {
                continue;
            }
            let pc = r.prom.get("gstm_commits_total", &[]).unwrap_or(-1.0) as i64;
            let pa = r.prom.sum("gstm_aborts_total", &[]) as i64;
            // Trailing unattributed aborts make trace_aborts a lower
            // bound; commits must match exactly.
            if pc != r.trace_commits() as i64 || pa < r.trace_aborts() as i64 {
                bad.push(format!(
                    "run {}: trace {}c/{}a vs prom {}c/{}a",
                    r.run,
                    r.trace_commits(),
                    r.trace_aborts(),
                    pc,
                    pa
                ));
            }
        }
        check(
            "trace_vs_prom_totals",
            bad.is_empty(),
            if bad.is_empty() {
                "per-run trace-reconstructed commit/abort totals match the counters".into()
            } else {
                bad.join("; ")
            },
        );
    }

    // -- trace per-thread counts vs the harness's runs.csv ------------------
    {
        let mut bad = Vec::new();
        for row in csv {
            let Some(r) = runs.iter().find(|r| r.run == row.run) else { continue };
            if r.dropped > 0 {
                continue;
            }
            let (c, a) = r
                .hists
                .get(row.thread)
                .map(|h| (h.total_commits(), h.total_aborts()))
                .unwrap_or((0, 0));
            if c != row.commits || a != row.aborts {
                bad.push(format!(
                    "run {} thread {}: trace {c}c/{a}a vs csv {}c/{}a",
                    row.run, row.thread, row.commits, row.aborts
                ));
            }
        }
        check(
            "trace_vs_csv_counts",
            bad.is_empty(),
            if bad.is_empty() {
                "per-run per-thread commit/abort counts match the harness csv exactly".into()
            } else {
                bad.join("; ")
            },
        );
    }

    // -- per-thread series partition the global counters --------------------
    {
        let mut bad = Vec::new();
        for r in runs {
            let gc = r.prom.get("gstm_commits_total", &[]).unwrap_or(-1.0);
            let tc = r.prom.sum("gstm_thread_commits_total", &[]);
            if gc != tc {
                bad.push(format!("run {}: thread commits {tc} != total {gc}", r.run));
            }
            let ga = r.prom.sum("gstm_aborts_total", &[]);
            let ta = r.prom.sum("gstm_thread_aborts_total", &[]);
            if ga != ta {
                bad.push(format!("run {}: thread aborts {ta} != total {ga}", r.run));
            }
            for outcome in ["passed", "waited", "released"] {
                let g = r.prom.get("gstm_gate_outcomes_total", &[("outcome", outcome)]);
                let t = r
                    .prom
                    .sum("gstm_thread_gate_outcomes_total", &[("outcome", outcome)]);
                if g.unwrap_or(-1.0) != t {
                    bad.push(format!(
                        "run {}: thread gate {outcome} {t} != total {:?}",
                        r.run, g
                    ));
                }
            }
        }
        check(
            "thread_partition",
            bad.is_empty(),
            if bad.is_empty() {
                "per-thread commit/abort/gate-outcome series sum to the global counters".into()
            } else {
                bad.join("; ")
            },
        );
    }

    // -- per-thread execution-time variance ---------------------------------
    let mut mean_secs = vec![0.0; threads];
    let mut std_dev_secs = vec![0.0; threads];
    {
        let mut bad = Vec::new();
        for t in 0..threads {
            let secs: Vec<f64> = csv.iter().filter(|r| r.thread == t).map(|r| r.secs).collect();
            mean_secs[t] = metrics::mean(&secs);
            std_dev_secs[t] = metrics::std_dev(&secs);
            match summary.std_dev_secs.get(t) {
                Some(&h) if approx(std_dev_secs[t], h, th.float_tol) => {}
                other => bad.push(format!(
                    "thread {t}: recomputed {} vs harness {:?}",
                    std_dev_secs[t], other
                )),
            }
        }
        check(
            "variance_match",
            bad.is_empty() && summary.std_dev_secs.len() == threads,
            if bad.is_empty() {
                format!(
                    "per-thread std-dev recomputed from runs.csv matches harness within {}",
                    th.float_tol
                )
            } else {
                bad.join("; ")
            },
        );
    }

    // -- abort tail ---------------------------------------------------------
    let mut tails = vec![0u64; threads];
    {
        let mut merged = vec![AbortHistogram::new(); threads];
        for r in runs {
            for (m, h) in merged.iter_mut().zip(&r.hists) {
                m.merge(h);
            }
        }
        for (t, m) in merged.iter().enumerate() {
            tails[t] = m.tail_metric();
        }
        if trace_exact {
            let pass = tails[..] == summary.tail_metric[..];
            check(
                "abort_tail_match",
                pass,
                if pass {
                    format!("per-thread abort tail Σj² {:?} matches harness exactly", tails)
                } else {
                    format!("reconstructed {:?} vs harness {:?}", tails, summary.tail_metric)
                },
            );
        } else {
            check(
                "abort_tail_match",
                true,
                "skipped: trace incomplete (dropped events or missing runs)".into(),
            );
        }
    }

    // -- non-determinism ----------------------------------------------------
    let tseqs: Vec<&[StateKey]> = runs.iter().map(|r| r.tseq.as_slice()).collect();
    let nd = metrics::non_determinism(&tseqs);
    if trace_exact {
        let pass = nd as u64 == summary.non_determinism;
        check(
            "non_determinism_match",
            pass,
            format!(
                "distinct TSS across reconstructed Tseqs = {nd}, harness = {}",
                summary.non_determinism
            ),
        );
    } else {
        check(
            "non_determinism_match",
            true,
            "skipped: trace incomplete (dropped events or missing runs)".into(),
        );
    }

    // -- campaign totals ----------------------------------------------------
    let commits: u64 = csv.iter().map(|r| r.commits).sum();
    let aborts: u64 = csv.iter().map(|r| r.aborts).sum();
    check(
        "totals_match",
        commits == summary.commits && aborts == summary.aborts,
        format!(
            "runs.csv totals {commits}c/{aborts}a vs summary {}c/{}a",
            summary.commits, summary.aborts
        ),
    );

    // -- per-epoch segmentation (adaptive runs) -----------------------------
    // Each repetition binds its own telemetry and its own model manager,
    // so a run's `gstm_model_swaps_total` must equal the `ModelSwap`
    // events in that run's trace, its epoch ids must advance
    // monotonically, and the per-epoch commit counts must partition the
    // run's trace-reconstructed commit total.
    let model_swaps: u64 = runs
        .iter()
        .map(|r| {
            r.prom
                .get("gstm_model_swaps_total", &[])
                .map(|v| v as u64)
                .unwrap_or_else(|| r.trace_swaps())
        })
        .sum();
    let epochs: Vec<(usize, EpochSegment)> = runs
        .iter()
        .flat_map(|r| r.segments.iter().map(|s| (r.run, *s)))
        .collect();
    {
        let mut bad = Vec::new();
        for r in runs {
            if r.dropped > 0 {
                continue;
            }
            match r.prom.get("gstm_model_swaps_total", &[]) {
                Some(prom_swaps) if prom_swaps as u64 != r.trace_swaps() => bad.push(format!(
                    "run {}: {} swap event(s) in trace vs gstm_model_swaps_total {}",
                    r.run,
                    r.trace_swaps(),
                    prom_swaps
                )),
                // Older artifacts predate the family entirely — tolerate
                // its absence, but not alongside swap events.
                None if r.trace_swaps() > 0 => bad.push(format!(
                    "run {}: {} swap event(s) but no gstm_model_swaps_total family",
                    r.run,
                    r.trace_swaps()
                )),
                _ => {}
            }
            for w in r.segments.windows(2) {
                if w[1].epoch <= w[0].epoch {
                    bad.push(format!(
                        "run {}: epoch id regressed {} -> {}",
                        r.run, w[0].epoch, w[1].epoch
                    ));
                }
            }
            let seg_commits: u64 = r.segments.iter().map(|s| s.commits).sum();
            if seg_commits != r.trace_commits() {
                bad.push(format!(
                    "run {}: per-epoch commits {} don't partition trace total {}",
                    r.run,
                    seg_commits,
                    r.trace_commits()
                ));
            }
        }
        let exact_runs = runs.iter().filter(|r| r.dropped == 0).count();
        check(
            "epoch_segmentation",
            bad.is_empty(),
            if !bad.is_empty() {
                bad.join("; ")
            } else if exact_runs == 0 {
                "skipped: trace incomplete (dropped events or missing runs)".into()
            } else {
                format!(
                    "{model_swaps} model swap(s); swap counters, epoch ordering, and \
                     per-epoch commit partition consistent across {exact_runs} exact run(s)"
                )
            },
        );
    }

    // -- degradation ladder (breaker / fault campaigns) ---------------------
    // Counters are per run (each guided run binds its own breaker and
    // collector), so a run's `gstm_breaker_tripped_total` must equal the
    // →open transitions in that run's trace, and likewise for re-closes
    // and half-open probes. Artifacts predating the breaker families are
    // tolerated — unless the trace carries breaker events.
    let degradation = {
        let sum = |name: &str| -> u64 {
            runs.iter()
                .filter_map(|r| r.prom.get(name, &[]))
                .sum::<f64>() as u64
        };
        DegradationFacts {
            failed_reps: failures.to_vec(),
            breaker_trips: sum("gstm_breaker_tripped_total"),
            breaker_recloses: sum("gstm_breaker_reclosed_total"),
            breaker_probes: sum("gstm_breaker_half_open_total"),
            model_rejections: sum("gstm_breaker_model_rejected_total"),
            guardian_restarts: sum("gstm_guardian_restarts_total"),
            final_breaker_state: runs
                .last()
                .and_then(|r| r.prom.get("gstm_breaker_state", &[]))
                .unwrap_or(0.0) as u64,
            events: runs
                .iter()
                .flat_map(|r| r.breaker_events.iter().map(|e| (r.run, *e)))
                .collect(),
        }
    };
    {
        let mut bad = Vec::new();
        for r in runs {
            if r.dropped > 0 {
                continue;
            }
            let traced = |to: u8| r.breaker_events.iter().filter(|e| e.to == to).count() as u64;
            let families = [
                ("gstm_breaker_tripped_total", traced(1)),
                ("gstm_breaker_half_open_total", traced(2)),
                ("gstm_breaker_reclosed_total", traced(0)),
            ];
            for (name, from_trace) in families {
                match r.prom.get(name, &[]) {
                    Some(v) if v as u64 != from_trace => bad.push(format!(
                        "run {}: {} trace transition(s) vs {name} {}",
                        r.run, from_trace, v
                    )),
                    None if from_trace > 0 => bad.push(format!(
                        "run {}: {} breaker event(s) but no {name} family",
                        r.run, from_trace
                    )),
                    _ => {}
                }
            }
        }
        check(
            "breaker_consistency",
            bad.is_empty(),
            if bad.is_empty() {
                format!(
                    "{} trip(s), {} probe(s), {} re-close(s) consistent between \
                     counters and trace",
                    degradation.breaker_trips,
                    degradation.breaker_probes,
                    degradation.breaker_recloses
                )
            } else {
                bad.join("; ")
            },
        );
    }

    // -- sharded commit clock (runs measured with --clock=sharded) ----------
    // The harness stamps every run's collector with that repetition's
    // clock deltas, so two invariants must hold exactly per run:
    // (a) the per-shard commit counters partition the run's commit total —
    // every commit is attributed to exactly one shard; (b) per shard the
    // epoch moved forward, and by at least as many steps as the shard
    // advanced — each successful advance raises the shard's epoch by ≥ 1,
    // so `Δepoch < advances` would mean a stamp went backwards.
    {
        let sharded: Vec<_> = runs
            .iter()
            .filter(|r| r.prom.get("gstm_clock_mode", &[]) == Some(1.0))
            .collect();
        if !sharded.is_empty() {
            let mut bad = Vec::new();
            let mut total_shards = 0usize;
            for r in &sharded {
                let commits = r.prom.get("gstm_commits_total", &[]).unwrap_or(0.0) as u64;
                let shard_sum =
                    r.prom.sum("gstm_clock_shard_commits_total", &[]) as u64;
                total_shards += r.prom.family("gstm_clock_shard_commits_total").count();
                if shard_sum != commits {
                    bad.push(format!(
                        "run {}: Σ shard commits {} != gstm_commits_total {}",
                        r.run, shard_sum, commits
                    ));
                }
            }
            check(
                "clock_shard_partition",
                bad.is_empty(),
                if bad.is_empty() {
                    format!(
                        "{} sharded run(s): shard commit counters partition the \
                         commit totals exactly ({} shard sample(s))",
                        sharded.len(),
                        total_shards
                    )
                } else {
                    bad.join("; ")
                },
            );

            let mut bad = Vec::new();
            let mut checked = 0usize;
            for r in &sharded {
                let advances: Vec<(String, u64)> = r
                    .prom
                    .family("gstm_clock_shard_advances_total")
                    .filter_map(|s| {
                        s.labels
                            .iter()
                            .find(|(k, _)| k == "shard")
                            .map(|(_, v)| (v.clone(), s.value as u64))
                    })
                    .collect();
                for (shard, adv) in advances {
                    let sh: &str = &shard;
                    let start = r
                        .prom
                        .get("gstm_clock_shard_epoch", &[("shard", sh), ("point", "start")])
                        .unwrap_or(0.0) as u64;
                    let end = r
                        .prom
                        .get("gstm_clock_shard_epoch", &[("shard", sh), ("point", "end")])
                        .unwrap_or(0.0) as u64;
                    checked += 1;
                    if end < start {
                        bad.push(format!(
                            "run {} shard {shard}: epoch went backwards ({start} -> {end})",
                            r.run
                        ));
                    } else if end - start < adv {
                        bad.push(format!(
                            "run {} shard {shard}: {adv} advance(s) but epoch moved \
                             only {} — a stamp must have repeated or regressed",
                            r.run,
                            end - start
                        ));
                    }
                }
            }
            check(
                "clock_shard_monotone",
                bad.is_empty(),
                if bad.is_empty() {
                    format!(
                        "per-shard epochs monotone with Δepoch ≥ advances across \
                         {checked} shard-run pair(s)"
                    )
                } else {
                    bad.join("; ")
                },
            );
        }
    }

    // -- conflict provenance (runs with a contention tracker attached) ------
    // The tracker records every abort the retry loop sees, so three exact
    // partitions must hold per run: (a) attributed + unattributed equals
    // the run's abort counter — no abort escapes provenance accounting;
    // (b) the exported top-K plus the residual equals attributed — the
    // space-saving sketch conserves mass through eviction; (c) the
    // victim/owner matrix plus owner_unknown equals the recorded total —
    // every abort lands in exactly one matrix bucket. A fourth check
    // audits the trace against the counters, and degrades to an explicit
    // "skipped" when the ring dropped events (the PR 3 convention):
    // a sampled trace must never fail — or silently pass — an exact gate.
    let contention = {
        let with: Vec<&RunAnalysis> = runs
            .iter()
            .filter(|r| r.prom.get("gstm_contention_attributed_total", &[]).is_some())
            .collect();
        if with.is_empty() {
            None
        } else {
            let mut bad = Vec::new();
            for r in &with {
                let attributed =
                    r.prom.get("gstm_contention_attributed_total", &[]).unwrap_or(0.0) as u64;
                let unattributed =
                    r.prom.get("gstm_contention_unattributed_total", &[]).unwrap_or(0.0) as u64;
                let aborts = r.prom.sum("gstm_aborts_total", &[]) as u64;
                if attributed + unattributed != aborts {
                    bad.push(format!(
                        "run {}: attributed {} + unattributed {} != gstm_aborts_total {}",
                        r.run, attributed, unattributed, aborts
                    ));
                }
            }
            check(
                "contention_partition",
                bad.is_empty(),
                if bad.is_empty() {
                    format!(
                        "{} run(s): attributed + unattributed partitions the abort \
                         counter exactly",
                        with.len()
                    )
                } else {
                    bad.join("; ")
                },
            );

            let mut bad = Vec::new();
            for r in &with {
                let attributed =
                    r.prom.get("gstm_contention_attributed_total", &[]).unwrap_or(0.0) as u64;
                let top_sum = r.prom.sum("gstm_contention_addr_aborts_total", &[]) as u64;
                let residual =
                    r.prom.get("gstm_contention_residual_total", &[]).unwrap_or(0.0) as u64;
                if top_sum + residual != attributed {
                    bad.push(format!(
                        "run {}: Σ top-K {} + residual {} != attributed {}",
                        r.run, top_sum, residual, attributed
                    ));
                }
            }
            check(
                "contention_sketch_partition",
                bad.is_empty(),
                if bad.is_empty() {
                    "top-K + residual conserves the attributed mass in every run".into()
                } else {
                    bad.join("; ")
                },
            );

            let mut bad = Vec::new();
            for r in &with {
                let total = (r.prom.get("gstm_contention_attributed_total", &[]).unwrap_or(0.0)
                    + r.prom.get("gstm_contention_unattributed_total", &[]).unwrap_or(0.0))
                    as u64;
                let pair_sum = r.prom.sum("gstm_contention_pair_aborts_total", &[]) as u64;
                let unknown = r
                    .prom
                    .get("gstm_contention_owner_unknown_total", &[])
                    .unwrap_or(0.0) as u64;
                if pair_sum + unknown != total {
                    bad.push(format!(
                        "run {}: Σ pairs {} + owner_unknown {} != recorded total {}",
                        r.run, pair_sum, unknown, total
                    ));
                }
            }
            check(
                "contention_matrix_partition",
                bad.is_empty(),
                if bad.is_empty() {
                    "victim/owner matrix + owner_unknown partitions the recorded total".into()
                } else {
                    bad.join("; ")
                },
            );

            {
                let exact: Vec<&&RunAnalysis> =
                    with.iter().filter(|r| r.dropped == 0).collect();
                let mut bad = Vec::new();
                for r in &exact {
                    let attributed = r
                        .prom
                        .get("gstm_contention_attributed_total", &[])
                        .unwrap_or(0.0) as u64;
                    let unattributed = r
                        .prom
                        .get("gstm_contention_unattributed_total", &[])
                        .unwrap_or(0.0) as u64;
                    if r.abort_events_with_addr != attributed
                        || r.abort_events != attributed + unattributed
                    {
                        bad.push(format!(
                            "run {}: trace {} abort event(s), {} with addr, vs counters \
                             {} attributed + {} unattributed",
                            r.run,
                            r.abort_events,
                            r.abort_events_with_addr,
                            attributed,
                            unattributed
                        ));
                    }
                }
                check(
                    "contention_trace_attribution",
                    bad.is_empty(),
                    if !bad.is_empty() {
                        bad.join("; ")
                    } else if exact.is_empty() {
                        "skipped: trace incomplete (dropped events)".into()
                    } else {
                        format!(
                            "trace abort/culprit-address events agree with the \
                             attribution counters in {} exact run(s)",
                            exact.len()
                        )
                    },
                );
            }

            // Facts: merge per-run exports by address / by pair.
            let mut by_addr: std::collections::BTreeMap<usize, u64> =
                std::collections::BTreeMap::new();
            let mut by_pair: std::collections::BTreeMap<(u16, u16), u64> =
                std::collections::BTreeMap::new();
            let (mut attributed, mut unattributed, mut replacements) = (0u64, 0u64, 0u64);
            for r in &with {
                attributed +=
                    r.prom.get("gstm_contention_attributed_total", &[]).unwrap_or(0.0) as u64;
                unattributed +=
                    r.prom.get("gstm_contention_unattributed_total", &[]).unwrap_or(0.0) as u64;
                replacements += r
                    .prom
                    .get("gstm_contention_sketch_replacements_total", &[])
                    .unwrap_or(0.0) as u64;
                for s in r.prom.family("gstm_contention_addr_aborts_total") {
                    let Some((_, a)) = s.labels.iter().find(|(k, _)| k == "addr") else {
                        continue;
                    };
                    let Ok(addr) =
                        usize::from_str_radix(a.trim_start_matches("0x"), 16)
                    else {
                        continue;
                    };
                    *by_addr.entry(addr).or_insert(0) += s.value as u64;
                }
                for s in r.prom.family("gstm_contention_pair_aborts_total") {
                    let get = |key: &str| {
                        s.labels
                            .iter()
                            .find(|(k, _)| k == key)
                            .and_then(|(_, v)| v.parse::<u16>().ok())
                    };
                    if let (Some(v), Some(o)) = (get("victim"), get("owner")) {
                        *by_pair.entry((v, o)).or_insert(0) += s.value as u64;
                    }
                }
            }
            let mut top: Vec<(usize, u64)> = by_addr.into_iter().collect();
            top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            top.truncate(16);
            let counts: Vec<u64> = top.iter().map(|&(_, c)| c).collect();
            let hottest_pct = if attributed > 0 {
                100.0 * counts.first().copied().unwrap_or(0) as f64 / attributed as f64
            } else {
                0.0
            };
            let mut pairs: Vec<(u16, u16, u64)> =
                by_pair.into_iter().map(|((v, o), c)| (v, o, c)).collect();
            pairs.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
            Some(ContentionFacts {
                runs_with: with.len(),
                attributed,
                unattributed,
                replacements,
                gini: gini(&counts),
                hottest_pct,
                top,
                pairs,
            })
        }
    };

    // -- policy gates -------------------------------------------------------
    if let (Some(max_pct), Some(c)) = (th.max_hot_addr_pct, contention.as_ref()) {
        check(
            "hot_addr_threshold",
            c.hottest_pct <= max_pct,
            format!(
                "hottest address {} carries {:.2}% of attributed aborts vs limit {max_pct}%",
                c.top.first().map(|&(a, _)| format!("{a:#x}")).unwrap_or_else(|| "n/a".into()),
                c.hottest_pct
            ),
        );
    }
    if th.fail_on_degraded {
        check(
            "degradation",
            !degradation.any(),
            format!(
                "{} breaker trip(s), {} model rejection(s), {} guardian restart(s), \
                 {} failed rep(s)",
                degradation.breaker_trips,
                degradation.model_rejections,
                degradation.guardian_restarts,
                degradation.failed_reps.len()
            ),
        );
    }
    if let Some(max_cv) = th.max_cv_pct {
        let worst = (0..threads)
            .map(|t| {
                if mean_secs[t] > 0.0 {
                    100.0 * std_dev_secs[t] / mean_secs[t]
                } else {
                    0.0
                }
            })
            .fold(0.0f64, f64::max);
        check(
            "cv_threshold",
            worst <= max_cv,
            format!("worst per-thread time CV {worst:.2}% vs limit {max_cv}%"),
        );
    }
    if let Some(max_nd) = th.max_non_determinism {
        check(
            "non_determinism_threshold",
            summary.non_determinism <= max_nd,
            format!("non-determinism {} vs limit {max_nd}", summary.non_determinism),
        );
    }
    if let Some(max_ar) = th.max_abort_ratio_pct {
        let ratio = if commits + aborts > 0 {
            100.0 * aborts as f64 / (commits + aborts) as f64
        } else {
            0.0
        };
        check(
            "abort_ratio_threshold",
            ratio <= max_ar,
            format!("abort ratio {ratio:.2}% vs limit {max_ar}%"),
        );
    }

    // -- model drift (from the final run's exposition) ----------------------
    let drift = runs.last().and_then(|r| {
        let staleness = r.prom.get("gstm_model_staleness", &[])?;
        Some(DriftFacts {
            staleness: staleness as u64,
            off_model_pct: r.prom.get("gstm_model_off_model_pct", &[]).unwrap_or(0.0),
            kl_mean_nats: r
                .prom
                .get("gstm_model_kl_divergence_nats", &[("stat", "mean")])
                .unwrap_or(0.0),
            kl_max_nats: r
                .prom
                .get("gstm_model_kl_divergence_nats", &[("stat", "max")])
                .unwrap_or(0.0),
            profiled_metric_pct: r
                .prom
                .get("gstm_model_guidance_metric_pct", &[("source", "profiled")])
                .unwrap_or(0.0),
            observed_metric_pct: r
                .prom
                .get("gstm_model_guidance_metric_pct", &[("source", "observed")]),
        })
    });
    if let Some(d) = &drift {
        if th.fail_on_stale {
            check(
                "staleness",
                d.staleness < 3,
                format!("model verdict: {}", staleness_label(d.staleness)),
            );
        }
        if let Some(max_off) = th.max_off_model_pct {
            check(
                "off_model_threshold",
                d.off_model_pct <= max_off,
                format!("off-model transitions {:.2}% vs limit {max_off}%", d.off_model_pct),
            );
        }
    }

    CampaignReport {
        stem: stem.to_string(),
        runs: runs.len(),
        threads,
        checks,
        std_dev_secs,
        mean_secs,
        tail_metric: tails,
        non_determinism: nd,
        commits,
        aborts,
        commit_p50_ns: runs.iter().map(|r| quantile(&r.commit_ns, 0.50)).collect(),
        commit_p99_ns: runs.iter().map(|r| quantile(&r.commit_ns, 0.99)).collect(),
        model_swaps,
        epochs,
        drift,
        degradation,
        contention,
        trace_dropped: dropped_total,
        ops: None,
    }
}

// ---------------------------------------------------------------------------
// Campaign loading
// ---------------------------------------------------------------------------

/// Load `<stem>_run<r>_telemetry.{jsonl,prom}` pairs (consecutive `r`
/// from 0) plus the two harness CSVs from `dir`, and analyze them.
pub fn analyze_dir(dir: &Path, stem: &str, th: &Thresholds) -> Result<CampaignReport, String> {
    let read = |name: String| -> Result<String, String> {
        std::fs::read_to_string(dir.join(&name)).map_err(|e| format!("{name}: {e}"))
    };
    let csv = parse_runs_csv(&read(format!("{stem}_runs.csv"))?)?;
    let summary = parse_summary_csv(&read(format!("{stem}_guided_summary.csv"))?)?;
    // Missing file = artifacts from a harness predating campaign
    // resilience; present-but-empty = every repetition completed.
    let failures = match std::fs::read_to_string(dir.join(format!("{stem}_failures.csv"))) {
        Ok(text) => parse_failures_csv(&text)?,
        Err(_) => Vec::new(),
    };
    let threads = csv.iter().map(|r| r.thread + 1).max().unwrap_or(0);
    let mut runs = Vec::new();
    loop {
        let r = runs.len();
        let prom_name = format!("{stem}_run{r}_telemetry.prom");
        if !dir.join(&prom_name).exists() {
            break;
        }
        let jsonl = read(format!("{stem}_run{r}_telemetry.jsonl"))?;
        runs.push(RunAnalysis::from_artifacts(r, &jsonl, &read(prom_name)?, threads)?);
    }
    if runs.is_empty() {
        return Err(format!("no {stem}_run<r>_telemetry.prom artifacts in {}", dir.display()));
    }
    let mut report = analyze_campaign_with_failures(stem, &runs, &csv, &summary, &failures, th);
    // The ops plane's frozen exposition and incident dumps ride along
    // when the campaign ran with `--serve`/`--slo`; fold them in.
    if let Some((facts, checks)) = analyze_ops(dir, stem)? {
        report.checks.extend(checks);
        report.ops = Some(facts);
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Live ops plane ingestion (ops.prom + incident flight-recorder dumps)
// ---------------------------------------------------------------------------

/// Human-readable label for a `gstm_slo_state` code.
pub fn slo_state_label(code: u64) -> &'static str {
    match code {
        0 => "ok",
        1 => "warn",
        _ => "incident",
    }
}

/// Facts recovered from the harness's frozen `/metrics` exposition
/// (`ops.prom`) and the incident flight-recorder dumps next to it.
#[derive(Clone, Debug)]
pub struct OpsFacts {
    /// Windows closed over the campaign (`gstm_windows_closed_total`).
    pub windows_closed: u64,
    /// Roll ticks, including idle ones that closed nothing.
    pub rolls: u64,
    /// Windows still in the ring at freeze time.
    pub retained_windows: usize,
    /// Windows folded into the evicted rollup.
    pub evicted_windows: u64,
    /// Final SLO state code (0 ok / 1 warn / 2 incident).
    pub slo_state: u64,
    /// Windows the watchdog judged (quiet windows are skipped).
    pub slo_windows: u64,
    /// Judged windows that breached at least one SLO rule.
    pub breached_windows: u64,
    /// Incidents declared (`gstm_slo_incidents_total`).
    pub incidents_total: u64,
    /// One entry per `incident<seq>.json` found, in seq order.
    pub incidents: Vec<IncidentFacts>,
}

/// Scalar facts lifted from one `incident<seq>.json` dump.
#[derive(Clone, Debug)]
pub struct IncidentFacts {
    /// Incident ordinal (0-based).
    pub seq: u64,
    /// Caller-supplied stamp (wall clock, or a fixed replay token).
    pub stamp: String,
    /// Window index that tripped the incident.
    pub tripped_window: u64,
    /// SLO state entered ("incident").
    pub state: String,
    /// Windows carried in the dump.
    pub windows: usize,
    /// SLO transitions in the dump's timeline.
    pub transitions: usize,
    /// Trace events drained into the dump.
    pub trace_events: usize,
}

/// Extract a top-level `  "key": N,` scalar from a pretty-printed dump.
fn incident_u64(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\n  \"{key}\": ");
    let at = text.find(&pat)? + pat.len();
    let rest = &text[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// Extract a top-level `  "key": "..."` string (no escape handling —
/// the fields read this way never contain escapes).
fn incident_str(text: &str, key: &str) -> Option<String> {
    let pat = format!("\n  \"{key}\": \"");
    let at = text.find(&pat)? + pat.len();
    let rest = &text[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parse one incident flight-recorder dump. Rejects schema mismatches
/// and non-incident documents with a clear error; `name` prefixes every
/// message.
pub fn parse_incident_json(name: &str, text: &str) -> Result<IncidentFacts, String> {
    let schema = incident_u64(text, "schema")
        .ok_or_else(|| format!("{name}: no \"schema\" field — not a gstm incident dump"))?;
    if schema != gstm_core::telemetry::SCHEMA_VERSION as u64 {
        return Err(format!(
            "{name}: incident dump schema {schema} but this build reads schema {}; \
             re-export with a matching gstm version",
            gstm_core::telemetry::SCHEMA_VERSION
        ));
    }
    match incident_str(text, "kind").as_deref() {
        Some("gstm_incident") => {}
        other => {
            return Err(format!(
                "{name}: kind {:?} is not \"gstm_incident\"",
                other.unwrap_or("missing")
            ))
        }
    }
    Ok(IncidentFacts {
        seq: incident_u64(text, "seq")
            .ok_or_else(|| format!("{name}: missing \"seq\""))?,
        stamp: incident_str(text, "stamp")
            .ok_or_else(|| format!("{name}: missing \"stamp\""))?,
        tripped_window: incident_u64(text, "tripped_window")
            .ok_or_else(|| format!("{name}: missing \"tripped_window\""))?,
        state: incident_str(text, "state")
            .ok_or_else(|| format!("{name}: missing \"state\""))?,
        // The serializers emit these keys nowhere else: `"index":` only
        // in window objects, `{"window":` only in timeline transitions,
        // `"txn":` only in trace events.
        windows: text.matches("{\"index\":").count(),
        transitions: text.matches("{\"window\":").count(),
        trace_events: text.matches("\"txn\":").count(),
    })
}

/// The exact window-partition cross-check over a frozen ops exposition:
/// for commits, aborts, and gate outcomes, the retained per-window
/// deltas plus the evicted rollup must equal the cumulative counter
/// *exactly*, and retained + evicted window counts must equal
/// `gstm_windows_closed_total`.
pub fn ops_partition_check(prom: &PromSnapshot) -> Check {
    let retained = prom.family("gstm_window_commits").count() as u64;
    let evicted_n = prom.get("gstm_window_evicted_windows_total", &[]).unwrap_or(0.0) as u64;
    let closed = prom.get("gstm_windows_closed_total", &[]).unwrap_or(0.0) as u64;
    let ev = |counter: &str| {
        prom.get("gstm_window_evicted_total", &[("counter", counter)]).unwrap_or(0.0) as u64
    };
    let terms: [(&str, u64, u64); 4] = [
        (
            "commits",
            prom.sum("gstm_window_commits", &[]) as u64 + ev("commits"),
            prom.get("gstm_commits_total", &[]).unwrap_or(0.0) as u64,
        ),
        (
            "aborts",
            prom.sum("gstm_window_aborts", &[]) as u64 + ev("aborts"),
            prom.sum("gstm_aborts_total", &[]) as u64,
        ),
        (
            "gate",
            prom.sum("gstm_window_gate", &[]) as u64
                + ev("gate_passed")
                + ev("gate_waited")
                + ev("gate_released"),
            prom.sum("gstm_gate_outcomes_total", &[]) as u64,
        ),
        ("windows", retained + evicted_n, closed),
    ];
    let bad: Vec<String> = terms
        .iter()
        .filter(|(_, lhs, rhs)| lhs != rhs)
        .map(|(what, lhs, rhs)| format!("{what}: Σ windows + evicted = {lhs} ≠ cumulative {rhs}"))
        .collect();
    Check {
        name: "window_partition".into(),
        pass: bad.is_empty(),
        detail: if bad.is_empty() {
            format!(
                "{retained} retained + {evicted_n} evicted window(s) partition the cumulative \
                 commit/abort/gate counters exactly"
            )
        } else {
            bad.join("; ")
        },
    }
}

/// Load the ops-plane artifacts from `dir`, when present: the frozen
/// exposition (`<stem>_ops.prom`, falling back to `ops.prom`) and every
/// `incident<seq>.json` next to it. Returns `Ok(None)` when the
/// campaign ran without the live ops plane; schema mismatches are hard
/// errors.
pub fn analyze_ops(dir: &Path, stem: &str) -> Result<Option<(OpsFacts, Vec<Check>)>, String> {
    let path = [format!("{stem}_ops.prom"), "ops.prom".into()]
        .into_iter()
        .map(|n| dir.join(n))
        .find(|p| p.exists());
    let Some(path) = path else { return Ok(None) };
    let name = path.file_name().unwrap_or_default().to_string_lossy().into_owned();
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("{name}: {e}"))?;
    let prom = PromSnapshot::parse(&text).map_err(|e| format!("{name}: {e}"))?;
    // The exposition stamps its schema as a label on `gstm_build_info`;
    // a mismatch means the reader and writer disagree on family
    // semantics, so refuse rather than mis-ingest.
    if let Some(s) = prom.family("gstm_build_info").next() {
        let schema = s
            .labels
            .iter()
            .find(|(k, _)| k == "schema")
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .ok_or_else(|| format!("{name}: gstm_build_info has no numeric schema label"))?;
        if schema != gstm_core::telemetry::SCHEMA_VERSION as u64 {
            return Err(format!(
                "{name}: exposition schema {schema} but this build reads schema {}; \
                 re-export with a matching gstm version",
                gstm_core::telemetry::SCHEMA_VERSION
            ));
        }
    }
    let mut incidents = Vec::new();
    loop {
        let n = incidents.len();
        let inc_path = dir.join(format!("incident{n}.json"));
        if !inc_path.exists() {
            break;
        }
        let inc_name = format!("incident{n}.json");
        let body = std::fs::read_to_string(&inc_path).map_err(|e| format!("{inc_name}: {e}"))?;
        incidents.push(parse_incident_json(&inc_name, &body)?);
    }
    let facts = OpsFacts {
        windows_closed: prom.get("gstm_windows_closed_total", &[]).unwrap_or(0.0) as u64,
        rolls: prom.get("gstm_window_rolls_total", &[]).unwrap_or(0.0) as u64,
        retained_windows: prom.family("gstm_window_commits").count(),
        evicted_windows: prom.get("gstm_window_evicted_windows_total", &[]).unwrap_or(0.0)
            as u64,
        slo_state: prom.get("gstm_slo_state", &[]).unwrap_or(0.0) as u64,
        slo_windows: prom.get("gstm_slo_windows_total", &[]).unwrap_or(0.0) as u64,
        breached_windows: prom.get("gstm_slo_breached_windows_total", &[]).unwrap_or(0.0)
            as u64,
        incidents_total: prom.get("gstm_slo_incidents_total", &[]).unwrap_or(0.0) as u64,
        incidents,
    };
    let mut checks = vec![ops_partition_check(&prom)];
    if facts.incidents_total > 0 || !facts.incidents.is_empty() {
        checks.push(Check {
            name: "incident_artifacts".into(),
            pass: facts.incidents.len() as u64 == facts.incidents_total,
            detail: format!(
                "{} flight-recorder dump(s) for {} declared incident(s)",
                facts.incidents.len(),
                facts.incidents_total
            ),
        });
    }
    Ok(Some((facts, checks)))
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn jf_vec(xs: &[f64]) -> String {
    format!("[{}]", xs.iter().map(|&x| jf(x)).collect::<Vec<_>>().join(","))
}

fn ju_vec(xs: &[u64]) -> String {
    format!("[{}]", xs.iter().map(u64::to_string).collect::<Vec<_>>().join(","))
}

/// Serialize the report as the machine-readable `verdict.json`.
pub fn render_verdict_json(r: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": {},", gstm_core::telemetry::SCHEMA_VERSION);
    let _ = writeln!(out, "  \"stem\": \"{}\",", esc_json(&r.stem));
    let _ = writeln!(out, "  \"runs\": {},", r.runs);
    let _ = writeln!(out, "  \"threads\": {},", r.threads);
    let _ = writeln!(out, "  \"pass\": {},", r.pass());
    let _ = writeln!(out, "  \"checks\": [");
    for (i, c) in r.checks.iter().enumerate() {
        let comma = if i + 1 < r.checks.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"pass\": {}, \"detail\": \"{}\"}}{comma}",
            esc_json(&c.name),
            c.pass,
            esc_json(&c.detail)
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"metrics\": {{");
    let _ = writeln!(out, "    \"std_dev_secs\": {},", jf_vec(&r.std_dev_secs));
    let _ = writeln!(out, "    \"mean_secs\": {},", jf_vec(&r.mean_secs));
    let _ = writeln!(out, "    \"tail_metric\": {},", ju_vec(&r.tail_metric));
    let _ = writeln!(out, "    \"non_determinism\": {},", r.non_determinism);
    let _ = writeln!(out, "    \"commits\": {},", r.commits);
    let _ = writeln!(out, "    \"aborts\": {},", r.aborts);
    let _ = writeln!(out, "    \"commit_p50_ns\": {},", ju_vec(&r.commit_p50_ns));
    let _ = writeln!(out, "    \"commit_p99_ns\": {},", ju_vec(&r.commit_p99_ns));
    let _ = writeln!(out, "    \"degradation\": {{");
    let d = &r.degradation;
    let _ = writeln!(out, "      \"degraded\": {},", d.any());
    let _ = writeln!(out, "      \"breaker_trips\": {},", d.breaker_trips);
    let _ = writeln!(out, "      \"breaker_recloses\": {},", d.breaker_recloses);
    let _ = writeln!(out, "      \"breaker_probes\": {},", d.breaker_probes);
    let _ = writeln!(out, "      \"model_rejections\": {},", d.model_rejections);
    let _ = writeln!(out, "      \"guardian_restarts\": {},", d.guardian_restarts);
    let _ = writeln!(
        out,
        "      \"final_breaker_state\": \"{}\",",
        breaker_state_label(d.final_breaker_state)
    );
    let _ = writeln!(out, "      \"failed_reps\": [");
    for (i, f) in d.failed_reps.iter().enumerate() {
        let comma = if i + 1 < d.failed_reps.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "        {{\"phase\": \"{}\", \"rep\": {}, \"cause\": \"{}\"}}{comma}",
            esc_json(&f.phase),
            f.rep,
            esc_json(&f.cause)
        );
    }
    let _ = writeln!(out, "      ]");
    let _ = writeln!(out, "    }},");
    let _ = write!(out, "    \"model_swaps\": {}", r.model_swaps);
    if r.model_swaps > 0 {
        let _ = writeln!(out, ",");
        let _ = writeln!(out, "    \"epochs\": [");
        for (i, (run, s)) in r.epochs.iter().enumerate() {
            let comma = if i + 1 < r.epochs.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "      {{\"run\": {run}, \"epoch\": {}, \"swap_verdict\": {}, \
                 \"transitions\": {}, \"commits\": {}}}{comma}",
                s.epoch,
                s.swap_verdict.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
                s.transitions,
                s.commits
            );
        }
        let _ = write!(out, "    ]");
    }
    if let Some(c) = &r.contention {
        let _ = writeln!(out, ",");
        let _ = writeln!(out, "    \"contention\": {{");
        let _ = writeln!(out, "      \"runs_with\": {},", c.runs_with);
        let _ = writeln!(out, "      \"attributed\": {},", c.attributed);
        let _ = writeln!(out, "      \"unattributed\": {},", c.unattributed);
        let _ = writeln!(out, "      \"attribution_pct\": {},", jf(c.attribution_pct()));
        let _ = writeln!(out, "      \"sketch_replacements\": {},", c.replacements);
        let _ = writeln!(out, "      \"gini\": {},", jf(c.gini));
        let _ = writeln!(out, "      \"hottest_pct\": {},", jf(c.hottest_pct));
        let _ = writeln!(out, "      \"top\": [");
        for (i, &(addr, count)) in c.top.iter().enumerate() {
            let comma = if i + 1 < c.top.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"addr\": \"{addr:#x}\", \"aborts\": {count}}}{comma}"
            );
        }
        let _ = writeln!(out, "      ],");
        let _ = writeln!(out, "      \"pairs\": [");
        for (i, &(v, o, count)) in c.pairs.iter().enumerate() {
            let comma = if i + 1 < c.pairs.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"victim\": {v}, \"owner\": {o}, \"aborts\": {count}}}{comma}"
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = write!(out, "    }}");
    }
    if let Some(o) = &r.ops {
        let _ = writeln!(out, ",");
        let _ = writeln!(out, "    \"ops\": {{");
        let _ = writeln!(out, "      \"windows_closed\": {},", o.windows_closed);
        let _ = writeln!(out, "      \"rolls\": {},", o.rolls);
        let _ = writeln!(out, "      \"retained_windows\": {},", o.retained_windows);
        let _ = writeln!(out, "      \"evicted_windows\": {},", o.evicted_windows);
        let _ = writeln!(out, "      \"slo_state\": \"{}\",", slo_state_label(o.slo_state));
        let _ = writeln!(out, "      \"slo_windows\": {},", o.slo_windows);
        let _ = writeln!(out, "      \"breached_windows\": {},", o.breached_windows);
        let _ = writeln!(out, "      \"trace_dropped\": {},", r.trace_dropped);
        let _ = writeln!(out, "      \"incidents\": [");
        for (i, inc) in o.incidents.iter().enumerate() {
            let comma = if i + 1 < o.incidents.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"seq\": {}, \"stamp\": \"{}\", \"tripped_window\": {}, \
                 \"state\": \"{}\", \"windows\": {}, \"transitions\": {}, \
                 \"trace_events\": {}}}{comma}",
                inc.seq,
                esc_json(&inc.stamp),
                inc.tripped_window,
                esc_json(&inc.state),
                inc.windows,
                inc.transitions,
                inc.trace_events
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = write!(out, "    }}");
    }
    if let Some(d) = &r.drift {
        let _ = writeln!(out, ",");
        let _ = writeln!(out, "    \"model\": {{");
        let _ = writeln!(
            out,
            "      \"staleness\": \"{}\",",
            staleness_label(d.staleness)
        );
        let _ = writeln!(out, "      \"staleness_code\": {},", d.staleness);
        let _ = writeln!(out, "      \"off_model_pct\": {},", jf(d.off_model_pct));
        let _ = writeln!(out, "      \"kl_mean_nats\": {},", jf(d.kl_mean_nats));
        let _ = writeln!(out, "      \"kl_max_nats\": {},", jf(d.kl_max_nats));
        let _ = writeln!(
            out,
            "      \"profiled_metric_pct\": {},",
            jf(d.profiled_metric_pct)
        );
        let _ = writeln!(
            out,
            "      \"observed_metric_pct\": {}",
            d.observed_metric_pct.map(jf).unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(out, "    }}");
    } else {
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Render the human-readable markdown report.
pub fn render_markdown(r: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# gstm-analyze: {}", r.stem);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "**{}** — {} repetition(s), {} thread(s), {} commit(s), {} abort(s); \
         trace events dropped: {}; guardian restarts: {}.",
        if r.pass() { "PASS" } else { "FAIL" },
        r.runs,
        r.threads,
        r.commits,
        r.aborts,
        r.trace_dropped,
        r.degradation.guardian_restarts
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "## Cross-run metrics");
    let _ = writeln!(out);
    let _ = writeln!(out, "| thread | mean s | std-dev s | abort tail Σj² |");
    let _ = writeln!(out, "|-------:|-------:|----------:|---------------:|");
    for t in 0..r.threads {
        let _ = writeln!(
            out,
            "| {t} | {:.6} | {:.6} | {} |",
            r.mean_secs.get(t).copied().unwrap_or(0.0),
            r.std_dev_secs.get(t).copied().unwrap_or(0.0),
            r.tail_metric.get(t).copied().unwrap_or(0)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Non-determinism (distinct TSS across reconstructed Tseqs): **{}**.",
        r.non_determinism
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "## Commit latency per run");
    let _ = writeln!(out);
    let _ = writeln!(out, "| run | p50 ns | p99 ns |");
    let _ = writeln!(out, "|----:|-------:|-------:|");
    for i in 0..r.runs {
        let _ = writeln!(
            out,
            "| {i} | {} | {} |",
            r.commit_p50_ns.get(i).copied().unwrap_or(0),
            r.commit_p99_ns.get(i).copied().unwrap_or(0)
        );
    }
    if r.runs > 1 {
        let spread = |xs: &[u64]| {
            let (lo, hi) = (
                xs.iter().min().copied().unwrap_or(0),
                xs.iter().max().copied().unwrap_or(0),
            );
            format!("{lo}–{hi} ns")
        };
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Cross-run spread: p50 {}, p99 {}.",
            spread(&r.commit_p50_ns),
            spread(&r.commit_p99_ns)
        );
    }
    if r.model_swaps > 0 {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "## Model epochs ({} hot-swap(s) across the campaign)",
            r.model_swaps
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "| run | epoch | installed by | transitions | commits |");
        let _ = writeln!(out, "|----:|------:|--------------|------------:|--------:|");
        for (run, s) in &r.epochs {
            let _ = writeln!(
                out,
                "| {run} | {} | {} | {} | {} |",
                s.epoch,
                s.swap_verdict
                    .map(|v| format!("swap ({})", staleness_label(v as u64)))
                    .unwrap_or_else(|| "initial model".into()),
                s.transitions,
                s.commits
            );
        }
    }
    {
        let d = &r.degradation;
        let _ = writeln!(out);
        let _ = writeln!(out, "## Degradation events");
        let _ = writeln!(out);
        if !d.any() && d.breaker_recloses == 0 && d.events.is_empty() {
            let _ = writeln!(out, "None — the campaign ran clean.");
        } else {
            let _ = writeln!(
                out,
                "- breaker: {} trip(s), {} half-open probe(s), {} re-close(s); \
                 final state **{}**",
                d.breaker_trips,
                d.breaker_probes,
                d.breaker_recloses,
                breaker_state_label(d.final_breaker_state)
            );
            let _ = writeln!(out, "- model files rejected at load: {}", d.model_rejections);
            let _ = writeln!(out, "- guardian restarts after panic: {}", d.guardian_restarts);
            let _ = writeln!(out, "- panicked repetitions: {}", d.failed_reps.len());
            if !d.events.is_empty() {
                let _ = writeln!(out);
                let _ = writeln!(out, "| run | transition | cause |");
                let _ = writeln!(out, "|----:|------------|-------|");
                for (run, e) in &d.events {
                    let _ = writeln!(
                        out,
                        "| {run} | {} → {} | {} |",
                        breaker_state_label(e.from as u64),
                        breaker_state_label(e.to as u64),
                        gstm_core::breaker::BreakerCause::label_for(e.cause)
                    );
                }
            }
            if !d.failed_reps.is_empty() {
                let _ = writeln!(out);
                let _ = writeln!(out, "| phase | rep | cause |");
                let _ = writeln!(out, "|-------|----:|-------|");
                for f in &d.failed_reps {
                    let _ = writeln!(
                        out,
                        "| {} | {} | {} |",
                        f.phase,
                        f.rep,
                        f.cause.replace('|', "\\|")
                    );
                }
            }
        }
    }
    if let Some(o) = &r.ops {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Live ops plane");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} window(s) closed over {} roll tick(s) ({} retained, {} evicted); \
             SLO finished **{}** after judging {} window(s), {} breached, \
             {} incident(s).",
            o.windows_closed,
            o.rolls,
            o.retained_windows,
            o.evicted_windows,
            slo_state_label(o.slo_state),
            o.slo_windows,
            o.breached_windows,
            o.incidents_total
        );
        if !o.incidents.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "## Incident timeline");
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "| seq | stamp | tripped window | state | windows | transitions | trace events |"
            );
            let _ = writeln!(
                out,
                "|----:|-------|---------------:|-------|--------:|------------:|-------------:|"
            );
            for i in &o.incidents {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | {} |",
                    i.seq,
                    i.stamp.replace('|', "\\|"),
                    i.tripped_window,
                    i.state,
                    i.windows,
                    i.transitions,
                    i.trace_events
                );
            }
        }
    }
    if let Some(c) = &r.contention {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Contention report");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} run(s) with conflict provenance: **{}** attributed abort(s), \
             {} unattributed ({:.1}% attribution rate), {} sketch eviction(s).",
            c.runs_with,
            c.attributed,
            c.unattributed,
            c.attribution_pct(),
            c.replacements
        );
        if !c.top.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "| rank | address | aborts | share |");
            let _ = writeln!(out, "|-----:|---------|-------:|------:|");
            for (rank, &(addr, count)) in c.top.iter().enumerate() {
                let share = if c.attributed > 0 {
                    100.0 * count as f64 / c.attributed as f64
                } else {
                    0.0
                };
                let _ = writeln!(out, "| {rank} | `{addr:#x}` | {count} | {share:.1}% |");
            }
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "Hot-set concentration (Gini over the top-{}): **{:.3}**; \
                 hottest address carries {:.1}% of attributed aborts.",
                c.top.len(),
                c.gini,
                c.hottest_pct
            );
        }
        if !c.pairs.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "Top thread conflicts (victim ← owner):");
            let _ = writeln!(out);
            for &(v, o, count) in c.pairs.iter().take(8) {
                let _ = writeln!(out, "- thread {v} aborted by thread {o}: {count}");
            }
        }
    }
    if let Some(d) = &r.drift {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Model drift");
        let _ = writeln!(out);
        let _ = writeln!(out, "- verdict: **{}**", staleness_label(d.staleness));
        let _ = writeln!(out, "- off-model transitions: {:.2}%", d.off_model_pct);
        let _ = writeln!(
            out,
            "- KL divergence (obs ‖ prof): mean {:.4} nats, max {:.4} nats",
            d.kl_mean_nats, d.kl_max_nats
        );
        let _ = write!(
            out,
            "- guidance metric: profiled {:.1}%",
            d.profiled_metric_pct
        );
        if let Some(obs) = d.observed_metric_pct {
            let _ = writeln!(out, ", observed {obs:.1}%");
        } else {
            let _ = writeln!(out, ", observed n/a");
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "## Checks");
    let _ = writeln!(out);
    let _ = writeln!(out, "| check | result | detail |");
    let _ = writeln!(out, "|-------|--------|--------|");
    for c in &r.checks {
        let _ = writeln!(
            out,
            "| {} | {} | {} |",
            c.name,
            if c.pass { "pass" } else { "FAIL" },
            c.detail.replace('|', "\\|")
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Server tick analysis (`gstm-server`'s ticks.jsonl export)
// ---------------------------------------------------------------------------

/// One row of the server's `ticks.jsonl` export.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServerTickRow {
    /// Tick ordinal.
    pub tick: u64,
    /// Engine frame time, nanoseconds (synthetic cost in deterministic
    /// chaos runs, where it doubles as the replayable clock).
    pub frame_ns: u64,
    /// Measured tick cost in budget units.
    pub cost: u64,
    /// Ladder rung in force during the tick.
    pub ladder: u8,
    /// Actions offered this tick.
    pub offered: u64,
    /// Actions executed.
    pub executed: u64,
    /// Actions shed by admission control.
    pub shed: u64,
    /// Live sessions at tick end.
    pub sessions: u64,
}

/// Pull `"key":<digits>` out of one JSONL line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse a server `ticks.jsonl` body. Returns the rows plus the count of
/// evicted early ticks (the optional leading `{"truncated_ticks":N}`
/// marker).
pub fn parse_ticks_jsonl(text: &str) -> Result<(Vec<ServerTickRow>, u64), String> {
    let mut rows = Vec::new();
    let mut truncated = 0;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(n) = json_u64(line, "truncated_ticks") {
            truncated = n;
            continue;
        }
        let row = ServerTickRow {
            tick: json_u64(line, "tick").ok_or(format!("line {}: no tick field", i + 1))?,
            frame_ns: json_u64(line, "frame_ns").unwrap_or(0),
            cost: json_u64(line, "cost").unwrap_or(0),
            ladder: json_u64(line, "ladder").unwrap_or(0) as u8,
            offered: json_u64(line, "offered").unwrap_or(0),
            executed: json_u64(line, "executed").unwrap_or(0),
            shed: json_u64(line, "shed").unwrap_or(0),
            sessions: json_u64(line, "sessions").unwrap_or(0),
        };
        rows.push(row);
    }
    Ok((rows, truncated))
}

/// Facts derived from a server run's tick log.
#[derive(Clone, Debug, Default)]
pub struct ServerFacts {
    /// Ticks analyzed.
    pub ticks: usize,
    /// Early ticks evicted from the server's record ring.
    pub truncated: u64,
    /// Mean frame time, nanoseconds.
    pub frame_mean_ns: f64,
    /// Frame-time coefficient of variation, percent.
    pub frame_cv_pct: f64,
    /// Frame-time median, nanoseconds.
    pub frame_p50_ns: u64,
    /// Frame-time 99th percentile, nanoseconds.
    pub frame_p99_ns: u64,
    /// Σ actions offered.
    pub offered: u64,
    /// Σ actions executed.
    pub executed: u64,
    /// Σ actions shed.
    pub shed: u64,
    /// Highest ladder rung reached.
    pub max_rung: u8,
    /// Ticks spent at each rung (index = rung code).
    pub rung_ticks: [u64; 4],
    /// Rung changes between consecutive ticks.
    pub ladder_moves: u64,
}

/// Run the server checks over a parsed tick log: per-tick shed
/// accounting, ladder-trajectory sanity, and the optional
/// frame-variance and frame-p99 gates.
pub fn analyze_server_ticks(
    rows: &[ServerTickRow],
    truncated: u64,
    th: &Thresholds,
) -> (ServerFacts, Vec<Check>) {
    let mut checks = Vec::new();
    let mut check = |name: &str, pass: bool, detail: String| {
        checks.push(Check { name: name.into(), pass, detail });
    };

    let mut facts = ServerFacts { ticks: rows.len(), truncated, ..ServerFacts::default() };
    let mut frames: Vec<u64> = rows.iter().map(|r| r.frame_ns).collect();
    let n = frames.len() as f64;
    if !frames.is_empty() {
        facts.frame_mean_ns = frames.iter().map(|&f| f as f64).sum::<f64>() / n;
        let var = frames
            .iter()
            .map(|&f| {
                let d = f as f64 - facts.frame_mean_ns;
                d * d
            })
            .sum::<f64>()
            / n;
        if facts.frame_mean_ns > 0.0 {
            facts.frame_cv_pct = 100.0 * var.sqrt() / facts.frame_mean_ns;
        }
        frames.sort_unstable();
        facts.frame_p50_ns = quantile(&frames, 0.50);
        facts.frame_p99_ns = quantile(&frames, 0.99);
    }

    let mut shed_bad = 0usize;
    let mut ladder_bad = 0usize;
    let mut prev_rung: Option<u8> = None;
    for r in rows {
        facts.offered += r.offered;
        facts.executed += r.executed;
        facts.shed += r.shed;
        if r.executed + r.shed != r.offered {
            shed_bad += 1;
        }
        if r.ladder > 3 {
            ladder_bad += 1;
        } else {
            facts.rung_ticks[r.ladder as usize] += 1;
            facts.max_rung = facts.max_rung.max(r.ladder);
        }
        if let Some(p) = prev_rung {
            if p != r.ladder {
                facts.ladder_moves += 1;
                if p.abs_diff(r.ladder) > 1 {
                    ladder_bad += 1;
                }
            }
        }
        prev_rung = Some(r.ladder);
    }

    check(
        "server_ticks",
        !rows.is_empty(),
        format!("{} tick(s), {} evicted early", rows.len(), truncated),
    );
    check(
        "server_shed_accounting",
        shed_bad == 0,
        format!(
            "executed {} + shed {} vs offered {}: {} tick(s) off",
            facts.executed, facts.shed, facts.offered, shed_bad
        ),
    );
    check(
        "server_ladder_sanity",
        ladder_bad == 0,
        format!(
            "max rung {}, {} move(s), {} invalid step(s)/code(s)",
            facts.max_rung, facts.ladder_moves, ladder_bad
        ),
    );
    if let Some(max_cv) = th.max_frame_cv_pct {
        check(
            "server_frame_cv",
            facts.frame_cv_pct <= max_cv,
            format!("frame-time CV {:.1}% vs max {max_cv}%", facts.frame_cv_pct),
        );
    }
    if let Some(max_ms) = th.max_frame_p99_ms {
        let p99_ms = facts.frame_p99_ns as f64 / 1e6;
        check(
            "server_frame_p99",
            p99_ms <= max_ms,
            format!("frame p99 {p99_ms:.3}ms vs max {max_ms}ms"),
        );
    }
    (facts, checks)
}

/// Markdown report for a server tick analysis.
pub fn render_server_markdown(facts: &ServerFacts, checks: &[Check]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# gstm-analyze: server ticks");
    let _ = writeln!(out);
    let _ = writeln!(out, "- ticks: {} ({} evicted early)", facts.ticks, facts.truncated);
    let _ = writeln!(
        out,
        "- frame time: mean {:.0}ns, p50 {}ns, p99 {}ns, CV {:.1}%",
        facts.frame_mean_ns, facts.frame_p50_ns, facts.frame_p99_ns, facts.frame_cv_pct
    );
    let _ = writeln!(
        out,
        "- actions: {} offered, {} executed, {} shed",
        facts.offered, facts.executed, facts.shed
    );
    let _ = writeln!(
        out,
        "- ladder: max rung {}, {} move(s); ticks per rung {:?}",
        facts.max_rung, facts.ladder_moves, facts.rung_ticks
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "| check | result | detail |");
    let _ = writeln!(out, "|-------|--------|--------|");
    for c in checks {
        let _ = writeln!(
            out,
            "| {} | {} | {} |",
            c.name,
            if c.pass { "pass" } else { "FAIL" },
            c.detail.replace('|', "\\|")
        );
    }
    out
}

/// Verdict JSON for a server tick analysis.
pub fn render_server_verdict_json(facts: &ServerFacts, checks: &[Check]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let pass = checks.iter().all(|c| c.pass);
    let _ = write!(
        out,
        "{{\"pass\":{pass},\"ticks\":{},\"truncated\":{},\"frame_cv_pct\":{:.3},\
         \"frame_p99_ns\":{},\"offered\":{},\"executed\":{},\"shed\":{},\"max_rung\":{},\
         \"ladder_moves\":{},\"checks\":[",
        facts.ticks,
        facts.truncated,
        facts.frame_cv_pct,
        facts.frame_p99_ns,
        facts.offered,
        facts.executed,
        facts.shed,
        facts.max_rung,
        facts.ladder_moves,
    );
    for (i, c) in checks.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let detail = c.detail.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = write!(
            out,
            "{sep}{{\"name\":\"{}\",\"pass\":{},\"detail\":\"{detail}\"}}",
            c.name, c.pass
        );
    }
    let _ = write!(out, "]}}");
    out
}

#[cfg(test)]
mod tests;
