use super::*;
use gstm_core::analyzer::analyze;
use gstm_core::config::GuidanceConfig;
use gstm_core::events::AbortCause;
use gstm_core::ids::{Pair, ThreadId, TxnId};
use gstm_core::telemetry::export_jsonl;
use gstm_core::tsa::{GuidedModel, Tsa};

fn pair(txn: u16, thread: u16) -> Pair {
    Pair::new(TxnId(txn), ThreadId(thread))
}

fn ev(seq: u64, p: Pair, kind: TraceKind) -> TraceEvent {
    TraceEvent { seq, ts_ns: seq * 10, pair: p, kind }
}

fn commit(ns: u64) -> TraceKind {
    TraceKind::Commit { commit_ns: ns, writes: 1 }
}

fn abort() -> TraceKind {
    TraceKind::Abort { cause: AbortCause::ReadVersion, addr: 0 }
}

/// The scripted schedule used by the campaign fixtures: two threads,
/// four commits, one abort on thread 1 before its first commit.
fn scripted_run() -> Vec<TraceEvent> {
    let (a0, b1) = (pair(0, 0), pair(1, 1));
    vec![
        ev(1, a0, TraceKind::Begin),
        ev(2, a0, commit(100)),
        ev(3, b1, abort()),
        ev(4, b1, commit(200)),
        ev(5, a0, commit(150)),
        ev(6, b1, commit(250)),
    ]
}

/// The same commit/abort schedule with a hot-swap to epoch 1 (verdict
/// drifting) between the middle commits, plus the transition stream the
/// adaptive hook would have traced.
fn adaptive_run() -> Vec<TraceEvent> {
    let (a0, b1, mgr) = (pair(0, 0), pair(1, 1), pair(0, 0));
    let trans = |from, to| TraceKind::StateTransition { from, to };
    vec![
        ev(1, a0, commit(100)),
        ev(2, a0, trans(u32::MAX, 0)),
        ev(3, b1, abort()),
        ev(4, b1, commit(200)),
        ev(5, b1, trans(0, 1)),
        ev(6, mgr, TraceKind::ModelSwap { epoch: 1, verdict: 2 }),
        ev(7, a0, commit(150)),
        ev(8, a0, trans(u32::MAX, 2)),
        ev(9, b1, commit(250)),
    ]
}

// ---------------------------------------------------------------------------
// Prom / CSV parsing
// ---------------------------------------------------------------------------

#[test]
fn prom_parse_labels_and_sums() {
    let p = PromSnapshot::parse(
        "# TYPE gstm_commits_total counter\n\
         gstm_commits_total 42\n\
         gstm_aborts_total{cause=\"read_version\"} 3\n\
         gstm_aborts_total{cause=\"validation\"} 4\n\
         gstm_thread_gate_outcomes_total{thread=\"0\",outcome=\"passed\"} 7\n",
    )
    .unwrap();
    assert_eq!(p.get("gstm_commits_total", &[]), Some(42.0));
    assert_eq!(p.get("gstm_aborts_total", &[("cause", "validation")]), Some(4.0));
    assert_eq!(p.sum("gstm_aborts_total", &[]), 7.0);
    assert_eq!(
        p.get(
            "gstm_thread_gate_outcomes_total",
            &[("outcome", "passed"), ("thread", "0")]
        ),
        Some(7.0)
    );
    assert_eq!(p.get("gstm_missing", &[]), None);
    assert!(PromSnapshot::parse("garbage-without-value").is_err());
}

#[test]
fn runs_csv_parses_and_rejects_malformed() {
    let rows = parse_runs_csv("run,thread,secs,commits,aborts\n0,0,1.25,10,2\n0,1,1.5,11,0\n")
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[1], CsvRunRow { run: 0, thread: 1, secs: 1.5, commits: 11, aborts: 0 });
    assert!(parse_runs_csv("run,thread,secs,commits,aborts\n0,0,oops,1,1\n").is_err());
    assert!(parse_runs_csv("run,thread,secs,commits,aborts\n").is_err());
}

#[test]
fn summary_csv_parses_all_metrics() {
    let s = parse_summary_csv(
        "metric,thread,value\n\
         std_dev_secs,0,0.005\n\
         std_dev_secs,1,0.007\n\
         tail_metric,0,12\n\
         tail_metric,1,3\n\
         non_determinism,,5\n\
         commits,,100\n\
         aborts,,9\n",
    )
    .unwrap();
    assert_eq!(s.std_dev_secs, vec![0.005, 0.007]);
    assert_eq!(s.tail_metric, vec![12, 3]);
    assert_eq!((s.non_determinism, s.commits, s.aborts), (5, 100, 9));
}

// ---------------------------------------------------------------------------
// Reconstruction
// ---------------------------------------------------------------------------

#[test]
fn per_thread_hists_mirror_retry_accounting() {
    let h = per_thread_hists(&scripted_run(), 2);
    assert_eq!(h[0].total_commits(), 2);
    assert_eq!(h[0].total_aborts(), 0);
    assert_eq!(h[1].total_commits(), 2);
    assert_eq!(h[1].total_aborts(), 1);
    // Thread 1's abort belongs to its first commit (1 retry), not its
    // second.
    let buckets: Vec<(u32, u64)> = {
        let mut b: Vec<_> = h[1].iter().collect();
        b.sort();
        b
    };
    assert_eq!(buckets, vec![(0, 1), (1, 1)]);
}

#[test]
fn quantiles_use_nearest_rank() {
    let xs = [100, 150, 200, 250];
    assert_eq!(quantile(&xs, 0.50), 150);
    assert_eq!(quantile(&xs, 0.99), 250);
    assert_eq!(quantile(&xs, 0.0), 100);
    assert_eq!(quantile(&[], 0.5), 0);
    assert_eq!(quantile(&[7], 0.99), 7);
}

/// Satellite: JSONL → Tseq round-trip fidelity. The guidance metric
/// computed from a model built over the reconstructed Tseq must equal
/// the one from the in-memory Tseq bit-for-bit.
#[test]
fn jsonl_roundtrip_preserves_tseq_and_guidance_metric() {
    let (a0, b1, c0) = (pair(0, 0), pair(1, 1), pair(2, 0));
    // A longer schedule with interleaved aborts, multi-pair windows, and
    // a trailing abort that the windowed attribution must drop.
    let script: Vec<TraceEvent> = vec![
        ev(1, a0, abort()),
        ev(2, b1, commit(10)),
        ev(3, a0, commit(20)),
        ev(4, b1, abort()),
        ev(5, c0, abort()),
        ev(6, b1, commit(30)),
        ev(7, c0, commit(40)),
        ev(8, b1, commit(50)),
        ev(9, a0, abort()),
    ];

    // In-memory path: the event-log shape the profiler consumes.
    let log: Vec<TxEvent> = script
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Abort { cause, .. } => Some(TxEvent::Abort(e.pair, cause)),
            TraceKind::Commit { .. } => Some(TxEvent::Commit(e.pair, 0)),
            _ => None,
        })
        .collect();
    let in_memory = parse_tseq(&log);

    // Exported path: JSONL text → parse → reconstruct.
    let jsonl = export_jsonl(&script);
    let parsed = gstm_core::telemetry::parse_jsonl(&jsonl).unwrap();
    let reconstructed = tseq_from_events(&parsed);

    assert_eq!(in_memory, reconstructed, "Tseq must survive the JSONL round trip");
    assert_eq!(in_memory.len(), 5, "trailing abort dropped, one state per commit");

    let cfg = GuidanceConfig::default();
    let m_mem = GuidedModel::build(Tsa::from_runs(&[in_memory]), &cfg);
    let m_rec = GuidedModel::build(Tsa::from_runs(&[reconstructed]), &cfg);
    let (r_mem, r_rec) = (analyze(&m_mem), analyze(&m_rec));
    assert_eq!(
        r_mem.guidance_metric_pct.to_bits(),
        r_rec.guidance_metric_pct.to_bits(),
        "guidance metric must be identical: {} vs {}",
        r_mem.guidance_metric_pct,
        r_rec.guidance_metric_pct
    );
}

#[test]
fn epoch_segments_split_at_model_swaps() {
    let segs = epoch_segments(&adaptive_run());
    assert_eq!(
        segs,
        vec![
            EpochSegment { epoch: 0, swap_verdict: None, transitions: 2, commits: 2 },
            EpochSegment { epoch: 1, swap_verdict: Some(2), transitions: 1, commits: 2 },
        ]
    );
    // A swap-free trace is one epoch-0 segment.
    let segs = epoch_segments(&scripted_run());
    assert_eq!(segs.len(), 1);
    assert_eq!((segs[0].epoch, segs[0].commits), (0, 4));
}

// ---------------------------------------------------------------------------
// Campaign fixtures
// ---------------------------------------------------------------------------

fn fixture_prom(dropped: u64) -> String {
    "gstm_commits_total 4\n\
     gstm_aborts_total{cause=\"read_version\"} 1\n\
     gstm_gate_outcomes_total{outcome=\"passed\"} 5\n\
     gstm_gate_outcomes_total{outcome=\"waited\"} 0\n\
     gstm_gate_outcomes_total{outcome=\"released\"} 0\n\
     gstm_thread_commits_total{thread=\"0\"} 2\n\
     gstm_thread_commits_total{thread=\"1\"} 2\n\
     gstm_thread_aborts_total{thread=\"0\"} 0\n\
     gstm_thread_aborts_total{thread=\"1\"} 1\n\
     gstm_thread_gate_outcomes_total{thread=\"0\",outcome=\"passed\"} 2\n\
     gstm_thread_gate_outcomes_total{thread=\"1\",outcome=\"passed\"} 3\n\
     gstm_model_staleness 1\n\
     gstm_model_off_model_pct 5\n\
     gstm_model_kl_divergence_nats{stat=\"mean\"} 0.01\n\
     gstm_model_kl_divergence_nats{stat=\"max\"} 0.02\n\
     gstm_model_guidance_metric_pct{source=\"profiled\"} 30\n\
     gstm_model_guidance_metric_pct{source=\"observed\"} 32\n"
        .to_string()
        + &format!("gstm_trace_dropped_total {dropped}\n")
}

/// Two identical scripted repetitions plus the CSVs the harness would
/// have written for them.
fn fixture_campaign() -> (Vec<RunAnalysis>, Vec<CsvRunRow>, HarnessSummary) {
    let runs: Vec<RunAnalysis> = (0..2)
        .map(|r| {
            RunAnalysis::from_artifacts(
                r,
                &export_jsonl(&scripted_run()),
                &fixture_prom(0),
                2,
            )
            .unwrap()
        })
        .collect();
    let secs = [[1.0, 2.0], [1.1, 2.2]]; // [run][thread]
    let mut csv = Vec::new();
    for (r, times) in secs.iter().enumerate() {
        for (t, &s) in times.iter().enumerate() {
            csv.push(CsvRunRow {
                run: r,
                thread: t,
                secs: s,
                commits: 2,
                aborts: if t == 1 { 1 } else { 0 },
            });
        }
    }
    // Harness-side summary computed with the same primitives the harness
    // uses, so exact checks must hold.
    let mut merged = vec![AbortHistogram::new(), AbortHistogram::new()];
    for r in &runs {
        for (m, h) in merged.iter_mut().zip(&r.hists) {
            m.merge(h);
        }
    }
    let summary = HarnessSummary {
        std_dev_secs: vec![
            metrics::std_dev(&[1.0, 1.1]),
            metrics::std_dev(&[2.0, 2.2]),
        ],
        tail_metric: merged.iter().map(|m| m.tail_metric()).collect(),
        non_determinism: metrics::non_determinism(
            &runs.iter().map(|r| r.tseq.as_slice()).collect::<Vec<_>>(),
        ) as u64,
        commits: 8,
        aborts: 2,
    };
    (runs, csv, summary)
}

#[test]
fn consistent_campaign_passes_every_check() {
    let (runs, csv, summary) = fixture_campaign();
    let th = Thresholds {
        max_cv_pct: Some(50.0),
        max_non_determinism: Some(10),
        max_abort_ratio_pct: Some(50.0),
        max_off_model_pct: Some(10.0),
        fail_on_stale: true,
        ..Thresholds::default()
    };
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &th);
    let failed: Vec<_> = rep.checks.iter().filter(|c| !c.pass).collect();
    assert!(failed.is_empty(), "failed checks: {failed:?}");
    assert!(rep.pass());
    assert_eq!(rep.threads, 2);
    assert_eq!(rep.commits, 8);
    assert_eq!(rep.aborts, 2);
    assert_eq!(rep.commit_p50_ns, vec![150, 150]);
    assert_eq!(rep.commit_p99_ns, vec![250, 250]);
    let d = rep.drift.as_ref().expect("drift facts present");
    assert_eq!(d.staleness, 1);
    assert_eq!(d.observed_metric_pct, Some(32.0));
}

#[test]
fn divergent_summary_fails_the_matching_check() {
    let (runs, csv, mut summary) = fixture_campaign();
    summary.non_determinism += 1;
    summary.std_dev_secs[0] += 1.0;
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    assert!(!rep.pass());
    let failing: Vec<&str> = rep
        .checks
        .iter()
        .filter(|c| !c.pass)
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(failing, vec!["variance_match", "non_determinism_match"]);
}

#[test]
fn dropped_events_downgrade_trace_checks_to_skipped() {
    let (mut runs, csv, summary) = fixture_campaign();
    runs[0] = RunAnalysis::from_artifacts(
        0,
        &export_jsonl(&scripted_run()),
        &fixture_prom(7),
        2,
    )
    .unwrap();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    for name in ["abort_tail_match", "non_determinism_match"] {
        let c = rep.checks.iter().find(|c| c.name == name).unwrap();
        assert!(c.pass, "{name} should be skipped, not failed");
        assert!(c.detail.starts_with("skipped"), "{name}: {}", c.detail);
    }
}

#[test]
fn stale_model_fails_policy_gate_when_requested() {
    let (mut runs, csv, summary) = fixture_campaign();
    let prom = fixture_prom(0).replace("gstm_model_staleness 1", "gstm_model_staleness 3");
    let last = runs.len() - 1;
    runs[last] = RunAnalysis::from_artifacts(last, &export_jsonl(&scripted_run()), &prom, 2).unwrap();
    let th = Thresholds { fail_on_stale: true, ..Thresholds::default() };
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &th);
    let c = rep.checks.iter().find(|c| c.name == "staleness").unwrap();
    assert!(!c.pass);
    assert!(c.detail.contains("stale"), "{}", c.detail);
}

// ---------------------------------------------------------------------------
// Adaptive campaigns (epoch segmentation) + edge cases
// ---------------------------------------------------------------------------

/// A single adaptive repetition: one hot-swap, counters consistent with
/// the trace. Also the single-repetition fixture — the harness's N−1
/// std-dev guard yields exact zeros.
fn adaptive_campaign() -> (Vec<RunAnalysis>, Vec<CsvRunRow>, HarnessSummary) {
    let prom = fixture_prom(0) + "gstm_model_swaps_total 1\n";
    let runs =
        vec![RunAnalysis::from_artifacts(0, &export_jsonl(&adaptive_run()), &prom, 2).unwrap()];
    let csv = vec![
        CsvRunRow { run: 0, thread: 0, secs: 1.0, commits: 2, aborts: 0 },
        CsvRunRow { run: 0, thread: 1, secs: 2.0, commits: 2, aborts: 1 },
    ];
    let summary = HarnessSummary {
        std_dev_secs: vec![0.0, 0.0],
        tail_metric: runs[0].hists.iter().map(|h| h.tail_metric()).collect(),
        non_determinism: metrics::non_determinism(&[runs[0].tseq.as_slice()]) as u64,
        commits: 4,
        aborts: 1,
    };
    (runs, csv, summary)
}

#[test]
fn adaptive_single_rep_campaign_segments_epochs_and_passes() {
    let (runs, csv, summary) = adaptive_campaign();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    let failed: Vec<_> = rep.checks.iter().filter(|c| !c.pass).collect();
    assert!(failed.is_empty(), "failed checks: {failed:?}");
    assert_eq!(rep.model_swaps, 1);
    assert_eq!(
        rep.epochs,
        vec![
            (0, EpochSegment { epoch: 0, swap_verdict: None, transitions: 2, commits: 2 }),
            (0, EpochSegment { epoch: 1, swap_verdict: Some(2), transitions: 1, commits: 2 }),
        ]
    );
    // One repetition: every recomputed std-dev must be a finite zero
    // (N−1 denominator guard), never NaN.
    assert!(rep.std_dev_secs.iter().all(|s| *s == 0.0), "{:?}", rep.std_dev_secs);
    let seg = rep.checks.iter().find(|c| c.name == "epoch_segmentation").unwrap();
    assert!(seg.detail.contains("1 model swap(s)"), "{}", seg.detail);

    let json = render_verdict_json(&rep);
    assert!(json.contains("\"model_swaps\": 1"), "{json}");
    assert!(json.contains("\"swap_verdict\": 2"), "{json}");
    assert!(json.contains("\"swap_verdict\": null"), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    let md = render_markdown(&rep);
    assert!(md.contains("## Model epochs"), "{md}");
    assert!(md.contains("swap (drifting)"), "{md}");
    assert!(md.contains("initial model"), "{md}");
}

#[test]
fn swap_counter_trace_mismatch_fails_epoch_segmentation() {
    let (mut runs, csv, summary) = adaptive_campaign();
    // The counter claims two swaps; the trace carries one.
    let prom = fixture_prom(0) + "gstm_model_swaps_total 2\n";
    runs[0] = RunAnalysis::from_artifacts(0, &export_jsonl(&adaptive_run()), &prom, 2).unwrap();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    let c = rep.checks.iter().find(|c| c.name == "epoch_segmentation").unwrap();
    assert!(!c.pass, "{}", c.detail);
    assert!(c.detail.contains("swap event(s) in trace"), "{}", c.detail);
}

#[test]
fn swaps_without_counter_family_fail_but_old_artifacts_pass() {
    // Swap events in the trace demand the counter family...
    let (mut runs, csv, summary) = adaptive_campaign();
    runs[0] =
        RunAnalysis::from_artifacts(0, &export_jsonl(&adaptive_run()), &fixture_prom(0), 2)
            .unwrap();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    let c = rep.checks.iter().find(|c| c.name == "epoch_segmentation").unwrap();
    assert!(!c.pass, "{}", c.detail);
    assert!(c.detail.contains("no gstm_model_swaps_total"), "{}", c.detail);

    // ...but a swap-free artifact predating the family entirely passes
    // (`fixture_prom` carries no gstm_model_swaps_total line).
    let (runs, csv, summary) = fixture_campaign();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    assert!(rep.pass(), "{:?}", rep.checks);
    assert_eq!(rep.model_swaps, 0);
    let json = render_verdict_json(&rep);
    assert!(json.contains("\"model_swaps\": 0"), "{json}");
    assert!(!json.contains("\"epochs\""), "{json}");
    assert!(!render_markdown(&rep).contains("## Model epochs"));
}

#[test]
fn fully_dropped_trace_reports_skipped_not_pass() {
    let (_, csv, summary) = fixture_campaign();
    // Both repetitions lost their entire trace to a saturated ring:
    // empty JSONL, nonzero dropped counter.
    let runs: Vec<RunAnalysis> = (0..2)
        .map(|r| RunAnalysis::from_artifacts(r, "", &fixture_prom(1000), 2).unwrap())
        .collect();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    for name in ["abort_tail_match", "non_determinism_match", "epoch_segmentation"] {
        let c = rep.checks.iter().find(|c| c.name == name).unwrap();
        assert!(c.pass, "{name} must degrade, not fail");
        assert!(c.detail.starts_with("skipped"), "{name} must say skipped: {}", c.detail);
    }
}

#[test]
fn zero_repetition_campaign_is_an_error_not_a_pass() {
    let dir = std::env::temp_dir().join("gstm_analyze_zero_reps");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    // The CSVs exist but not a single telemetry artifact pair.
    std::fs::write(
        dir.join("kmeans_2t_runs.csv"),
        "run,thread,secs,commits,aborts\n0,0,1.0,2,0\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("kmeans_2t_guided_summary.csv"),
        "metric,thread,value\nstd_dev_secs,0,0.0\n",
    )
    .unwrap();
    let err = analyze_dir(&dir, "kmeans_2t", &Thresholds::default()).unwrap_err();
    assert!(err.contains("no kmeans_2t_run<r>_telemetry.prom"), "{err}");
    // An empty runs.csv is a parse error before analysis even starts.
    std::fs::write(dir.join("kmeans_2t_runs.csv"), "run,thread,secs,commits,aborts\n").unwrap();
    let err = analyze_dir(&dir, "kmeans_2t", &Thresholds::default()).unwrap_err();
    assert!(err.contains("no data rows"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Degradation (chaos / breaker campaigns)
// ---------------------------------------------------------------------------

#[test]
fn failures_csv_roundtrip_parses_quoted_causes() {
    // The harness CSV-quotes causes containing commas or quotes
    // (`"` -> `""`); the parser must undo exactly that.
    let rows = parse_failures_csv(
        "phase,rep,cause\n\
         guided,1,\"panicked at 'idx', say \"\"hi\"\"\"\n\
         default,0,plain cause\n",
    )
    .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(
        rows[0],
        CsvFailure {
            phase: "guided".into(),
            rep: 1,
            cause: "panicked at 'idx', say \"hi\"".into()
        }
    );
    assert_eq!(rows[1].cause, "plain cause");
    // Empty table = every repetition completed.
    assert!(parse_failures_csv("phase,rep,cause\n").unwrap().is_empty());
    // Malformed rows are errors, not silently dropped casualties.
    assert!(parse_failures_csv("phase,rep,cause\nguided,notanum,x\n").is_err());
    assert!(parse_failures_csv("phase,rep,cause\nguided\n").is_err());
}

/// The scripted schedule plus one full breaker excursion: trip on
/// released-rate, cooldown to half-open, probe re-closes.
fn sharded_prom(shard0_commits: u64, shard1_epoch_end: u64) -> String {
    fixture_prom(0)
        + &format!(
            "gstm_clock_mode 1\n\
             gstm_clock_global_advances_total 0\n\
             gstm_clock_shard_advances_total{{shard=\"0\"}} 2\n\
             gstm_clock_shard_advances_total{{shard=\"1\"}} 2\n\
             gstm_clock_shard_epoch{{shard=\"0\",point=\"start\"}} 10\n\
             gstm_clock_shard_epoch{{shard=\"0\",point=\"end\"}} 14\n\
             gstm_clock_shard_epoch{{shard=\"1\",point=\"start\"}} 10\n\
             gstm_clock_shard_epoch{{shard=\"1\",point=\"end\"}} {shard1_epoch_end}\n\
             gstm_clock_shard_commits_total{{shard=\"0\"}} {shard0_commits}\n\
             gstm_clock_shard_commits_total{{shard=\"1\"}} 2\n"
        )
}

#[test]
fn sharded_clock_checks_pass_on_consistent_artifacts() {
    // fixture commits_total = 4 per run: shards 2 + 2 partition it, and
    // both shards moved their epoch by at least their advance count.
    let (_, csv, summary) = fixture_campaign();
    let runs: Vec<RunAnalysis> = (0..2)
        .map(|r| {
            RunAnalysis::from_artifacts(
                r,
                &export_jsonl(&scripted_run()),
                &sharded_prom(2, 13),
                2,
            )
            .unwrap()
        })
        .collect();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    let failed: Vec<_> = rep.checks.iter().filter(|c| !c.pass).collect();
    assert!(failed.is_empty(), "failed checks: {failed:?}");
    let part = rep.checks.iter().find(|c| c.name == "clock_shard_partition").unwrap();
    assert!(part.detail.contains("2 sharded run(s)"), "{}", part.detail);
    let mono = rep.checks.iter().find(|c| c.name == "clock_shard_monotone").unwrap();
    assert!(mono.detail.contains("4 shard-run pair(s)"), "{}", mono.detail);
}

#[test]
fn global_clock_artifacts_skip_the_shard_checks() {
    let (runs, csv, summary) = fixture_campaign();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    assert!(rep.checks.iter().all(|c| !c.name.starts_with("clock_shard")));
}

#[test]
fn shard_partition_and_monotonicity_violations_fail() {
    let (_, csv, summary) = fixture_campaign();
    // Shard 0 claims 3 commits (sum 5 != 4) and shard 1's epoch moved only
    // 1 step for 2 advances — both checks must fail with run detail.
    let runs: Vec<RunAnalysis> = (0..2)
        .map(|r| {
            RunAnalysis::from_artifacts(
                r,
                &export_jsonl(&scripted_run()),
                &sharded_prom(3, 11),
                2,
            )
            .unwrap()
        })
        .collect();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    assert!(!rep.pass());
    let part = rep.checks.iter().find(|c| c.name == "clock_shard_partition").unwrap();
    assert!(!part.pass);
    assert!(part.detail.contains("5 != gstm_commits_total 4"), "{}", part.detail);
    let mono = rep.checks.iter().find(|c| c.name == "clock_shard_monotone").unwrap();
    assert!(!mono.pass);
    assert!(mono.detail.contains("epoch moved"), "{}", mono.detail);
}

fn breaker_run() -> Vec<TraceEvent> {
    let mgr = pair(0, 0);
    let brk = |from, to, cause| TraceKind::Breaker { from, to, cause };
    let mut script = scripted_run();
    let base = script.last().unwrap().seq;
    script.push(ev(base + 1, mgr, brk(0, 1, 0))); // closed→open, released-rate
    script.push(ev(base + 2, mgr, brk(1, 2, 5))); // open→half-open, cooldown
    script.push(ev(base + 3, mgr, brk(2, 0, 6))); // half-open→closed, probe
    script
}

fn breaker_prom() -> String {
    fixture_prom(0)
        + "gstm_breaker_tripped_total 1\n\
           gstm_breaker_half_open_total 1\n\
           gstm_breaker_reclosed_total 1\n\
           gstm_breaker_model_rejected_total 1\n\
           gstm_guardian_restarts_total 0\n\
           gstm_breaker_state 0\n"
}

/// The campaign fixture under chaos: same commit/abort schedule, each
/// run carrying one trip/probe/re-close cycle, plus one panicked
/// guided repetition in the failures CSV.
fn chaos_campaign() -> (Vec<RunAnalysis>, Vec<CsvRunRow>, HarnessSummary, Vec<CsvFailure>) {
    let (_, csv, summary) = fixture_campaign();
    let runs: Vec<RunAnalysis> = (0..2)
        .map(|r| {
            RunAnalysis::from_artifacts(r, &export_jsonl(&breaker_run()), &breaker_prom(), 2)
                .unwrap()
        })
        .collect();
    let failures = vec![CsvFailure {
        phase: "guided".into(),
        rep: 2,
        cause: "panicked: synthetic rep failure".into(),
    }];
    (runs, csv, summary, failures)
}

#[test]
fn chaos_campaign_surfaces_degradation_without_failing_integrity() {
    let (runs, csv, summary, failures) = chaos_campaign();
    let rep = analyze_campaign_with_failures(
        "kmeans_2t",
        &runs,
        &csv,
        &summary,
        &failures,
        &Thresholds::default(),
    );
    // Degradation is reported, not an integrity failure: absent the
    // --fail-on-degraded gate every check still passes.
    let failed: Vec<_> = rep.checks.iter().filter(|c| !c.pass).collect();
    assert!(failed.is_empty(), "failed checks: {failed:?}");
    let d = &rep.degradation;
    assert!(d.any());
    assert_eq!(
        (d.breaker_trips, d.breaker_probes, d.breaker_recloses, d.model_rejections),
        (2, 2, 2, 2)
    );
    assert_eq!(d.guardian_restarts, 0);
    assert_eq!(d.final_breaker_state, 0);
    assert_eq!(d.events.len(), 6);
    assert_eq!(d.events[0], (0, BreakerEvent { from: 0, to: 1, cause: 0 }));
    assert_eq!(d.failed_reps, failures);
    let c = rep.checks.iter().find(|c| c.name == "breaker_consistency").unwrap();
    assert!(c.detail.contains("2 trip(s)"), "{}", c.detail);

    let json = render_verdict_json(&rep);
    assert!(json.contains("\"degraded\": true"), "{json}");
    assert!(json.contains("\"breaker_trips\": 2"), "{json}");
    assert!(json.contains("\"final_breaker_state\": \"closed\""), "{json}");
    assert!(json.contains("\"cause\": \"panicked: synthetic rep failure\""), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    let md = render_markdown(&rep);
    assert!(md.contains("## Degradation events"), "{md}");
    assert!(md.contains("1 trip(s)") || md.contains("2 trip(s)"), "{md}");
    assert!(md.contains("| 0 | closed → open | released-rate |"), "{md}");
    assert!(md.contains("| 1 | open → half-open | cooldown |"), "{md}");
    assert!(md.contains("| 1 | half-open → closed | probe |"), "{md}");
    assert!(md.contains("| guided | 2 | panicked: synthetic rep failure |"), "{md}");
}

#[test]
fn clean_campaign_reports_no_degradation() {
    let (runs, csv, summary) = fixture_campaign();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    assert!(!rep.degradation.any());
    let md = render_markdown(&rep);
    assert!(md.contains("## Degradation events"), "{md}");
    assert!(md.contains("None — the campaign ran clean."), "{md}");
    assert!(render_verdict_json(&rep).contains("\"degraded\": false"));
}

#[test]
fn breaker_counter_trace_mismatch_fails_consistency() {
    let (mut runs, csv, summary, failures) = chaos_campaign();
    // Run 1's counter claims two trips; its trace carries one.
    let prom = breaker_prom()
        .replace("gstm_breaker_tripped_total 1", "gstm_breaker_tripped_total 2");
    runs[1] =
        RunAnalysis::from_artifacts(1, &export_jsonl(&breaker_run()), &prom, 2).unwrap();
    let rep = analyze_campaign_with_failures(
        "kmeans_2t",
        &runs,
        &csv,
        &summary,
        &failures,
        &Thresholds::default(),
    );
    let c = rep.checks.iter().find(|c| c.name == "breaker_consistency").unwrap();
    assert!(!c.pass, "{}", c.detail);
    assert!(c.detail.contains("gstm_breaker_tripped_total"), "{}", c.detail);

    // Breaker events in the trace demand the counter families.
    let (_, csv, summary) = fixture_campaign();
    let runs: Vec<RunAnalysis> = (0..2)
        .map(|r| {
            RunAnalysis::from_artifacts(r, &export_jsonl(&breaker_run()), &fixture_prom(0), 2)
                .unwrap()
        })
        .collect();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    let c = rep.checks.iter().find(|c| c.name == "breaker_consistency").unwrap();
    assert!(!c.pass, "{}", c.detail);
    assert!(c.detail.contains("but no gstm_breaker_tripped_total"), "{}", c.detail);
}

#[test]
fn fail_on_degraded_gates_chaos_but_passes_clean() {
    let th = Thresholds { fail_on_degraded: true, ..Thresholds::default() };
    let (runs, csv, summary, failures) = chaos_campaign();
    let rep =
        analyze_campaign_with_failures("kmeans_2t", &runs, &csv, &summary, &failures, &th);
    let c = rep.checks.iter().find(|c| c.name == "degradation").unwrap();
    assert!(!c.pass, "{}", c.detail);
    assert!(c.detail.contains("2 breaker trip(s)"), "{}", c.detail);
    assert!(c.detail.contains("1 failed rep(s)"), "{}", c.detail);
    assert!(!rep.pass());

    // A clean campaign sails through the same gate.
    let (runs, csv, summary) = fixture_campaign();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &th);
    assert!(rep.pass(), "{:?}", rep.checks);
}

#[test]
fn analyze_dir_folds_failures_csv_into_degradation() {
    let dir = std::env::temp_dir().join("gstm_analyze_failures_dir");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let (_, csv, summary) = fixture_campaign();
    for r in 0..2 {
        std::fs::write(
            dir.join(format!("kmeans_2t_run{r}_telemetry.jsonl")),
            export_jsonl(&scripted_run()),
        )
        .unwrap();
        std::fs::write(dir.join(format!("kmeans_2t_run{r}_telemetry.prom")), fixture_prom(0))
            .unwrap();
    }
    let mut runs_csv = String::from("run,thread,secs,commits,aborts\n");
    for row in &csv {
        runs_csv += &format!(
            "{},{},{:.9},{},{}\n",
            row.run, row.thread, row.secs, row.commits, row.aborts
        );
    }
    std::fs::write(dir.join("kmeans_2t_runs.csv"), runs_csv).unwrap();
    let mut sum_csv = String::from("metric,thread,value\n");
    for (t, sd) in summary.std_dev_secs.iter().enumerate() {
        sum_csv += &format!("std_dev_secs,{t},{sd:.9}\n");
    }
    for (t, tail) in summary.tail_metric.iter().enumerate() {
        sum_csv += &format!("tail_metric,{t},{tail}\n");
    }
    sum_csv += &format!("non_determinism,,{}\n", summary.non_determinism);
    sum_csv += &format!("commits,,{}\naborts,,{}\n", summary.commits, summary.aborts);
    std::fs::write(dir.join("kmeans_2t_guided_summary.csv"), sum_csv).unwrap();
    std::fs::write(
        dir.join("kmeans_2t_failures.csv"),
        "phase,rep,cause\nguided,2,\"boom, with comma\"\n",
    )
    .unwrap();

    // Without the gate: reported but passing.
    let rep = analyze_dir(&dir, "kmeans_2t", &Thresholds::default()).unwrap();
    assert!(rep.pass(), "checks: {:?}", rep.checks);
    assert_eq!(rep.degradation.failed_reps.len(), 1);
    assert_eq!(rep.degradation.failed_reps[0].cause, "boom, with comma");
    // With the gate: the casualty fails the campaign.
    let th = Thresholds { fail_on_degraded: true, ..Thresholds::default() };
    let rep = analyze_dir(&dir, "kmeans_2t", &th).unwrap();
    assert!(!rep.pass());
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Rendering + end-to-end over files
// ---------------------------------------------------------------------------

#[test]
fn verdict_json_and_markdown_render() {
    let (runs, csv, summary) = fixture_campaign();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    let json = render_verdict_json(&rep);
    assert!(json.contains("\"pass\": true"), "{json}");
    assert!(json.contains("\"staleness\": \"fresh\""), "{json}");
    assert!(json.contains("\"non_determinism\": 3"), "{json}");
    // Balanced braces — cheap structural sanity without a JSON parser.
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced braces:\n{json}"
    );
    let md = render_markdown(&rep);
    assert!(md.contains("# gstm-analyze: kmeans_2t"));
    assert!(md.contains("**PASS**"), "{md}");
    assert!(md.contains("| check | result | detail |"));
}

#[test]
fn analyze_dir_discovers_run_stamped_artifacts() {
    let dir = std::env::temp_dir().join("gstm_analyze_dir_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let (_, csv, summary) = fixture_campaign();
    for r in 0..2 {
        std::fs::write(
            dir.join(format!("kmeans_2t_run{r}_telemetry.jsonl")),
            export_jsonl(&scripted_run()),
        )
        .unwrap();
        std::fs::write(dir.join(format!("kmeans_2t_run{r}_telemetry.prom")), fixture_prom(0))
            .unwrap();
    }
    let mut runs_csv = String::from("run,thread,secs,commits,aborts\n");
    for row in &csv {
        runs_csv += &format!(
            "{},{},{:.9},{},{}\n",
            row.run, row.thread, row.secs, row.commits, row.aborts
        );
    }
    std::fs::write(dir.join("kmeans_2t_runs.csv"), runs_csv).unwrap();
    let mut sum_csv = String::from("metric,thread,value\n");
    for (t, sd) in summary.std_dev_secs.iter().enumerate() {
        sum_csv += &format!("std_dev_secs,{t},{sd:.9}\n");
    }
    for (t, tail) in summary.tail_metric.iter().enumerate() {
        sum_csv += &format!("tail_metric,{t},{tail}\n");
    }
    sum_csv += &format!("non_determinism,,{}\n", summary.non_determinism);
    sum_csv += &format!("commits,,{}\naborts,,{}\n", summary.commits, summary.aborts);
    std::fs::write(dir.join("kmeans_2t_guided_summary.csv"), sum_csv).unwrap();

    let rep = analyze_dir(&dir, "kmeans_2t", &Thresholds::default()).unwrap();
    assert!(rep.pass(), "checks: {:?}", rep.checks);
    assert_eq!(rep.runs, 2);
    assert!(analyze_dir(&dir, "missing_8t", &Thresholds::default()).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Conflict provenance
// ---------------------------------------------------------------------------

/// The scripted schedule with abort attribution: thread 1's abort carries
/// a culprit address, thread 0 suffers an unattributed one before its
/// second commit.
fn contention_run() -> Vec<TraceEvent> {
    let (a0, b1) = (pair(0, 0), pair(1, 1));
    vec![
        ev(1, a0, TraceKind::Begin),
        ev(2, a0, commit(100)),
        ev(
            3,
            b1,
            TraceKind::Abort {
                cause: AbortCause::ReadLocked { owner: Some(ThreadId(0)) },
                addr: 0xab00,
            },
        ),
        ev(4, b1, commit(200)),
        ev(5, a0, abort()),
        ev(6, a0, commit(150)),
        ev(7, b1, commit(250)),
    ]
}

fn contention_prom(dropped: u64) -> String {
    format!(
        "gstm_commits_total 4\n\
         gstm_aborts_total{{cause=\"read_locked\"}} 1\n\
         gstm_aborts_total{{cause=\"read_version\"}} 1\n\
         gstm_gate_outcomes_total{{outcome=\"passed\"}} 5\n\
         gstm_gate_outcomes_total{{outcome=\"waited\"}} 0\n\
         gstm_gate_outcomes_total{{outcome=\"released\"}} 0\n\
         gstm_thread_commits_total{{thread=\"0\"}} 2\n\
         gstm_thread_commits_total{{thread=\"1\"}} 2\n\
         gstm_thread_aborts_total{{thread=\"0\"}} 1\n\
         gstm_thread_aborts_total{{thread=\"1\"}} 1\n\
         gstm_thread_gate_outcomes_total{{thread=\"0\",outcome=\"passed\"}} 2\n\
         gstm_thread_gate_outcomes_total{{thread=\"1\",outcome=\"passed\"}} 3\n\
         gstm_contention_attributed_total 1\n\
         gstm_contention_unattributed_total 1\n\
         gstm_contention_residual_total 0\n\
         gstm_contention_owner_unknown_total 1\n\
         gstm_contention_sketch_replacements_total 0\n\
         gstm_contention_sketch_slots{{state=\"occupied\"}} 1\n\
         gstm_contention_sketch_slots{{state=\"capacity\"}} 2048\n\
         gstm_contention_addr_aborts_total{{rank=\"0\",addr=\"0xab00\"}} 1\n\
         gstm_contention_addr_error{{rank=\"0\",addr=\"0xab00\"}} 0\n\
         gstm_contention_pair_aborts_total{{victim=\"1\",owner=\"0\"}} 1\n\
         gstm_trace_dropped_total {dropped}\n"
    )
}

/// Two attributed repetitions plus matching CSVs.
fn contention_campaign() -> (Vec<RunAnalysis>, Vec<CsvRunRow>, HarnessSummary) {
    let runs: Vec<RunAnalysis> = (0..2)
        .map(|r| {
            RunAnalysis::from_artifacts(
                r,
                &export_jsonl(&contention_run()),
                &contention_prom(0),
                2,
            )
            .unwrap()
        })
        .collect();
    let secs = [[1.0, 2.0], [1.1, 2.2]];
    let mut csv = Vec::new();
    for (r, times) in secs.iter().enumerate() {
        for (t, &s) in times.iter().enumerate() {
            csv.push(CsvRunRow { run: r, thread: t, secs: s, commits: 2, aborts: 1 });
        }
    }
    let mut merged = vec![AbortHistogram::new(), AbortHistogram::new()];
    for r in &runs {
        for (m, h) in merged.iter_mut().zip(&r.hists) {
            m.merge(h);
        }
    }
    let summary = HarnessSummary {
        std_dev_secs: vec![metrics::std_dev(&[1.0, 1.1]), metrics::std_dev(&[2.0, 2.2])],
        tail_metric: merged.iter().map(|m| m.tail_metric()).collect(),
        non_determinism: metrics::non_determinism(
            &runs.iter().map(|r| r.tseq.as_slice()).collect::<Vec<_>>(),
        ) as u64,
        commits: 8,
        aborts: 4,
    };
    (runs, csv, summary)
}

#[test]
fn contention_campaign_passes_and_reports_facts() {
    let (runs, csv, summary) = contention_campaign();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    assert!(rep.pass(), "checks: {:?}", rep.checks);
    for name in [
        "contention_partition",
        "contention_sketch_partition",
        "contention_matrix_partition",
        "contention_trace_attribution",
    ] {
        let c = rep.checks.iter().find(|c| c.name == name).unwrap_or_else(|| {
            panic!("missing check {name}")
        });
        assert!(c.pass, "{name}: {}", c.detail);
        assert!(!c.detail.starts_with("skipped"), "{name} ran: {}", c.detail);
    }
    let facts = rep.contention.as_ref().expect("contention facts");
    assert_eq!(facts.runs_with, 2);
    assert_eq!((facts.attributed, facts.unattributed), (2, 2));
    assert_eq!(facts.attribution_pct(), 50.0);
    assert_eq!(facts.top, vec![(0xab00, 2)], "per-run exports merge by address");
    assert_eq!(facts.hottest_pct, 100.0);
    assert_eq!(facts.pairs, vec![(1, 0, 2)]);
}

#[test]
fn contention_partition_violation_fails() {
    let (mut runs, csv, summary) = contention_campaign();
    // Claim one more attributed abort than the counters saw.
    let prom = contention_prom(0)
        .replace("gstm_contention_attributed_total 1", "gstm_contention_attributed_total 2");
    runs[1] =
        RunAnalysis::from_artifacts(1, &export_jsonl(&contention_run()), &prom, 2).unwrap();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    assert!(!rep.pass());
    let failing: Vec<&str> =
        rep.checks.iter().filter(|c| !c.pass).map(|c| c.name.as_str()).collect();
    // The inflated counter breaks the abort partition, the sketch
    // conservation, and the trace cross-check in run 1.
    assert!(failing.contains(&"contention_partition"), "{failing:?}");
    assert!(failing.contains(&"contention_sketch_partition"), "{failing:?}");
    assert!(failing.contains(&"contention_trace_attribution"), "{failing:?}");
}

#[test]
fn dropped_trace_skips_attribution_audit_but_keeps_partitions() {
    let (mut runs, csv, summary) = contention_campaign();
    for r in 0..2 {
        runs[r] = RunAnalysis::from_artifacts(
            r,
            &export_jsonl(&contention_run()),
            &contention_prom(3),
            2,
        )
        .unwrap();
    }
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    let audit = rep
        .checks
        .iter()
        .find(|c| c.name == "contention_trace_attribution")
        .unwrap();
    assert!(audit.pass);
    assert!(audit.detail.starts_with("skipped"), "{}", audit.detail);
    // Counter-only partitions don't need the trace and still run.
    for name in ["contention_partition", "contention_sketch_partition"] {
        let c = rep.checks.iter().find(|c| c.name == name).unwrap();
        assert!(!c.detail.starts_with("skipped"), "{name} must still verify");
    }
}

#[test]
fn campaigns_without_contention_families_skip_the_section() {
    let (runs, csv, summary) = fixture_campaign();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    assert!(rep.contention.is_none());
    assert!(
        !rep.checks.iter().any(|c| c.name.starts_with("contention")),
        "no contention checks without the families"
    );
}

#[test]
fn hot_addr_gate_fails_a_dominated_campaign() {
    let (runs, csv, summary) = contention_campaign();
    let th = Thresholds { max_hot_addr_pct: Some(50.0), ..Thresholds::default() };
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &th);
    let gate = rep.checks.iter().find(|c| c.name == "hot_addr_threshold").unwrap();
    assert!(!gate.pass, "one address holds 100% > 50% limit: {}", gate.detail);
    // A lenient limit passes.
    let th = Thresholds { max_hot_addr_pct: Some(100.0), ..Thresholds::default() };
    assert!(analyze_campaign("kmeans_2t", &runs, &csv, &summary, &th).pass());
}

#[test]
fn contention_renders_in_verdict_and_markdown() {
    let (runs, csv, summary) = contention_campaign();
    let rep = analyze_campaign("kmeans_2t", &runs, &csv, &summary, &Thresholds::default());
    let json = render_verdict_json(&rep);
    assert!(json.contains("\"contention\": {"), "{json}");
    assert!(json.contains("\"addr\": \"0xab00\""), "{json}");
    assert!(json.contains("\"victim\": 1"), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    let md = render_markdown(&rep);
    assert!(md.contains("## Contention report"), "{md}");
    assert!(md.contains("`0xab00`"), "{md}");
    assert!(md.contains("thread 1 aborted by thread 0: 2"), "{md}");
}

// ---------------------------------------------------------------------------
// Live ops plane ingestion
// ---------------------------------------------------------------------------

/// A hand-built frozen ops exposition: 2 retained windows + 1 evicted
/// that exactly partition 100 commits, 20 aborts, and 30 gate outcomes.
fn fixture_ops_prom(schema: u32, break_partition: bool) -> String {
    let commits_total = if break_partition { 101 } else { 100 };
    format!(
        "# TYPE gstm_build_info gauge\n\
         gstm_build_info{{schema=\"{schema}\",version=\"test\"}} 1\n\
         # TYPE gstm_commits_total counter\n\
         gstm_commits_total {commits_total}\n\
         # TYPE gstm_aborts_total counter\n\
         gstm_aborts_total{{cause=\"read_version\"}} 15\n\
         gstm_aborts_total{{cause=\"validation\"}} 5\n\
         # TYPE gstm_gate_outcomes_total counter\n\
         gstm_gate_outcomes_total{{outcome=\"passed\"}} 20\n\
         gstm_gate_outcomes_total{{outcome=\"waited\"}} 6\n\
         gstm_gate_outcomes_total{{outcome=\"released\"}} 4\n\
         # TYPE gstm_windows_closed_total counter\n\
         gstm_windows_closed_total 3\n\
         # TYPE gstm_window_rolls_total counter\n\
         gstm_window_rolls_total 7\n\
         # TYPE gstm_window_evicted_windows_total counter\n\
         gstm_window_evicted_windows_total 1\n\
         # TYPE gstm_window_evicted_total counter\n\
         gstm_window_evicted_total{{counter=\"commits\"}} 10\n\
         gstm_window_evicted_total{{counter=\"aborts\"}} 2\n\
         gstm_window_evicted_total{{counter=\"gate_passed\"}} 3\n\
         gstm_window_evicted_total{{counter=\"gate_waited\"}} 2\n\
         gstm_window_evicted_total{{counter=\"gate_released\"}} 1\n\
         # TYPE gstm_window_commits gauge\n\
         gstm_window_commits{{window=\"1\"}} 60\n\
         gstm_window_commits{{window=\"2\"}} 30\n\
         # TYPE gstm_window_aborts gauge\n\
         gstm_window_aborts{{window=\"1\"}} 8\n\
         gstm_window_aborts{{window=\"2\"}} 10\n\
         # TYPE gstm_window_gate gauge\n\
         gstm_window_gate{{window=\"1\",outcome=\"passed\"}} 8\n\
         gstm_window_gate{{window=\"1\",outcome=\"waited\"}} 2\n\
         gstm_window_gate{{window=\"1\",outcome=\"released\"}} 2\n\
         gstm_window_gate{{window=\"2\",outcome=\"passed\"}} 9\n\
         gstm_window_gate{{window=\"2\",outcome=\"waited\"}} 2\n\
         gstm_window_gate{{window=\"2\",outcome=\"released\"}} 1\n\
         # TYPE gstm_slo_state gauge\n\
         gstm_slo_state 2\n\
         # TYPE gstm_slo_windows_total counter\n\
         gstm_slo_windows_total 3\n\
         # TYPE gstm_slo_breached_windows_total counter\n\
         gstm_slo_breached_windows_total 2\n\
         # TYPE gstm_slo_incidents_total counter\n\
         gstm_slo_incidents_total 1\n"
    )
}

fn fixture_incident_json(schema: u32) -> String {
    format!(
        "{{\n  \"schema\": {schema},\n  \"kind\": \"gstm_incident\",\n  \
         \"version\": \"test\",\n  \"stamp\": \"replay\",\n  \"seq\": 0,\n  \
         \"tripped_window\": 4,\n  \"state\": \"incident\",\n  \
         \"breaches\": [\"abort-ratio 80.0% > 50%\"],\n  \"timeline\": [\n    \
         {{\"window\":3,\"from\":\"ok\",\"to\":\"warn\",\"breaches\":[]}},\n    \
         {{\"window\":4,\"from\":\"warn\",\"to\":\"incident\",\"breaches\":[]}}\n  ],\n  \
         \"windows\": [\n    {{\"index\":3,\"commits\":5,\"aborts\":2}},\n    \
         {{\"index\":4,\"commits\":6,\"aborts\":9}}\n  ],\n  \
         \"evicted\": {{\"windows\": 0, \"commits\": 0, \"aborts\": 0, \"gate\": 0}},\n  \
         \"trace\": [\n    \
         {{\"seq\":0,\"txn\":1,\"thread\":0,\"kind\":\"begin\"}},\n    \
         {{\"seq\":1,\"txn\":1,\"thread\":0,\"kind\":\"commit\",\"commit_ns\":90,\"writes\":1}}\n  ]\n}}\n"
    )
}

#[test]
fn ops_partition_check_is_exact() {
    let ok = PromSnapshot::parse(&fixture_ops_prom(1, false)).unwrap();
    let c = ops_partition_check(&ok);
    assert!(c.pass, "{}", c.detail);
    assert!(c.detail.contains("2 retained + 1 evicted"), "{}", c.detail);
    let bad = PromSnapshot::parse(&fixture_ops_prom(1, true)).unwrap();
    let c = ops_partition_check(&bad);
    assert!(!c.pass);
    assert!(c.detail.contains("commits"), "{}", c.detail);
}

#[test]
fn incident_dump_parses_scalars_and_counts() {
    let f = parse_incident_json("incident0.json", &fixture_incident_json(1)).unwrap();
    assert_eq!(f.seq, 0);
    assert_eq!(f.stamp, "replay");
    assert_eq!(f.tripped_window, 4);
    assert_eq!(f.state, "incident");
    assert_eq!(f.windows, 2);
    assert_eq!(f.transitions, 2);
    assert_eq!(f.trace_events, 2);
}

#[test]
fn incident_dump_schema_mismatch_is_rejected() {
    let err = parse_incident_json("incident0.json", &fixture_incident_json(99)).unwrap_err();
    assert!(err.contains("schema 99"), "{err}");
    assert!(err.contains("reads schema 1"), "{err}");
    let err = parse_incident_json("x.json", "{\n  \"schema\": 1,\n  \"kind\": \"other\"\n}")
        .unwrap_err();
    assert!(err.contains("gstm_incident"), "{err}");
}

#[test]
fn analyze_ops_rejects_exposition_schema_mismatch() {
    let dir = std::env::temp_dir().join("gstm_analyze_ops_schema");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("ops.prom"), fixture_ops_prom(9, false)).unwrap();
    let err = analyze_ops(&dir, "kmeans_2t").unwrap_err();
    assert!(err.contains("schema 9"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_dir_folds_ops_artifacts_and_renders_them() {
    let dir = std::env::temp_dir().join("gstm_analyze_ops_dir");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let (_, csv, summary) = fixture_campaign();
    for r in 0..2 {
        std::fs::write(
            dir.join(format!("kmeans_2t_run{r}_telemetry.jsonl")),
            export_jsonl(&scripted_run()),
        )
        .unwrap();
        std::fs::write(dir.join(format!("kmeans_2t_run{r}_telemetry.prom")), fixture_prom(0))
            .unwrap();
    }
    let mut runs_csv = String::from("run,thread,secs,commits,aborts\n");
    for row in &csv {
        runs_csv += &format!(
            "{},{},{:.9},{},{}\n",
            row.run, row.thread, row.secs, row.commits, row.aborts
        );
    }
    std::fs::write(dir.join("kmeans_2t_runs.csv"), runs_csv).unwrap();
    let mut sum_csv = String::from("metric,thread,value\n");
    for (t, sd) in summary.std_dev_secs.iter().enumerate() {
        sum_csv += &format!("std_dev_secs,{t},{sd:.9}\n");
    }
    for (t, tail) in summary.tail_metric.iter().enumerate() {
        sum_csv += &format!("tail_metric,{t},{tail}\n");
    }
    sum_csv += &format!("non_determinism,,{}\n", summary.non_determinism);
    sum_csv += &format!("commits,,{}\naborts,,{}\n", summary.commits, summary.aborts);
    std::fs::write(dir.join("kmeans_2t_guided_summary.csv"), sum_csv).unwrap();
    // The stem-qualified name wins over the bare fallback.
    std::fs::write(dir.join("kmeans_2t_ops.prom"), fixture_ops_prom(1, false)).unwrap();
    std::fs::write(dir.join("incident0.json"), fixture_incident_json(1)).unwrap();

    let rep = analyze_dir(&dir, "kmeans_2t", &Thresholds::default()).unwrap();
    assert!(rep.pass(), "checks: {:?}", rep.checks);
    let part = rep.checks.iter().find(|c| c.name == "window_partition").unwrap();
    assert!(part.pass, "{}", part.detail);
    let inc = rep.checks.iter().find(|c| c.name == "incident_artifacts").unwrap();
    assert!(inc.pass, "{}", inc.detail);
    let ops = rep.ops.as_ref().unwrap();
    assert_eq!(ops.windows_closed, 3);
    assert_eq!(ops.incidents.len(), 1);
    assert_eq!(ops.incidents[0].tripped_window, 4);

    let md = render_markdown(&rep);
    assert!(md.contains("## Live ops plane"), "{md}");
    assert!(md.contains("## Incident timeline"), "{md}");
    assert!(md.contains("| 0 | replay | 4 | incident | 2 | 2 | 2 |"), "{md}");
    assert!(md.contains("trace events dropped: 0"), "{md}");
    let json = render_verdict_json(&rep);
    assert!(json.starts_with("{\n  \"schema\": 1,"), "{json}");
    assert!(json.contains("\"ops\": {"), "{json}");
    assert!(json.contains("\"tripped_window\": 4"), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_incident_artifact_fails_the_inventory_check() {
    let dir = std::env::temp_dir().join("gstm_analyze_ops_missing_inc");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    // Declares one incident, but no incident0.json rode along.
    std::fs::write(dir.join("ops.prom"), fixture_ops_prom(1, false)).unwrap();
    let (facts, checks) = analyze_ops(&dir, "kmeans_2t").unwrap().unwrap();
    assert_eq!(facts.incidents_total, 1);
    assert!(facts.incidents.is_empty());
    let inc = checks.iter().find(|c| c.name == "incident_artifacts").unwrap();
    assert!(!inc.pass, "{}", inc.detail);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gini_measures_concentration() {
    assert_eq!(gini(&[]), 0.0);
    assert_eq!(gini(&[5]), 0.0);
    assert_eq!(gini(&[3, 3, 3]), 0.0, "uniform distribution");
    let skewed = gini(&[97, 1, 1, 1]);
    assert!(skewed > 0.7, "dominated distribution concentrates: {skewed}");
    let mild = gini(&[4, 3, 2, 1]);
    assert!(mild > 0.0 && mild < skewed, "ordering: {mild} < {skewed}");
}

// ---------------------------------------------------------------------------
// Server tick analysis
// ---------------------------------------------------------------------------

fn tick_line(tick: u64, frame_ns: u64, ladder: u8, offered: u64, executed: u64, shed: u64) -> String {
    format!(
        "{{\"tick\":{tick},\"frame_ns\":{frame_ns},\"cost\":{frame_ns},\"ladder\":{ladder},\
         \"offered\":{offered},\"executed\":{executed},\"shed\":{shed},\"sessions\":3}}"
    )
}

#[test]
fn ticks_jsonl_parses_rows_and_truncation_marker() {
    let text = format!(
        "{{\"truncated_ticks\":7}}\n{}\n{}\n",
        tick_line(7, 100, 0, 4, 4, 0),
        tick_line(8, 900, 1, 10, 6, 4)
    );
    let (rows, truncated) = parse_ticks_jsonl(&text).unwrap();
    assert_eq!(truncated, 7);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].tick, 7);
    assert_eq!(rows[1].ladder, 1);
    assert_eq!(rows[1].shed, 4);
    assert!(parse_ticks_jsonl("{\"frame_ns\":3}\n").is_err(), "tick field is mandatory");
}

#[test]
fn server_checks_pass_on_a_clean_log() {
    let rows = [
        ServerTickRow { tick: 0, frame_ns: 100, ladder: 0, offered: 4, executed: 4, ..Default::default() },
        ServerTickRow { tick: 1, frame_ns: 110, ladder: 1, offered: 9, executed: 6, shed: 3, ..Default::default() },
        ServerTickRow { tick: 2, frame_ns: 105, ladder: 0, offered: 2, executed: 2, ..Default::default() },
    ];
    let (facts, checks) = analyze_server_ticks(&rows, 0, &Thresholds::default());
    assert!(checks.iter().all(|c| c.pass), "{checks:?}");
    assert_eq!(facts.offered, 15);
    assert_eq!(facts.executed, 12);
    assert_eq!(facts.shed, 3);
    assert_eq!(facts.max_rung, 1);
    assert_eq!(facts.ladder_moves, 2);
    assert_eq!(facts.rung_ticks, [2, 1, 0, 0]);
}

#[test]
fn server_shed_accounting_catches_lost_actions() {
    let rows = [ServerTickRow { tick: 0, offered: 5, executed: 3, shed: 1, ..Default::default() }];
    let (_, checks) = analyze_server_ticks(&rows, 0, &Thresholds::default());
    let c = checks.iter().find(|c| c.name == "server_shed_accounting").unwrap();
    assert!(!c.pass, "{}", c.detail);
}

#[test]
fn server_ladder_sanity_catches_rung_jumps() {
    let rows = [
        ServerTickRow { tick: 0, ladder: 0, ..Default::default() },
        ServerTickRow { tick: 1, ladder: 2, ..Default::default() },
    ];
    let (_, checks) = analyze_server_ticks(&rows, 0, &Thresholds::default());
    let c = checks.iter().find(|c| c.name == "server_ladder_sanity").unwrap();
    assert!(!c.pass, "two-rung jump: {}", c.detail);
}

#[test]
fn server_frame_gates_fire_on_thresholds() {
    let rows: Vec<ServerTickRow> = (0..100)
        .map(|t| ServerTickRow {
            tick: t,
            frame_ns: if t >= 98 { 10_000_000 } else { 1_000 },
            offered: 1,
            executed: 1,
            ..Default::default()
        })
        .collect();
    let th = Thresholds {
        max_frame_cv_pct: Some(50.0),
        max_frame_p99_ms: Some(1.0),
        ..Thresholds::default()
    };
    let (facts, checks) = analyze_server_ticks(&rows, 0, &th);
    assert!(facts.frame_cv_pct > 50.0);
    assert!(!checks.iter().find(|c| c.name == "server_frame_cv").unwrap().pass);
    assert!(!checks.iter().find(|c| c.name == "server_frame_p99").unwrap().pass);
    // Identical frames sail through both gates.
    let calm: Vec<ServerTickRow> = (0..100)
        .map(|t| ServerTickRow { tick: t, frame_ns: 1_000, ..Default::default() })
        .collect();
    let (facts, checks) = analyze_server_ticks(&calm, 0, &th);
    assert_eq!(facts.frame_cv_pct, 0.0);
    assert!(checks.iter().all(|c| c.pass), "{checks:?}");
}

#[test]
fn server_renderers_cover_facts_and_checks() {
    let rows = [ServerTickRow { tick: 0, frame_ns: 500, offered: 3, executed: 3, ..Default::default() }];
    let (facts, checks) = analyze_server_ticks(&rows, 2, &Thresholds::default());
    let md = render_server_markdown(&facts, &checks);
    assert!(md.contains("server ticks"), "{md}");
    assert!(md.contains("server_shed_accounting"), "{md}");
    let json = render_server_verdict_json(&facts, &checks);
    assert!(json.contains("\"pass\":true"), "{json}");
    assert!(json.contains("\"truncated\":2"), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
}
