//! `gstm-analyze` — cross-run variance analyzer over telemetry artifacts.
//!
//! ```text
//! gstm-analyze --dir telemetry-out --bench kmeans --threads 4 \
//!     [--out DIR] [--tol 1e-6] [--max-cv-pct 40] [--max-nondet 100] \
//!     [--max-abort-ratio-pct 60] [--max-off-model-pct 50] [--fail-on-stale]
//!     [--fail-on-degraded] [--max-hot-addr-pct 80]
//! gstm-analyze --server-ticks PATH [--out DIR] \
//!     [--max-frame-cv-pct F] [--max-frame-p99-ms F]
//! ```
//!
//! Campaign mode reads `<bench>_<threads>t_run<r>_telemetry.{jsonl,prom}`
//! for r = 0.., plus `<bench>_<threads>t_runs.csv` and
//! `_guided_summary.csv`, from `--dir`. Server mode reads the
//! `ticks.jsonl` a `gstm-server` run exported and gates on per-tick shed
//! accounting, ladder sanity, and the optional frame-variance/p99
//! thresholds. Both write `<stem>_verdict.json` and `<stem>_report.md`
//! and print the markdown report. Exit code 0 when every check passes,
//! 1 on a failed check, 2 on usage or I/O errors.

use gstm_analyze::{
    analyze_dir, analyze_server_ticks, parse_ticks_jsonl, render_markdown,
    render_server_markdown, render_server_verdict_json, render_verdict_json, Thresholds,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    dir: Option<PathBuf>,
    out: Option<PathBuf>,
    bench: Option<String>,
    threads: Option<u32>,
    server_ticks: Option<PathBuf>,
    thresholds: Thresholds,
}

const USAGE: &str = "usage: gstm-analyze --dir DIR --bench NAME --threads N [--out DIR] \
[--tol F] [--max-cv-pct F] [--max-nondet N] [--max-abort-ratio-pct F] \
[--max-off-model-pct F] [--fail-on-stale] [--fail-on-degraded] [--max-hot-addr-pct F]
       gstm-analyze --server-ticks PATH [--out DIR] [--max-frame-cv-pct F] [--max-frame-p99-ms F]";

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        dir: None,
        out: None,
        bench: None,
        threads: None,
        server_ticks: None,
        thresholds: Thresholds::default(),
    };
    let th = &mut cli.thresholds;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{arg} needs a {what}"))
        };
        match arg.as_str() {
            "--dir" => cli.dir = Some(PathBuf::from(val("path")?)),
            "--out" => cli.out = Some(PathBuf::from(val("path")?)),
            "--bench" => cli.bench = Some(val("name")?.clone()),
            "--threads" => {
                cli.threads = Some(val("count")?.parse().map_err(|_| "bad --threads")?)
            }
            "--server-ticks" => cli.server_ticks = Some(PathBuf::from(val("path")?)),
            "--tol" => th.float_tol = val("float")?.parse().map_err(|_| "bad --tol")?,
            "--max-cv-pct" => {
                th.max_cv_pct = Some(val("float")?.parse().map_err(|_| "bad --max-cv-pct")?)
            }
            "--max-nondet" => {
                th.max_non_determinism =
                    Some(val("count")?.parse().map_err(|_| "bad --max-nondet")?)
            }
            "--max-abort-ratio-pct" => {
                th.max_abort_ratio_pct =
                    Some(val("float")?.parse().map_err(|_| "bad --max-abort-ratio-pct")?)
            }
            "--max-off-model-pct" => {
                th.max_off_model_pct =
                    Some(val("float")?.parse().map_err(|_| "bad --max-off-model-pct")?)
            }
            "--max-hot-addr-pct" => {
                th.max_hot_addr_pct =
                    Some(val("float")?.parse().map_err(|_| "bad --max-hot-addr-pct")?)
            }
            "--max-frame-cv-pct" => {
                th.max_frame_cv_pct =
                    Some(val("float")?.parse().map_err(|_| "bad --max-frame-cv-pct")?)
            }
            "--max-frame-p99-ms" => {
                th.max_frame_p99_ms =
                    Some(val("float")?.parse().map_err(|_| "bad --max-frame-p99-ms")?)
            }
            "--fail-on-stale" => th.fail_on_stale = true,
            "--fail-on-degraded" => th.fail_on_degraded = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if cli.server_ticks.is_none() && (cli.dir.is_none() || cli.bench.is_none() || cli.threads.is_none())
    {
        return Err(format!(
            "--dir, --bench and --threads are required (or use --server-ticks)\n{USAGE}"
        ));
    }
    Ok(cli)
}

/// Server mode: analyze one `ticks.jsonl`, write `server_verdict.json` +
/// `server_report.md` next to it (or into `--out`).
fn run_server_mode(cli: &Cli, path: &PathBuf) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gstm-analyze: reading {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let (rows, truncated) = match parse_ticks_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gstm-analyze: parsing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let (facts, checks) = analyze_server_ticks(&rows, truncated, &cli.thresholds);
    let out_dir = cli
        .out
        .clone()
        .or_else(|| path.parent().map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("gstm-analyze: creating {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }
    let md = render_server_markdown(&facts, &checks);
    let verdict_path = out_dir.join("server_verdict.json");
    for (p, body) in [
        (&verdict_path, render_server_verdict_json(&facts, &checks)),
        (&out_dir.join("server_report.md"), md.clone()),
    ] {
        if let Err(e) = std::fs::write(p, body) {
            eprintln!("gstm-analyze: writing {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    print!("{md}");
    let pass = checks.iter().all(|c| c.pass);
    println!();
    println!(
        "verdict: {} ({} checks) -> {}",
        if pass { "PASS" } else { "FAIL" },
        checks.len(),
        verdict_path.display()
    );
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = cli.server_ticks.clone() {
        return run_server_mode(&cli, &path);
    }
    // Campaign mode: parse_cli guaranteed these are present.
    let (Some(dir), Some(bench), Some(threads)) = (&cli.dir, &cli.bench, cli.threads) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let stem = format!("{bench}_{threads}t");
    let report = match analyze_dir(dir, &stem, &cli.thresholds) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gstm-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let out_dir = cli.out.unwrap_or_else(|| dir.clone());
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("gstm-analyze: creating {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }
    let verdict_path = out_dir.join(format!("{stem}_verdict.json"));
    let report_path = out_dir.join(format!("{stem}_report.md"));
    let md = render_markdown(&report);
    for (path, body) in [(&verdict_path, render_verdict_json(&report)), (&report_path, md.clone())]
    {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("gstm-analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    print!("{md}");
    println!();
    println!(
        "verdict: {} ({} checks) -> {}",
        if report.pass() { "PASS" } else { "FAIL" },
        report.checks.len(),
        verdict_path.display()
    );
    if report.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
