//! `gstm-analyze` — cross-run variance analyzer over telemetry artifacts.
//!
//! ```text
//! gstm-analyze --dir telemetry-out --bench kmeans --threads 4 \
//!     [--out DIR] [--tol 1e-6] [--max-cv-pct 40] [--max-nondet 100] \
//!     [--max-abort-ratio-pct 60] [--max-off-model-pct 50] [--fail-on-stale]
//!     [--fail-on-degraded] [--max-hot-addr-pct 80]
//! ```
//!
//! Reads `<bench>_<threads>t_run<r>_telemetry.{jsonl,prom}` for r = 0..,
//! plus `<bench>_<threads>t_runs.csv` and `_guided_summary.csv`, from
//! `--dir`. Writes `<stem>_verdict.json` and `<stem>_report.md` to
//! `--out` (default: `--dir`) and prints the markdown report. Exit code
//! 0 when every check passes, 1 on a failed check, 2 on usage or I/O
//! errors.

use gstm_analyze::{analyze_dir, render_markdown, render_verdict_json, Thresholds};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    dir: PathBuf,
    out: Option<PathBuf>,
    bench: String,
    threads: u32,
    thresholds: Thresholds,
}

const USAGE: &str = "usage: gstm-analyze --dir DIR --bench NAME --threads N [--out DIR] \
[--tol F] [--max-cv-pct F] [--max-nondet N] [--max-abort-ratio-pct F] \
[--max-off-model-pct F] [--fail-on-stale] [--fail-on-degraded] [--max-hot-addr-pct F]";

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut dir = None;
    let mut out = None;
    let mut bench = None;
    let mut threads = None;
    let mut th = Thresholds::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{arg} needs a {what}"))
        };
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(val("path")?)),
            "--out" => out = Some(PathBuf::from(val("path")?)),
            "--bench" => bench = Some(val("name")?.clone()),
            "--threads" => threads = Some(val("count")?.parse().map_err(|_| "bad --threads")?),
            "--tol" => th.float_tol = val("float")?.parse().map_err(|_| "bad --tol")?,
            "--max-cv-pct" => {
                th.max_cv_pct = Some(val("float")?.parse().map_err(|_| "bad --max-cv-pct")?)
            }
            "--max-nondet" => {
                th.max_non_determinism =
                    Some(val("count")?.parse().map_err(|_| "bad --max-nondet")?)
            }
            "--max-abort-ratio-pct" => {
                th.max_abort_ratio_pct =
                    Some(val("float")?.parse().map_err(|_| "bad --max-abort-ratio-pct")?)
            }
            "--max-off-model-pct" => {
                th.max_off_model_pct =
                    Some(val("float")?.parse().map_err(|_| "bad --max-off-model-pct")?)
            }
            "--max-hot-addr-pct" => {
                th.max_hot_addr_pct =
                    Some(val("float")?.parse().map_err(|_| "bad --max-hot-addr-pct")?)
            }
            "--fail-on-stale" => th.fail_on_stale = true,
            "--fail-on-degraded" => th.fail_on_degraded = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(Cli {
        dir: dir.ok_or(format!("--dir is required\n{USAGE}"))?,
        out,
        bench: bench.ok_or(format!("--bench is required\n{USAGE}"))?,
        threads: threads.ok_or(format!("--threads is required\n{USAGE}"))?,
        thresholds: th,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let stem = format!("{}_{}t", cli.bench, cli.threads);
    let report = match analyze_dir(&cli.dir, &stem, &cli.thresholds) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gstm-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let out_dir = cli.out.unwrap_or_else(|| cli.dir.clone());
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("gstm-analyze: creating {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }
    let verdict_path = out_dir.join(format!("{stem}_verdict.json"));
    let report_path = out_dir.join(format!("{stem}_report.md"));
    let md = render_markdown(&report);
    for (path, body) in [(&verdict_path, render_verdict_json(&report)), (&report_path, md.clone())]
    {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("gstm-analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    print!("{md}");
    println!();
    println!(
        "verdict: {} ({} checks) -> {}",
        if report.pass() { "PASS" } else { "FAIL" },
        report.checks.len(),
        verdict_path.display()
    );
    if report.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
