//! `gstm-loadgen` — seeded, ramped load for `gstm-server`.
//!
//! Spawns client threads on a ramp schedule; every client's action
//! stream, priorities, and misbehavior are drawn from `SplitMix64`
//! streams split off the run seed, so a campaign is reproducible.
//! Modes:
//!
//! * `mix` (default) — well-formed Hello/Action/Ping traffic.
//! * `garbage` — interleaves seeded junk bytes to exercise the
//!   decoder's resynchronization.
//! * `loris` — connects, then trickles one byte per interval.
//!
//! Exit code 0 when every client ran its schedule without a protocol
//! error; 1 when any client saw one (unexpected frame, early EOF before
//! its schedule completed without a `Goodbye`/`Overloaded` excuse);
//! 2 on bad usage.

use gstm_core::rng::SplitMix64;
use gstm_server::proto::{ActionOp, DecodeStep, Frame, FrameDecoder, FrameType};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone)]
struct Options {
    addr: String,
    clients: u32,
    ramp_ms: u64,
    actions: u32,
    interval_ms: u64,
    seed: u64,
    mode: Mode,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Mode {
    Mix,
    Garbage,
    Loris,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7777".into(),
            clients: 8,
            ramp_ms: 50,
            actions: 32,
            interval_ms: 5,
            seed: 0x10ad,
            mode: Mode::Mix,
        }
    }
}

const USAGE: &str = "usage: gstm-loadgen [options]
  --addr=HOST:PORT   server address (default 127.0.0.1:7777)
  --clients=N        client connections (default 8)
  --ramp-ms=N        delay between client starts (default 50)
  --actions=N        actions per client (default 32)
  --interval-ms=N    delay between a client's frames (default 5)
  --seed=N           run seed (default 0x10ad)
  --mode=mix|garbage|loris (default mix)";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    for arg in args {
        let (key, val) = arg.split_once('=').unwrap_or((arg.as_str(), ""));
        match key {
            "--addr" => o.addr = val.to_string(),
            "--clients" => o.clients = num(key, val)?,
            "--ramp-ms" => o.ramp_ms = num(key, val)?,
            "--actions" => o.actions = num(key, val)?,
            "--interval-ms" => o.interval_ms = num(key, val)?,
            "--seed" => o.seed = num(key, val)?,
            "--mode" => {
                o.mode = match val {
                    "mix" => Mode::Mix,
                    "garbage" => Mode::Garbage,
                    "loris" => Mode::Loris,
                    _ => return Err(format!("--mode wants mix|garbage|loris, got {val:?}")),
                }
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            _ => return Err(format!("unknown flag {key:?}\n{USAGE}")),
        }
    }
    Ok(o)
}

fn num<T: std::str::FromStr>(key: &str, val: &str) -> Result<T, String> {
    val.parse().map_err(|_| format!("{key} wants a number, got {val:?}"))
}

/// Shared outcome counters across client threads.
#[derive(Default)]
struct Tally {
    hellos: AtomicU64,
    welcomes: AtomicU64,
    overloaded: AtomicU64,
    goodbyes: AtomicU64,
    actions_sent: AtomicU64,
    ticks_seen: AtomicU64,
    pongs: AtomicU64,
    rtt_ns_sum: AtomicU64,
    protocol_errors: AtomicU64,
    early_closes: AtomicU64,
}

fn read_available(stream: &mut TcpStream, dec: &mut FrameDecoder) -> std::io::Result<bool> {
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return Ok(false),
            Ok(n) => dec.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(true),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// One client's scripted life. Returns `true` on a clean run.
fn client(id: u32, opts: &Options, tally: &Tally) -> bool {
    let mut rng = SplitMix64::new(opts.seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let Ok(mut stream) = TcpStream::connect(&opts.addr) else {
        tally.early_closes.fetch_add(1, Ordering::Relaxed);
        return false;
    };
    let _ = stream.set_nonblocking(true);
    let _ = stream.set_nodelay(true);
    let mut dec = FrameDecoder::new();
    let interval = Duration::from_millis(opts.interval_ms.max(1));

    if opts.mode == Mode::Loris {
        // Trickle a valid Hello one byte at a time, then go silent: the
        // server's slow-loris countermeasures (idle reaper, drain caps)
        // should close us, which counts as a clean outcome here.
        let bytes = Frame::hello().encode();
        for b in bytes {
            if stream.write_all(&[b]).is_err() {
                return true;
            }
            std::thread::sleep(interval * 4);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            match read_available(&mut stream, &mut dec) {
                Ok(true) => {}
                _ => return true, // server cut us loose
            }
            std::thread::sleep(interval * 4);
        }
        return true;
    }

    let send = |stream: &mut TcpStream, rng: &mut SplitMix64, frame: &Frame| -> bool {
        let mut bytes = frame.encode();
        if opts.mode == Mode::Garbage && rng.below(4) == 0 {
            // Prepend seeded junk; the decoder must resync past it.
            let junk_len = 1 + rng.below(16) as usize;
            let mut junk: Vec<u8> = (0..junk_len).map(|_| (rng.next() & 0xff) as u8).collect();
            junk.extend(bytes);
            bytes = junk;
        }
        stream.write_all(&bytes).is_ok()
    };

    tally.hellos.fetch_add(1, Ordering::Relaxed);
    if !send(&mut stream, &mut rng, &Frame::hello()) {
        tally.early_closes.fetch_add(1, Ordering::Relaxed);
        return false;
    }

    let mut sent = 0u32;
    let mut welcomed = false;
    let mut said_goodbye = false;
    let mut ping_sent_at: Option<(u64, Instant)> = None;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut clean = true;

    'life: while Instant::now() < deadline {
        let open = match read_available(&mut stream, &mut dec) {
            Ok(open) => open,
            Err(_) => false,
        };
        loop {
            match dec.next() {
                DecodeStep::Frame(f) => match f.kind {
                    FrameType::Welcome => {
                        welcomed = true;
                        tally.welcomes.fetch_add(1, Ordering::Relaxed);
                    }
                    FrameType::Overloaded => {
                        tally.overloaded.fetch_add(1, Ordering::Relaxed);
                        break 'life; // back off as told
                    }
                    FrameType::Goodbye => {
                        tally.goodbyes.fetch_add(1, Ordering::Relaxed);
                        break 'life;
                    }
                    FrameType::TickReport => {
                        tally.ticks_seen.fetch_add(1, Ordering::Relaxed);
                    }
                    FrameType::Pong => {
                        tally.pongs.fetch_add(1, Ordering::Relaxed);
                        if let Some((token, at)) = ping_sent_at.take() {
                            let mut tok = [0u8; 8];
                            if f.payload.len() >= 8 {
                                tok.copy_from_slice(&f.payload[..8]);
                            }
                            if u64::from_le_bytes(tok) == token {
                                let ns = at.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                                tally.rtt_ns_sum.fetch_add(ns, Ordering::Relaxed);
                            }
                        }
                    }
                    _ => {
                        tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        clean = false;
                    }
                },
                DecodeStep::NeedMore => break,
                DecodeStep::Fatal(_) => {
                    tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    clean = false;
                    break 'life;
                }
            }
        }
        if !open {
            if !(said_goodbye || sent >= opts.actions) {
                tally.early_closes.fetch_add(1, Ordering::Relaxed);
                clean = false;
            }
            break;
        }
        if welcomed && sent < opts.actions {
            let frame = match rng.below(8) {
                0 => {
                    let token = rng.next();
                    ping_sent_at = Some((token, Instant::now()));
                    Frame::ping(token)
                }
                1 => Frame::action(ActionOp::Attack, (rng.below(200) + 10) as u8, rng.below(64) as u16, 0),
                2 => Frame::action(ActionOp::Pickup, (rng.below(200) + 10) as u8, 0, 0),
                _ => Frame::action(
                    ActionOp::Move,
                    (rng.below(200) + 10) as u8,
                    rng.below(256) as u16,
                    rng.below(256) as u16,
                ),
            };
            if !send(&mut stream, &mut rng, &frame) {
                tally.early_closes.fetch_add(1, Ordering::Relaxed);
                clean = false;
                break;
            }
            sent += 1;
            tally.actions_sent.fetch_add(1, Ordering::Relaxed);
        } else if welcomed && sent >= opts.actions && !said_goodbye {
            let _ = send(&mut stream, &mut rng, &Frame::bye());
            said_goodbye = true; // wait for the server's Goodbye next loop
        }
        std::thread::sleep(interval);
    }
    clean
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let tally = Arc::new(Tally::default());
    let started = Instant::now();
    let mut handles = Vec::new();
    for id in 0..opts.clients {
        let o = opts.clone();
        let tally = Arc::clone(&tally);
        handles.push(std::thread::spawn(move || client(id, &o, &tally)));
        std::thread::sleep(Duration::from_millis(opts.ramp_ms));
    }
    let mut all_clean = true;
    for h in handles {
        all_clean &= h.join().unwrap_or(false);
    }
    let pongs = tally.pongs.load(Ordering::Relaxed);
    let rtt_avg_ns =
        if pongs > 0 { tally.rtt_ns_sum.load(Ordering::Relaxed) / pongs } else { 0 };
    println!(
        "{{\"clients\":{},\"mode\":\"{:?}\",\"seed\":{},\"elapsed_ms\":{},\
         \"hellos\":{},\"welcomes\":{},\"overloaded\":{},\"goodbyes\":{},\
         \"actions_sent\":{},\"tick_reports\":{},\"pongs\":{},\"rtt_avg_ns\":{},\
         \"protocol_errors\":{},\"early_closes\":{}}}",
        opts.clients,
        opts.mode,
        opts.seed,
        started.elapsed().as_millis(),
        tally.hellos.load(Ordering::Relaxed),
        tally.welcomes.load(Ordering::Relaxed),
        tally.overloaded.load(Ordering::Relaxed),
        tally.goodbyes.load(Ordering::Relaxed),
        tally.actions_sent.load(Ordering::Relaxed),
        tally.ticks_seen.load(Ordering::Relaxed),
        pongs,
        rtt_avg_ns,
        tally.protocol_errors.load(Ordering::Relaxed),
        tally.early_closes.load(Ordering::Relaxed),
    );
    std::process::exit(if all_clean { 0 } else { 1 });
}
