//! Standalone hook-overhead harness (no criterion, std only).
//!
//! Measures the per-commit cost of the guidance hooks under the same
//! schedule the `hook_overhead` criterion bench uses: each worker runs
//! gate → (3 aborts : 1 commit) cycles against one shared hook. The
//! `legacy` row is a faithful replica of the pre-sharding tracker (one
//! global pending mutex + one recorded mutex, `StateKey::new` on every
//! commit), so the printed ratio is the speedup this PR's sharded tracker
//! delivers. Run with:
//!
//! ```text
//! cargo run --release --example hook_overhead [threads...]
//! ```
//!
//! The `guided+tel` row attaches a [`Telemetry`] collector and replays
//! the runtime-side instrumentation (timestamps, counter records) inside
//! the window, so it is the *enabled-mode* per-window cost; the
//! `guided+drift` row attaches a [`DriftTracker`] instead (per-commit
//! observed-transition recording, no telemetry); the `guided+adapt` row
//! runs the adaptive hook *quiescent* — guardian polling, sliding window
//! recording, per-epoch drift recording, but a drift threshold it can
//! never reach, so no swap ever fires. Its A/B partner is `guided+drift`
//! (adaptive commits always take the observer path); the steady-state
//! hot-swap machinery must stay within 2% of it. The `guided+ctn` row
//! replays the backend-side conflict-provenance recording (one
//! space-saving sketch update plus one matrix bump per abort, against a
//! small hot set so the sketch stays on its hit path); its disabled
//! partner is the plain `guided` row, which still executes the runtime's
//! one-branch `Option` check with no tracker attached. The plain `guided`
//! row is the observability-disabled path the ≤2% ratio budget applies
//! to. The `guided+ops` row runs `guided+tel`'s exact window with the
//! live ops plane armed — a 50 ms windowed-telemetry roller and an HTTP
//! `/metrics` service thread, both off the commit path — so its A/B
//! partner is `guided+tel` and the delta is the ops plane's entire
//! hot-path cost (expected: noise).
//!
//! CI regression mode:
//!
//! ```text
//! cargo run --release --example hook_overhead -- --check [baseline-file]
//! ```
//!
//! compares the guided/legacy overhead *ratio* (normalized by the frozen
//! in-example legacy replica, so host speed and load cancel) against the
//! recorded baseline and exits nonzero when the telemetry-disabled path
//! regressed on both that ratio and the absolute guided ns/window.
//!
//! Numbers in README.md § Performance come from this harness.

use gstm_core::contention::ContentionTracker;
use gstm_core::drift::{DriftConfig, DriftTracker};
use gstm_core::events::ConflictSite;
use gstm_core::guidance::{GuidanceHook, GuidedHook, NoopHook, RecorderHook};
use gstm_core::ops::{self, OpsPlane, OpsRoller, OpsServer, SloSpec};
use gstm_core::telemetry::Telemetry;
use gstm_core::{
    AbortCause, AdaptConfig, GuidanceConfig, GuidedModel, Pair, StateKey, ThreadId, Tsa, TxnId,
};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// Replica of the tracker this PR replaced: every abort and every commit
/// takes a global lock; each commit allocates a fresh abort `Vec` and a
/// cloned `StateKey`.
#[derive(Default)]
struct LegacyRecorder {
    pending: Mutex<Vec<Pair>>,
    recorded: Mutex<Vec<StateKey>>,
}

impl GuidanceHook for LegacyRecorder {
    fn on_abort(&self, who: Pair, _cause: AbortCause) {
        self.pending.lock().unwrap().push(who);
    }

    fn on_commit(&self, who: Pair) {
        let aborts = std::mem::take(&mut *self.pending.lock().unwrap());
        let key = StateKey::new(aborts, who);
        self.recorded.lock().unwrap().push(key.clone());
    }
}

/// Aborts per commit in the measured cycle (3:1, a contended-workload mix).
const ABORTS_PER_COMMIT: usize = 3;

/// Conflict sites for the `guided+ctn` row: a hot set of
/// `ABORTS_PER_COMMIT` cache-line-spaced addresses shared by every
/// thread, so the sketch serves hits (its steady-state path on the
/// skewed workloads provenance exists for) rather than churning slots.
#[inline]
fn hot_site(i: usize) -> ConflictSite {
    ConflictSite::at(0x1000 + (i << 6))
}

/// The live ops plane's moving parts for the `guided+ops` row, held
/// alive (roller thread + HTTP service thread) for the duration of one
/// measured repetition and torn down between repetitions.
struct OpsRig {
    _plane: Arc<OpsPlane>,
    _roller: OpsRoller,
    _server: Option<OpsServer>,
}

/// One row's moving parts: the hook plus the optional runtime-side
/// instrumentation each window replays (telemetry records, conflict
/// provenance records), plus the off-path ops rig kept alive while the
/// row runs.
type Setup = (
    Arc<dyn GuidanceHook>,
    Option<Arc<Telemetry>>,
    Option<Arc<ContentionTracker>>,
    Option<OpsRig>,
);

/// Drive `commits` windows against `hook` from `threads` workers and
/// return the mean wall-clock nanoseconds per commit (full window: one
/// gate + three aborts + one commit). When `tel` is set, each window also
/// replays the runtime-side telemetry instrumentation (gate/commit
/// timestamps plus counter records), matching what the STM retry loops
/// do in enabled mode. When `ctn` is set, every abort also records its
/// conflict site into the tracker, matching the backends' abort paths;
/// when it is `None` the per-abort `Option` check still runs — that
/// branch is exactly the runtime's contention-disabled path.
fn drive(
    hook: Arc<dyn GuidanceHook>,
    tel: Option<Arc<Telemetry>>,
    ctn: Option<Arc<ContentionTracker>>,
    threads: u16,
    commits_per_thread: usize,
) -> f64 {
    let barrier = Arc::new(Barrier::new(threads as usize + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let hook = Arc::clone(&hook);
        let tel = tel.clone();
        let ctn = ctn.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let me = Pair::new(TxnId(t % 4), ThreadId(t));
            barrier.wait();
            for _ in 0..commits_per_thread {
                // Re-opaque the handle every window: stops LLVM
                // devirtualizing NoopHook and deleting the loop outright.
                let hook = black_box(&*hook);
                if let Some(t) = &tel {
                    let t0 = t.now_ns();
                    hook.gate(me);
                    t.record_gate_wait(me, t.now_ns().saturating_sub(t0));
                    for i in 0..ABORTS_PER_COMMIT {
                        hook.on_abort(me, AbortCause::Validation);
                        t.record_abort(me, AbortCause::Validation);
                        if let Some(ct) = &ctn {
                            ct.record(me.thread, AbortCause::Validation, hot_site(i));
                        }
                    }
                    let c0 = t.now_ns();
                    hook.on_commit(me);
                    t.record_commit(me, t.now_ns().saturating_sub(c0));
                } else {
                    hook.gate(me);
                    for i in 0..ABORTS_PER_COMMIT {
                        hook.on_abort(me, AbortCause::Validation);
                        if let Some(ct) = &ctn {
                            ct.record(me.thread, AbortCause::Validation, hot_site(i));
                        }
                    }
                    hook.on_commit(me);
                }
            }
            barrier.wait();
        }));
    }
    barrier.wait();
    let start = Instant::now();
    barrier.wait();
    let elapsed = start.elapsed();
    for h in handles {
        h.join().unwrap();
    }
    elapsed.as_nanos() as f64 / (threads as usize * commits_per_thread) as f64
}

/// A model whose states are the solo commits of every pair the harness
/// uses, chained so each state allows its successors — gates exercise the
/// bitmap path against mostly-known states.
fn harness_model(threads: u16) -> Arc<GuidedModel> {
    let keys: Vec<StateKey> = (0..threads)
        .map(|t| StateKey::solo(Pair::new(TxnId(t % 4), ThreadId(t))))
        .collect();
    let mut run = Vec::new();
    for _ in 0..8 {
        run.extend(keys.iter().cloned());
    }
    let tsa = Tsa::from_runs(&[run]);
    Arc::new(GuidedModel::build(tsa, &GuidanceConfig::default()))
}

/// Micro-measure the two per-commit hook components this PR rebuilt, each
/// against a replica of its predecessor:
///
/// * **gate membership** — the old per-state `HashSet<u32>` of packed
///   allowed pairs vs [`GuidedModel::is_allowed`]'s bitmap load;
/// * **commit classify** — the old `StateKey::new` (allocates the boxed
///   abort slice) + `HashMap<StateKey, u32>` SipHash lookup vs
///   [`GuidedModel::id_of_parts`] over the borrowed scratch window.
fn component_micro() {
    // A model rich enough that the classify queries below hit real
    // states: solo commits plus two-abort windows for every pair.
    let ab = vec![
        Pair::new(TxnId(0), ThreadId(1)),
        Pair::new(TxnId(1), ThreadId(2)),
    ];
    let mut run = Vec::new();
    for round in 0..8u16 {
        for t in 0..8u16 {
            let commit = Pair::new(TxnId(t % 4), ThreadId(t));
            run.push(if (round + t) % 2 == 0 {
                StateKey::solo(commit)
            } else {
                StateKey::new(ab.clone(), commit)
            });
        }
    }
    let model = GuidedModel::build(Tsa::from_runs(&[run]), &GuidanceConfig::default());
    let tsa = model.tsa();
    let states: Vec<StateKey> = tsa.states().to_vec();
    // Replicas of the seed's per-state HashSet membership and
    // StateKey-keyed index.
    let legacy_allowed: Vec<HashSet<u32>> = tsa
        .state_ids()
        .map(|id| {
            model
                .kept_destinations(id)
                .iter()
                .flat_map(|&d| tsa.state(d).pairs())
                .map(Pair::packed)
                .collect()
        })
        .collect();
    let legacy_index: HashMap<StateKey, u32> = states
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i as u32))
        .collect();
    let queries: Vec<Pair> = (0..64u16)
        .map(|i| Pair::new(TxnId(i % 5), ThreadId(i % 9)))
        .collect();
    let state_ids: Vec<gstm_core::StateId> = tsa.state_ids().collect();

    const REPS: usize = 2_000_000;
    let time = |f: &mut dyn FnMut(usize) -> usize| -> f64 {
        let start = Instant::now();
        let mut acc = 0usize;
        for i in 0..REPS {
            acc = acc.wrapping_add(f(i));
        }
        black_box(acc);
        start.elapsed().as_nanos() as f64 / REPS as f64
    };

    let gate_legacy = time(&mut |i| {
        let s = &legacy_allowed[i % legacy_allowed.len()];
        s.contains(&queries[i % queries.len()].packed()) as usize
    });
    let gate_bitmap = time(&mut |i| {
        model.is_allowed(state_ids[i % state_ids.len()], queries[i % queries.len()]) as usize
    });

    // Classify a two-abort window, the shape a contended commit drains.
    let scratch: Vec<Pair> = {
        let mut v = ab.clone();
        v.sort_unstable();
        v
    };
    let commits: Vec<Pair> = states.iter().map(StateKey::commit).collect();
    let classify_legacy = time(&mut |i| {
        let key = StateKey::new(scratch.clone(), commits[i % commits.len()]);
        legacy_index.get(&key).copied().unwrap_or(0) as usize
    });
    let classify_parts = time(&mut |i| {
        tsa.id_of_parts(&scratch, commits[i % commits.len()])
            .map(|s| s.0)
            .unwrap_or(0) as usize
    });

    println!("\ncomponent micro (ns/op, single thread):");
    println!(
        "gate membership   legacy(HashSet) {gate_legacy:>7.2}  bitmap {gate_bitmap:>7.2}  ({:.1}x)",
        gate_legacy / gate_bitmap
    );
    println!(
        "commit classify   legacy(alloc+SipHash) {classify_legacy:>7.2}  parts(FNV) {classify_parts:>7.2}  ({:.1}x)",
        classify_legacy / classify_parts
    );
}

const COMMITS: usize = 200_000;

/// Best-of-`n` ns/window for a fresh hook per repetition.
fn best_of(n: usize, threads: u16, mk: &dyn Fn() -> Setup) -> f64 {
    (0..n)
        .map(|_| {
            let (hook, tel, ctn, rig) = mk();
            let ns = drive(hook, tel, ctn, threads, COMMITS);
            drop(rig);
            ns
        })
        .fold(f64::INFINITY, f64::min)
}

/// Median-of-`n` ns/window — the `--check` aggregator. An oversubscribed
/// single-core host throws low *and* high outliers; the median tracks the
/// typical window where a minimum chases lucky scheduling.
fn median_of(n: usize, threads: u16, mk: &dyn Fn() -> Setup) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let (hook, tel, ctn, rig) = mk();
            let ns = drive(hook, tel, ctn, threads, COMMITS);
            drop(rig);
            ns
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[n / 2]
}

/// `--check [baseline]`: recompute the telemetry-disabled guided
/// overhead and fail (exit 1) only when a thread count regressed against
/// the baseline on *both* signals: the guided/legacy ratio AND the
/// absolute guided ns/window. The normalization anchor is the in-example
/// [`LegacyRecorder`] replica — frozen code that no crate change can
/// touch, with the same workload shape as the guided window (locks,
/// hashing, ~couple hundred ns), measured seconds apart in the same
/// process, so a host-load burst or a slow runner inflates numerator and
/// denominator together and cancels out of the ratio. (An earlier
/// revision normalized by the 1-thread noop window; a 7 ns empty loop
/// responds to host load completely differently than a 190 ns
/// lock-and-hash window, so that ratio swung ±25% on shared runners.)
/// Either signal alone is still jittery — scheduling can land on the
/// legacy window alone and deflate the ratio's denominator — so only
/// both regressing fails the gate; a genuine hot-path regression moves
/// both.
fn run_check(baseline_path: &str) -> ! {
    let body = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("hook_overhead --check: cannot read {baseline_path}: {e}");
        std::process::exit(2);
    });
    let mut base: HashMap<String, f64> = HashMap::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        if let (Some(k), Some(v)) = (it.next(), it.next()) {
            if let Ok(v) = v.parse() {
                base.insert(k.to_string(), v);
            }
        }
    }
    let get = |k: &str| -> f64 {
        *base.get(k).unwrap_or_else(|| {
            eprintln!("hook_overhead --check: baseline {baseline_path} lacks key {k}");
            std::process::exit(2);
        })
    };
    // 5% by default: the guided/legacy anchor cancels host speed, but
    // single-core scheduling still jitters the ratio a few percent.
    // HOOK_CHECK_TOLERANCE overrides for runner classes with known
    // jitter.
    let tolerance: f64 = std::env::var("HOOK_CHECK_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.05);
    const MAX_ROUNDS: usize = 10;
    let mut failed = false;
    for threads in [1u16, 8] {
        let model = harness_model(threads);
        let base_guided = get(&format!("guided_{threads}t"));
        let base_legacy = get(&format!("legacy_{threads}t"));
        let base_ratio = base_guided / base_legacy;
        let ratio_limit = base_ratio * tolerance;
        let abs_limit = base_guided * tolerance;
        // Rounds measure an independent legacy/guided pair each; any
        // round clearing either limit passes. A host-load burst inflates
        // some rounds and a quiet one clears them, while a genuine
        // hot-path regression inflates every round on both signals. A
        // failing round backs off with a growing sleep so a multi-second
        // burst doesn't blanket all rounds back-to-back.
        let (mut ratio, mut legacy, mut guided) = (f64::INFINITY, 0.0, f64::INFINITY);
        for round in 0..MAX_ROUNDS {
            let l = median_of(3, threads, &|| {
                (Arc::new(LegacyRecorder::default()), None, None, None)
            });
            let g = median_of(3, threads, &|| {
                (
                    Arc::new(GuidedHook::new(Arc::clone(&model), GuidanceConfig::default())),
                    None,
                    None,
                    None,
                )
            });
            if g / l < ratio {
                (ratio, legacy) = (g / l, l);
            }
            guided = guided.min(g);
            if ratio <= ratio_limit || guided <= abs_limit {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100 * (round as u64 + 1)));
        }
        let verdict = if ratio <= ratio_limit || guided <= abs_limit {
            "PASS"
        } else {
            failed = true;
            "FAIL"
        };
        println!(
            "{verdict} {threads}t: guided/legacy ratio {ratio:.3} vs baseline {base_ratio:.3} \
             (limit {ratio_limit:.3}) and guided {guided:.1} ns vs baseline {base_guided:.1} ns \
             (limit {abs_limit:.1}; legacy {legacy:.1} ns) — fails only when both regress",
        );
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let default = "crates/bench/baselines/hook_overhead_pr5.txt".to_string();
        run_check(args.get(1).unwrap_or(&default));
    }
    let thread_counts: Vec<u16> = {
        let parsed: Vec<u16> = args.iter().filter_map(|a| a.parse().ok()).collect();
        if parsed.is_empty() {
            vec![1, 8]
        } else {
            parsed
        }
    };
    println!(
        "hook_overhead: ns/commit-window (gate + {ABORTS_PER_COMMIT} aborts + commit), \
         {COMMITS} commits/thread"
    );
    println!("{:<12} {:>8} {:>12} {:>10}", "hook", "threads", "ns/commit", "vs legacy");
    for &threads in &thread_counts {
        // Warmup + measure; take the best of 3 to damp scheduler noise.
        let mut rows: Vec<(&str, f64)> = Vec::new();
        let best = |mk: &dyn Fn() -> Setup| -> f64 { best_of(3, threads, mk) };
        let legacy = best(&|| (Arc::new(LegacyRecorder::default()), None, None, None));
        rows.push(("noop", best(&|| (Arc::new(NoopHook), None, None, None))));
        rows.push(("legacy", legacy));
        rows.push(("sharded", best(&|| (Arc::new(RecorderHook::new()), None, None, None))));
        let model = harness_model(threads);
        rows.push((
            "guided",
            best(&|| {
                (
                    Arc::new(GuidedHook::new(Arc::clone(&model), GuidanceConfig::default())),
                    None,
                    None,
                    None,
                )
            }),
        ));
        // Conflict-provenance enabled: the same telemetry-disabled window
        // plus one `ContentionTracker::record` per abort (sketch hit +
        // matrix bump). A/B partner: the plain `guided` row above, which
        // executes the runtime's `Option` branch with no tracker.
        rows.push((
            "guided+ctn",
            best(&|| {
                (
                    Arc::new(GuidedHook::new(Arc::clone(&model), GuidanceConfig::default())),
                    None,
                    Some(Arc::new(ContentionTracker::new())),
                    None,
                )
            }),
        ));
        // Drift-enabled mode: per-commit observed-transition recording
        // (one state swap + binary search + relaxed add), no telemetry.
        rows.push((
            "guided+drift",
            best(&|| {
                let drift = Arc::new(DriftTracker::new(&model));
                (
                    Arc::new(GuidedHook::with_observability(
                        Arc::clone(&model),
                        GuidanceConfig::default(),
                        None,
                        Some(drift),
                    )),
                    None,
                    None,
                    None,
                )
            }),
        ));
        // Adaptive mode, quiescent: the epoch cell resolves on every
        // gate/commit, the sliding window records every commit, the
        // epoch's drift tracker sees every transition, and the guardian
        // polls in the background — but `min_transitions: u64::MAX` pins
        // the verdict at Insufficient so no regeneration ever fires.
        // A/B partner: guided+drift (same observer-path commit).
        rows.push((
            "guided+adapt",
            best(&|| {
                let adapt = AdaptConfig {
                    drift: DriftConfig {
                        min_transitions: u64::MAX,
                        ..DriftConfig::default()
                    },
                    ..AdaptConfig::default()
                };
                let hook =
                    GuidedHook::adaptive(Arc::clone(&model), GuidanceConfig::default(), adapt, None);
                (hook as Arc<dyn GuidanceHook>, None, None, None)
            }),
        ));
        // Enabled mode: counters + histograms + runtime-side timestamps
        // (counters_only keeps the trace ring out of the picture, matching
        // the steady-state harness configuration).
        rows.push((
            "guided+tel",
            best(&|| {
                let tel = Arc::new(Telemetry::counters_only());
                (
                    Arc::new(GuidedHook::with_telemetry(
                        Arc::clone(&model),
                        GuidanceConfig::default(),
                        Some(Arc::clone(&tel)),
                    )),
                    Some(tel),
                    None,
                    None,
                )
            }),
        ));
        // Live ops plane on top of enabled-mode telemetry: a roller
        // thread snapshots the collector every 50 ms and an HTTP service
        // thread polls its listener — both entirely off the commit path,
        // which touches only the same relaxed counters as `guided+tel`.
        // A/B partner: `guided+tel`; the delta is the ops plane's whole
        // hot-path bill and must be noise.
        rows.push((
            "guided+ops",
            best(&|| {
                let tel = Arc::new(Telemetry::counters_only());
                let plane = Arc::new(OpsPlane::new(
                    SloSpec::parse("window-ms=50").expect("static spec"),
                ));
                plane.attach(&tel);
                let roller =
                    ops::start_roller(Arc::clone(&plane), std::time::Duration::from_millis(50));
                let server = ops::serve(Arc::clone(&plane), "127.0.0.1:0").ok();
                (
                    Arc::new(GuidedHook::with_telemetry(
                        Arc::clone(&model),
                        GuidanceConfig::default(),
                        Some(Arc::clone(&tel)),
                    )),
                    Some(tel),
                    None,
                    Some(OpsRig { _plane: plane, _roller: roller, _server: server }),
                )
            }),
        ));
        for (name, ns) in rows {
            println!("{name:<12} {threads:>8} {ns:>12.1} {:>9.2}x", legacy / ns);
        }
    }
    component_micro();
}
