//! Standalone hook-overhead harness (no criterion, std only).
//!
//! Measures the per-commit cost of the guidance hooks under the same
//! schedule the `hook_overhead` criterion bench uses: each worker runs
//! gate → (3 aborts : 1 commit) cycles against one shared hook. The
//! `legacy` row is a faithful replica of the pre-sharding tracker (one
//! global pending mutex + one recorded mutex, `StateKey::new` on every
//! commit), so the printed ratio is the speedup this PR's sharded tracker
//! delivers. Run with:
//!
//! ```text
//! cargo run --release --example hook_overhead [threads...]
//! ```
//!
//! Numbers in README.md § Performance come from this harness.

use gstm_core::guidance::{GuidanceHook, GuidedHook, NoopHook, RecorderHook};
use gstm_core::{AbortCause, GuidanceConfig, GuidedModel, Pair, StateKey, ThreadId, Tsa, TxnId};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// Replica of the tracker this PR replaced: every abort and every commit
/// takes a global lock; each commit allocates a fresh abort `Vec` and a
/// cloned `StateKey`.
#[derive(Default)]
struct LegacyRecorder {
    pending: Mutex<Vec<Pair>>,
    recorded: Mutex<Vec<StateKey>>,
}

impl GuidanceHook for LegacyRecorder {
    fn on_abort(&self, who: Pair, _cause: AbortCause) {
        self.pending.lock().unwrap().push(who);
    }

    fn on_commit(&self, who: Pair) {
        let aborts = std::mem::take(&mut *self.pending.lock().unwrap());
        let key = StateKey::new(aborts, who);
        self.recorded.lock().unwrap().push(key.clone());
    }
}

/// Aborts per commit in the measured cycle (3:1, a contended-workload mix).
const ABORTS_PER_COMMIT: usize = 3;

/// Drive `commits` windows against `hook` from `threads` workers and
/// return the mean wall-clock nanoseconds per commit (full window: one
/// gate + three aborts + one commit).
fn drive(hook: Arc<dyn GuidanceHook>, threads: u16, commits_per_thread: usize) -> f64 {
    let barrier = Arc::new(Barrier::new(threads as usize + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let hook = Arc::clone(&hook);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let me = Pair::new(TxnId(t % 4), ThreadId(t));
            barrier.wait();
            for _ in 0..commits_per_thread {
                hook.gate(me);
                for _ in 0..ABORTS_PER_COMMIT {
                    hook.on_abort(me, AbortCause::Validation);
                }
                hook.on_commit(me);
            }
            barrier.wait();
        }));
    }
    barrier.wait();
    let start = Instant::now();
    barrier.wait();
    let elapsed = start.elapsed();
    for h in handles {
        h.join().unwrap();
    }
    elapsed.as_nanos() as f64 / (threads as usize * commits_per_thread) as f64
}

/// A model whose states are the solo commits of every pair the harness
/// uses, chained so each state allows its successors — gates exercise the
/// bitmap path against mostly-known states.
fn harness_model(threads: u16) -> Arc<GuidedModel> {
    let keys: Vec<StateKey> = (0..threads)
        .map(|t| StateKey::solo(Pair::new(TxnId(t % 4), ThreadId(t))))
        .collect();
    let mut run = Vec::new();
    for _ in 0..8 {
        run.extend(keys.iter().cloned());
    }
    let tsa = Tsa::from_runs(&[run]);
    Arc::new(GuidedModel::build(tsa, &GuidanceConfig::default()))
}

/// Micro-measure the two per-commit hook components this PR rebuilt, each
/// against a replica of its predecessor:
///
/// * **gate membership** — the old per-state `HashSet<u32>` of packed
///   allowed pairs vs [`GuidedModel::is_allowed`]'s bitmap load;
/// * **commit classify** — the old `StateKey::new` (allocates the boxed
///   abort slice) + `HashMap<StateKey, u32>` SipHash lookup vs
///   [`GuidedModel::id_of_parts`] over the borrowed scratch window.
fn component_micro() {
    // A model rich enough that the classify queries below hit real
    // states: solo commits plus two-abort windows for every pair.
    let ab = vec![
        Pair::new(TxnId(0), ThreadId(1)),
        Pair::new(TxnId(1), ThreadId(2)),
    ];
    let mut run = Vec::new();
    for round in 0..8u16 {
        for t in 0..8u16 {
            let commit = Pair::new(TxnId(t % 4), ThreadId(t));
            run.push(if (round + t) % 2 == 0 {
                StateKey::solo(commit)
            } else {
                StateKey::new(ab.clone(), commit)
            });
        }
    }
    let model = GuidedModel::build(Tsa::from_runs(&[run]), &GuidanceConfig::default());
    let tsa = model.tsa();
    let states: Vec<StateKey> = tsa.states().to_vec();
    // Replicas of the seed's per-state HashSet membership and
    // StateKey-keyed index.
    let legacy_allowed: Vec<HashSet<u32>> = tsa
        .state_ids()
        .map(|id| {
            model
                .kept_destinations(id)
                .iter()
                .flat_map(|&d| tsa.state(d).pairs())
                .map(Pair::packed)
                .collect()
        })
        .collect();
    let legacy_index: HashMap<StateKey, u32> = states
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i as u32))
        .collect();
    let queries: Vec<Pair> = (0..64u16)
        .map(|i| Pair::new(TxnId(i % 5), ThreadId(i % 9)))
        .collect();
    let state_ids: Vec<gstm_core::StateId> = tsa.state_ids().collect();

    const REPS: usize = 2_000_000;
    let time = |f: &mut dyn FnMut(usize) -> usize| -> f64 {
        let start = Instant::now();
        let mut acc = 0usize;
        for i in 0..REPS {
            acc = acc.wrapping_add(f(i));
        }
        black_box(acc);
        start.elapsed().as_nanos() as f64 / REPS as f64
    };

    let gate_legacy = time(&mut |i| {
        let s = &legacy_allowed[i % legacy_allowed.len()];
        s.contains(&queries[i % queries.len()].packed()) as usize
    });
    let gate_bitmap = time(&mut |i| {
        model.is_allowed(state_ids[i % state_ids.len()], queries[i % queries.len()]) as usize
    });

    // Classify a two-abort window, the shape a contended commit drains.
    let scratch: Vec<Pair> = {
        let mut v = ab.clone();
        v.sort_unstable();
        v
    };
    let commits: Vec<Pair> = states.iter().map(StateKey::commit).collect();
    let classify_legacy = time(&mut |i| {
        let key = StateKey::new(scratch.clone(), commits[i % commits.len()]);
        legacy_index.get(&key).copied().unwrap_or(0) as usize
    });
    let classify_parts = time(&mut |i| {
        tsa.id_of_parts(&scratch, commits[i % commits.len()])
            .map(|s| s.0)
            .unwrap_or(0) as usize
    });

    println!("\ncomponent micro (ns/op, single thread):");
    println!(
        "gate membership   legacy(HashSet) {gate_legacy:>7.2}  bitmap {gate_bitmap:>7.2}  ({:.1}x)",
        gate_legacy / gate_bitmap
    );
    println!(
        "commit classify   legacy(alloc+SipHash) {classify_legacy:>7.2}  parts(FNV) {classify_parts:>7.2}  ({:.1}x)",
        classify_legacy / classify_parts
    );
}

fn main() {
    let thread_counts: Vec<u16> = {
        let args: Vec<u16> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![1, 8]
        } else {
            args
        }
    };
    const COMMITS: usize = 200_000;
    println!(
        "hook_overhead: ns/commit-window (gate + {ABORTS_PER_COMMIT} aborts + commit), \
         {COMMITS} commits/thread"
    );
    println!("{:<10} {:>8} {:>12} {:>10}", "hook", "threads", "ns/commit", "vs legacy");
    for &threads in &thread_counts {
        // Warmup + measure; take the best of 3 to damp scheduler noise.
        let mut rows: Vec<(&str, f64)> = Vec::new();
        let best = |mk: &dyn Fn() -> Arc<dyn GuidanceHook>| -> f64 {
            (0..3)
                .map(|_| drive(mk(), threads, COMMITS))
                .fold(f64::INFINITY, f64::min)
        };
        let legacy = best(&|| Arc::new(LegacyRecorder::default()));
        rows.push(("noop", best(&|| Arc::new(NoopHook))));
        rows.push(("legacy", legacy));
        rows.push(("sharded", best(&|| Arc::new(RecorderHook::new()))));
        let model = harness_model(threads);
        rows.push((
            "guided",
            best(&|| Arc::new(GuidedHook::new(Arc::clone(&model), GuidanceConfig::default()))),
        ));
        for (name, ns) in rows {
            println!("{name:<10} {threads:>8} {ns:>12.1} {:>9.2}x", legacy / ns);
        }
    }
    component_micro();
}
