//! Live operations plane: windowed telemetry, an SLO watchdog, a flight
//! recorder, and a dependency-free HTTP exporter.
//!
//! Everything the batch pipeline measures after a run — abort ratio,
//! gate released-rate, commit latency quantiles, drift/breaker verdicts,
//! hot addresses — this module re-derives *while the run executes*, as
//! per-window deltas over the existing [`Telemetry`] counters:
//!
//! * [`WindowedTelemetry`] snapshots the cumulative counters on a fixed
//!   cadence and keeps a bounded ring of per-window deltas plus a rollup
//!   of evicted windows, with the hard invariant that
//!   `Σ retained windows + evicted rollup == cumulative counters` exactly
//!   (every delta is an exact `u64` difference of successive snapshots,
//!   so the partition holds by construction — [`WindowedTelemetry::check_partition`]
//!   re-verifies it and `gstm-analyze` cross-checks the exported form).
//! * [`SloWatchdog`] is an Ok→Warn→Incident state machine with
//!   hysteresis (consecutive breaching windows to escalate, consecutive
//!   clean windows to step back down) over windowed rates plus the
//!   breaker position and drift verdict.
//! * Entering Incident trips the **flight recorder**: the last N
//!   windows, a trace-ring drain, the contention snapshot, and the drift
//!   verdict are serialized as a stamped incident artifact
//!   ([`render_incident_json`]) that `gstm-analyze` ingests. Trace
//!   events in the dump deliberately omit `ts_ns`: `seq` order is the
//!   causal truth, and dropping wall-clock noise is what makes a
//!   chaos-seeded incident replay bit-identically.
//! * [`serve`] runs a hand-rolled HTTP/1.1 exporter on one
//!   `std::net::TcpListener` service thread — no dependencies — serving
//!   `/metrics` (Prometheus text, live), `/health` (SLO verdict JSON,
//!   503 while in Incident), `/vars` (full snapshot JSON), and
//!   `/incidents`.
//!
//! ## Why this never touches the hot path
//!
//! The aggregator only ever calls [`Telemetry::snapshot`], which reads
//! the same relaxed atomics the backends already write; no
//! instrumentation point gains a branch, a fence, or a timestamp. The
//! exporter thread reads the aggregator under its own mutex. The only
//! coupling to a running STM is the `Arc<Telemetry>` it already
//! publishes to.

use crate::drift::DriftVerdict;
use crate::sync::Mutex;
use crate::telemetry::{
    LatencyHistogram, Telemetry, TelemetrySnapshot, TraceEvent, TraceKind, ABORT_CAUSE_NAMES,
    BUILD_VERSION, SCHEMA_VERSION,
};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default bound on retained windows (older windows fold into the
/// evicted rollup).
pub const DEFAULT_WINDOW_RING: usize = 64;

/// Hot addresses carried per window (from the contention sketch's
/// merged top-K at window close).
pub const WINDOW_HOT_ADDRS: usize = 4;

// ---------------------------------------------------------------------------
// Window counters and deltas
// ---------------------------------------------------------------------------

/// The monotone counter fields of a [`TelemetrySnapshot`], as plain
/// data: both the cumulative reduction and a per-window delta use this
/// shape, so the partition invariant is checked field-by-field with
/// ordinary `==`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowCounters {
    /// Committed attempts.
    pub commits: u64,
    /// Aborted attempts by cause (indexed per [`ABORT_CAUSE_NAMES`]).
    pub aborts: [u64; 6],
    /// Gate calls that passed immediately.
    pub gate_passed: u64,
    /// Gate calls that waited before passing.
    pub gate_waited: u64,
    /// Gate calls released by the progress escape.
    pub gate_released: u64,
    /// Trace events lost to ring overwrites.
    pub trace_dropped: u64,
    /// Guided-model hot-swaps.
    pub model_swaps: u64,
    /// Breaker trips.
    pub breaker_trips: u64,
    /// Breaker re-closes.
    pub breaker_recloses: u64,
    /// Breaker half-open probes.
    pub breaker_probes: u64,
    /// Model files rejected by integrity checks.
    pub model_rejected: u64,
    /// Adapt-guardian restarts.
    pub guardian_restarts: u64,
    /// Commit-latency histogram buckets (delta of bucket counts, so a
    /// window has its own latency distribution, not the cumulative one).
    pub commit_buckets: Vec<u64>,
    /// Commit-latency sample count.
    pub commit_count: u64,
    /// Commit-latency sample sum (ns).
    pub commit_sum_ns: u64,
}

impl WindowCounters {
    /// Reduce a snapshot to its monotone counter fields.
    pub fn from_snapshot(s: &TelemetrySnapshot) -> Self {
        WindowCounters {
            commits: s.commits,
            aborts: s.aborts,
            gate_passed: s.gate_passed,
            gate_waited: s.gate_waited,
            gate_released: s.gate_released,
            trace_dropped: s.trace_dropped,
            model_swaps: s.model_swaps,
            breaker_trips: s.breaker_trips,
            breaker_recloses: s.breaker_recloses,
            breaker_probes: s.breaker_probes,
            model_rejected: s.breaker_model_rejected,
            guardian_restarts: s.guardian_restarts,
            commit_buckets: s.commit_ns.buckets.clone(),
            commit_count: s.commit_ns.count,
            commit_sum_ns: s.commit_ns.sum,
        }
    }

    /// Total aborted attempts.
    pub fn aborts_total(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Total gate calls.
    pub fn gate_total(&self) -> u64 {
        self.gate_passed + self.gate_waited + self.gate_released
    }

    /// Whether every counter is zero (an idle window).
    pub fn is_zero(&self) -> bool {
        self.commits == 0
            && self.aborts_total() == 0
            && self.gate_total() == 0
            && self.trace_dropped == 0
            && self.model_swaps == 0
            && self.breaker_trips == 0
            && self.breaker_recloses == 0
            && self.breaker_probes == 0
            && self.model_rejected == 0
            && self.guardian_restarts == 0
            && self.commit_count == 0
    }

    /// Fold `other` into `self` (exact addition, bucket-wise for the
    /// histogram).
    pub fn add(&mut self, other: &WindowCounters) {
        self.commits += other.commits;
        for (a, b) in self.aborts.iter_mut().zip(&other.aborts) {
            *a += b;
        }
        self.gate_passed += other.gate_passed;
        self.gate_waited += other.gate_waited;
        self.gate_released += other.gate_released;
        self.trace_dropped += other.trace_dropped;
        self.model_swaps += other.model_swaps;
        self.breaker_trips += other.breaker_trips;
        self.breaker_recloses += other.breaker_recloses;
        self.breaker_probes += other.breaker_probes;
        self.model_rejected += other.model_rejected;
        self.guardian_restarts += other.guardian_restarts;
        if self.commit_buckets.len() < other.commit_buckets.len() {
            self.commit_buckets.resize(other.commit_buckets.len(), 0);
        }
        for (a, b) in self.commit_buckets.iter_mut().zip(&other.commit_buckets) {
            *a += b;
        }
        self.commit_count += other.commit_count;
        self.commit_sum_ns = self.commit_sum_ns.wrapping_add(other.commit_sum_ns);
    }

    /// `self - older`, exact. Returns `None` if any field would go
    /// negative (a non-monotone pair, which `WindowedTelemetry` never
    /// produces: collectors are absorbed into the base before being
    /// replaced, so the cumulative view only grows).
    pub fn delta_from(&self, older: &WindowCounters) -> Option<WindowCounters> {
        let mut aborts = [0u64; 6];
        for i in 0..6 {
            aborts[i] = self.aborts[i].checked_sub(older.aborts[i])?;
        }
        let mut commit_buckets = vec![0u64; self.commit_buckets.len()];
        for (i, out) in commit_buckets.iter_mut().enumerate() {
            let old = older.commit_buckets.get(i).copied().unwrap_or(0);
            *out = self.commit_buckets[i].checked_sub(old)?;
        }
        Some(WindowCounters {
            commits: self.commits.checked_sub(older.commits)?,
            aborts,
            gate_passed: self.gate_passed.checked_sub(older.gate_passed)?,
            gate_waited: self.gate_waited.checked_sub(older.gate_waited)?,
            gate_released: self.gate_released.checked_sub(older.gate_released)?,
            trace_dropped: self.trace_dropped.checked_sub(older.trace_dropped)?,
            model_swaps: self.model_swaps.checked_sub(older.model_swaps)?,
            breaker_trips: self.breaker_trips.checked_sub(older.breaker_trips)?,
            breaker_recloses: self.breaker_recloses.checked_sub(older.breaker_recloses)?,
            breaker_probes: self.breaker_probes.checked_sub(older.breaker_probes)?,
            model_rejected: self.model_rejected.checked_sub(older.model_rejected)?,
            guardian_restarts: self.guardian_restarts.checked_sub(older.guardian_restarts)?,
            commit_buckets,
            commit_count: self.commit_count.checked_sub(older.commit_count)?,
            commit_sum_ns: self.commit_sum_ns.wrapping_sub(older.commit_sum_ns),
        })
    }
}

/// Quantile upper bound over delta buckets (same bucket resolution as
/// [`HistogramSnapshot::quantile_upper_bound`], but over a window's own
/// distribution).
fn bucket_quantile(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = (q.clamp(0.0, 1.0) * count as f64).ceil() as u64;
    let mut cum = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        cum += b;
        if cum >= target {
            return LatencyHistogram::bucket_range(i).1;
        }
    }
    LatencyHistogram::bucket_range(buckets.len().saturating_sub(1)).1
}

/// One closed window: exact counter deltas plus point-in-time gauges
/// sampled at close.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowDelta {
    /// Zero-based index among non-idle windows.
    pub index: u64,
    /// Exact counter deltas for this window.
    pub counters: WindowCounters,
    /// Median commit latency within the window (bucket upper bound; ns).
    pub commit_p50_ns: u64,
    /// p99 commit latency within the window (bucket upper bound; ns).
    pub commit_p99_ns: u64,
    /// `aborts / (commits + aborts)` within the window, percent.
    pub abort_ratio_pct: f64,
    /// `released / gate_total` within the window, percent.
    pub released_pct: f64,
    /// Off-model transition fraction at close (live drift gauge), when a
    /// drift tracker is attached.
    pub off_model_pct: Option<f64>,
    /// Drift verdict code at close ([`DriftVerdict::code`]; 0 when no
    /// tracker is attached).
    pub staleness: u8,
    /// Breaker position at close (0 closed, 1 open, 2 half-open).
    pub breaker_state: u8,
    /// Top hot addresses `(addr, count)` from the contention sketch at
    /// close (cumulative counts; empty without a tracker).
    pub hot_addrs: Vec<(usize, u64)>,
    /// Window-scoped network-server stats, when a [`ServerSource`] is
    /// registered on the plane (`None` otherwise — the plane predates
    /// the server or none is attached).
    pub server: Option<ServerWindow>,
}

impl WindowDelta {
    fn from_counters(index: u64, counters: WindowCounters, snap: &TelemetrySnapshot) -> Self {
        let attempts = counters.commits + counters.aborts_total();
        let abort_ratio_pct = if attempts == 0 {
            0.0
        } else {
            counters.aborts_total() as f64 / attempts as f64 * 100.0
        };
        let gate = counters.gate_total();
        let released_pct = if gate == 0 {
            0.0
        } else {
            counters.gate_released as f64 / gate as f64 * 100.0
        };
        let commit_p50_ns = bucket_quantile(&counters.commit_buckets, counters.commit_count, 0.50);
        let commit_p99_ns = bucket_quantile(&counters.commit_buckets, counters.commit_count, 0.99);
        let (off_model_pct, staleness) = match &snap.model_drift {
            Some(d) => (Some(d.off_model_pct), d.verdict.code()),
            None => (None, 0),
        };
        let hot_addrs = snap
            .contention
            .as_ref()
            .map(|c| c.top.iter().take(WINDOW_HOT_ADDRS).map(|h| (h.addr, h.count)).collect())
            .unwrap_or_default();
        WindowDelta {
            index,
            counters,
            commit_p50_ns,
            commit_p99_ns,
            abort_ratio_pct,
            released_pct,
            off_model_pct,
            staleness,
            breaker_state: snap.breaker_state,
            hot_addrs,
            server: None,
        }
    }
}

/// One window of network-server activity: frame/action deltas since the
/// previous close plus point-in-time gauges, drained from a
/// [`ServerSource`] when the plane rolls.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerWindow {
    /// Complete frames decoded from clients this window.
    pub frames_in: u64,
    /// Frames queued to clients this window.
    pub frames_out: u64,
    /// Player actions executed against the world this window.
    pub actions_executed: u64,
    /// Actions shed by admission control this window.
    pub actions_shed: u64,
    /// New sessions rejected with `Overloaded` this window.
    pub sessions_rejected: u64,
    /// Frames the decoder rejected as malformed this window.
    pub malformed_frames: u64,
    /// Sessions closed (any reason) this window.
    pub disconnects: u64,
    /// Median engine frame time within the window (ns).
    pub frame_p50_ns: u64,
    /// p99 engine frame time within the window (ns).
    pub frame_p99_ns: u64,
    /// Degradation-ladder rung at close (0 full tick … 3 load shed).
    pub ladder: u8,
    /// Live sessions at close.
    pub sessions: u64,
}

/// A network server the ops plane can poll at each window roll: the
/// plane drains one [`ServerWindow`] per close (annotating the window
/// for SLO judging) and appends the source's cumulative `gstm_server_*`
/// exposition to `/metrics`. Registered via
/// [`OpsPlane::set_server_source`]; kept as a trait so `gstm_core`
/// needs no dependency on the server crate.
pub trait ServerSource: Send + Sync {
    /// Drain window-scoped stats: deltas since the previous call plus
    /// point-in-time gauges.
    fn window(&self) -> ServerWindow;
    /// Cumulative Prometheus families (`gstm_server_*`), full
    /// exposition lines including `# TYPE` headers.
    fn render_prometheus(&self) -> String;
}

// ---------------------------------------------------------------------------
// Windowed aggregator
// ---------------------------------------------------------------------------

/// Rolls the cumulative [`Telemetry`] counters into a bounded ring of
/// per-window deltas.
///
/// The harness creates one collector per repetition; [`attach`] absorbs
/// the outgoing collector's final snapshot into a base before switching,
/// so the cumulative view (and therefore every live `/metrics` scrape)
/// is monotone across the whole campaign.
///
/// [`attach`]: WindowedTelemetry::attach
pub struct WindowedTelemetry {
    cap: usize,
    base: TelemetrySnapshot,
    current: Option<Arc<Telemetry>>,
    last: WindowCounters,
    ring: VecDeque<WindowDelta>,
    evicted: WindowCounters,
    evicted_windows: u64,
    closed: u64,
    rolls: u64,
}

impl WindowedTelemetry {
    /// An empty aggregator retaining at most `cap` windows (≥ 1).
    pub fn new(cap: usize) -> Self {
        WindowedTelemetry {
            cap: cap.max(1),
            base: TelemetrySnapshot::default(),
            current: None,
            last: WindowCounters::default(),
            ring: VecDeque::new(),
            evicted: WindowCounters::default(),
            evicted_windows: 0,
            closed: 0,
            rolls: 0,
        }
    }

    /// Switch the live collector: the outgoing collector's final
    /// snapshot folds into the base so the cumulative view never
    /// regresses.
    pub fn attach(&mut self, tel: Arc<Telemetry>) {
        if let Some(old) = self.current.take() {
            if !Arc::ptr_eq(&old, &tel) {
                self.base.absorb(&old.snapshot());
            }
        }
        self.current = Some(tel);
    }

    /// The cumulative snapshot: base (completed collectors) plus the
    /// live collector.
    pub fn cumulative(&self) -> TelemetrySnapshot {
        let mut s = self.base.clone();
        if let Some(cur) = &self.current {
            s.absorb(&cur.snapshot());
        }
        s
    }

    /// Trace events currently held by the live collector (copied, not
    /// drained).
    pub fn current_trace(&self) -> Vec<TraceEvent> {
        self.current.as_ref().map(|t| t.trace_events()).unwrap_or_default()
    }

    /// Close a window now: compute the exact delta since the previous
    /// close and append it to the ring (evicting the oldest into the
    /// rollup when full). Idle ticks — every counter unchanged — close
    /// no window and return `None`, so the ring holds activity, not
    /// silence.
    pub fn roll(&mut self) -> Option<WindowDelta> {
        self.rolls += 1;
        let snap = self.cumulative();
        let cum = WindowCounters::from_snapshot(&snap);
        let delta = cum
            .delta_from(&self.last)
            .expect("cumulative telemetry counters are monotone");
        if delta.is_zero() {
            return None;
        }
        self.last = cum;
        let w = WindowDelta::from_counters(self.closed, delta, &snap);
        self.closed += 1;
        if self.ring.len() == self.cap {
            let old = self.ring.pop_front().expect("ring is non-empty at capacity");
            self.evicted.add(&old.counters);
            self.evicted_windows += 1;
        }
        self.ring.push_back(w.clone());
        Some(w)
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> &VecDeque<WindowDelta> {
        &self.ring
    }

    /// Attach server stats to the most recently closed window (the one
    /// the current roll just pushed). No-op on an empty ring.
    pub fn annotate_server(&mut self, sw: ServerWindow) {
        if let Some(last) = self.ring.back_mut() {
            last.server = Some(sw);
        }
    }

    /// Rollup of evicted windows and how many were folded into it.
    pub fn evicted(&self) -> (&WindowCounters, u64) {
        (&self.evicted, self.evicted_windows)
    }

    /// Non-idle windows closed so far.
    pub fn closed(&self) -> u64 {
        self.closed
    }

    /// Roll attempts (including idle ticks).
    pub fn rolls(&self) -> u64 {
        self.rolls
    }

    /// Σ retained + evicted rollup (the partition's left-hand side).
    pub fn retained_sum(&self) -> WindowCounters {
        let mut sum = self.evicted.clone();
        for w in &self.ring {
            sum.add(&w.counters);
        }
        sum
    }

    /// Verify the hard invariant: Σ retained windows + evicted rollup ==
    /// cumulative counters as of the last close, exactly.
    pub fn check_partition(&self) -> Result<(), String> {
        let sum = self.retained_sum();
        if sum == self.last {
            Ok(())
        } else {
            Err(format!(
                "window partition violated: Σ windows commits={} aborts={} gate={} \
                 vs cumulative commits={} aborts={} gate={}",
                sum.commits,
                sum.aborts_total(),
                sum.gate_total(),
                self.last.commits,
                self.last.aborts_total(),
                self.last.gate_total(),
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// SLO spec
// ---------------------------------------------------------------------------

/// Thresholds and hysteresis for the [`SloWatchdog`], parsed from the
/// harness `--slo=SPEC` flag.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Breach when a window's abort ratio exceeds this (percent).
    pub max_abort_ratio_pct: Option<f64>,
    /// Breach when a window's gate released-rate exceeds this (percent).
    pub max_released_pct: Option<f64>,
    /// Breach when a window's commit p99 exceeds this (ns).
    pub max_commit_p99_ns: Option<u64>,
    /// Breach when the live off-model fraction exceeds this (percent).
    pub max_off_model_pct: Option<f64>,
    /// Breach when a window's server frame p99 exceeds this (ns).
    /// Judged only on windows annotated with a [`ServerWindow`].
    pub max_frame_p99_ns: Option<u64>,
    /// Breach when the degradation-ladder rung at close is at or above
    /// this (0 full tick … 3 load shed). Judged only on annotated
    /// windows.
    pub max_ladder: Option<u8>,
    /// Treat an open breaker at window close as a breach.
    pub breaker_open_breaches: bool,
    /// Treat a stale drift verdict at window close as a breach.
    pub stale_breaches: bool,
    /// Consecutive breaching windows to go Ok→Warn.
    pub warn_after: u32,
    /// Consecutive breaching windows (after Warn) to go Warn→Incident.
    pub incident_after: u32,
    /// Consecutive clean windows to step down one level.
    pub clear_after: u32,
    /// Windows with fewer than this many events (commits + aborts +
    /// gate calls) are too quiet to judge and do not move the machine.
    pub min_events: u64,
    /// Roll cadence for the timer-driven driver (ms).
    pub window_ms: u64,
    /// Windows included in a flight-recorder dump.
    pub dump_windows: usize,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            max_abort_ratio_pct: Some(50.0),
            max_released_pct: Some(25.0),
            max_commit_p99_ns: None,
            max_off_model_pct: None,
            max_frame_p99_ns: None,
            max_ladder: None,
            breaker_open_breaches: true,
            stale_breaches: true,
            warn_after: 1,
            incident_after: 3,
            clear_after: 3,
            min_events: 1,
            window_ms: 200,
            dump_windows: 32,
        }
    }
}

impl SloSpec {
    /// Parse a comma-separated `key=value` spec, e.g.
    /// `abort-ratio=30,released=5,p99-ms=2,warn=1,incident=3,clear=3,window-ms=100`.
    ///
    /// Rate keys accept `none` to disable the rule; `breaker`/`stale`
    /// take `on`/`off`. Unknown keys are an error that lists the
    /// vocabulary.
    pub fn parse(spec: &str) -> Result<SloSpec, String> {
        let mut out = SloSpec::default();
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, val) = tok
                .split_once("<=")
                .or_else(|| tok.split_once('='))
                .ok_or_else(|| format!("SLO token '{tok}' is not key=value"))?;
            let (key, val) = (key.trim(), val.trim());
            let f = |what: &str| -> Result<Option<f64>, String> {
                if what.eq_ignore_ascii_case("none") {
                    return Ok(None);
                }
                what.parse::<f64>()
                    .map(Some)
                    .map_err(|_| format!("SLO key '{key}': '{what}' is not a number"))
            };
            let u = |what: &str| -> Result<u64, String> {
                what.parse::<u64>()
                    .map_err(|_| format!("SLO key '{key}': '{what}' is not an integer"))
            };
            let b = |what: &str| -> Result<bool, String> {
                match what {
                    "on" | "true" | "1" => Ok(true),
                    "off" | "false" | "0" => Ok(false),
                    _ => Err(format!("SLO key '{key}': '{what}' is not on/off")),
                }
            };
            match key {
                "abort-ratio" => out.max_abort_ratio_pct = f(val)?,
                "released" => out.max_released_pct = f(val)?,
                "p99-ns" => out.max_commit_p99_ns = f(val)?.map(|v| v as u64),
                "p99-us" => out.max_commit_p99_ns = f(val)?.map(|v| (v * 1e3) as u64),
                "p99-ms" => out.max_commit_p99_ns = f(val)?.map(|v| (v * 1e6) as u64),
                "off-model" => out.max_off_model_pct = f(val)?,
                "frame-p99-ns" => out.max_frame_p99_ns = f(val)?.map(|v| v as u64),
                "frame-p99-us" => out.max_frame_p99_ns = f(val)?.map(|v| (v * 1e3) as u64),
                "frame-p99-ms" => out.max_frame_p99_ns = f(val)?.map(|v| (v * 1e6) as u64),
                "ladder" => out.max_ladder = Some(u(val)?.min(u8::MAX as u64) as u8),
                "breaker" => out.breaker_open_breaches = b(val)?,
                "stale" => out.stale_breaches = b(val)?,
                "warn" => out.warn_after = u(val)?.max(1) as u32,
                "incident" => out.incident_after = u(val)?.max(1) as u32,
                "clear" => out.clear_after = u(val)?.max(1) as u32,
                "min-events" => out.min_events = u(val)?,
                "window-ms" => out.window_ms = u(val)?.max(1),
                "dump-windows" => out.dump_windows = u(val)?.max(1) as usize,
                _ => {
                    return Err(format!(
                        "unknown SLO key '{key}' (valid: abort-ratio, released, p99-ns, \
                         p99-us, p99-ms, off-model, frame-p99-ns, frame-p99-us, \
                         frame-p99-ms, ladder, breaker, stale, warn, incident, clear, \
                         min-events, window-ms, dump-windows)"
                    ))
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// SLO watchdog
// ---------------------------------------------------------------------------

/// Watchdog position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    /// Within objectives.
    Ok,
    /// Breaching; not yet sustained long enough to page.
    Warn,
    /// Sustained breach: `/health` turns non-200 and the flight
    /// recorder has fired.
    Incident,
}

impl SloState {
    /// Stable numeric code (0 ok, 1 warn, 2 incident).
    pub fn code(self) -> u8 {
        match self {
            SloState::Ok => 0,
            SloState::Warn => 1,
            SloState::Incident => 2,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warn => "warn",
            SloState::Incident => "incident",
        }
    }
}

/// One state change, with the breaches that drove it (empty on
/// recovery steps).
#[derive(Clone, Debug, PartialEq)]
pub struct SloTransition {
    /// Index of the window that completed the transition.
    pub window: u64,
    /// Previous state.
    pub from: SloState,
    /// New state.
    pub to: SloState,
    /// Breach descriptions from the tripping window.
    pub breaches: Vec<String>,
}

/// Ok→Warn→Incident state machine with hysteresis over window deltas.
///
/// Escalation requires `warn_after` consecutive breaching windows to
/// reach Warn and `incident_after` more to reach Incident; recovery
/// requires `clear_after` consecutive clean windows per step down, so a
/// single noisy or quiet window never flaps the verdict.
pub struct SloWatchdog {
    spec: SloSpec,
    state: SloState,
    breach_streak: u32,
    clean_streak: u32,
    windows_seen: u64,
    breached_windows: u64,
    last_breaches: Vec<String>,
    timeline: Vec<SloTransition>,
}

impl SloWatchdog {
    /// A watchdog in `Ok` with the given spec.
    pub fn new(spec: SloSpec) -> Self {
        SloWatchdog {
            spec,
            state: SloState::Ok,
            breach_streak: 0,
            clean_streak: 0,
            windows_seen: 0,
            breached_windows: 0,
            last_breaches: Vec::new(),
            timeline: Vec::new(),
        }
    }

    /// The active spec.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Current state.
    pub fn state(&self) -> SloState {
        self.state
    }

    /// All transitions so far, oldest first.
    pub fn timeline(&self) -> &[SloTransition] {
        &self.timeline
    }

    /// Windows judged (quiet windows excluded).
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Judged windows that breached at least one rule.
    pub fn breached_windows(&self) -> u64 {
        self.breached_windows
    }

    /// Breaches from the most recent breaching window.
    pub fn last_breaches(&self) -> &[String] {
        &self.last_breaches
    }

    /// Evaluate every rule against one window; returns human-readable
    /// breach descriptions (empty when clean).
    pub fn breaches_of(&self, w: &WindowDelta) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(max) = self.spec.max_abort_ratio_pct {
            if w.abort_ratio_pct > max {
                out.push(format!("abort_ratio {:.1}% > {max}%", w.abort_ratio_pct));
            }
        }
        if let Some(max) = self.spec.max_released_pct {
            if w.released_pct > max {
                out.push(format!("gate_released {:.1}% > {max}%", w.released_pct));
            }
        }
        if let Some(max) = self.spec.max_commit_p99_ns {
            if w.commit_p99_ns > max {
                out.push(format!("commit_p99 {}ns > {max}ns", w.commit_p99_ns));
            }
        }
        if let (Some(max), Some(off)) = (self.spec.max_off_model_pct, w.off_model_pct) {
            if off > max {
                out.push(format!("off_model {off:.1}% > {max}%"));
            }
        }
        if let Some(sw) = &w.server {
            if let Some(max) = self.spec.max_frame_p99_ns {
                if sw.frame_p99_ns > max {
                    out.push(format!("frame_p99 {}ns > {max}ns", sw.frame_p99_ns));
                }
            }
            if let Some(max) = self.spec.max_ladder {
                if sw.ladder >= max {
                    out.push(format!("ladder rung {} >= {max}", sw.ladder));
                }
            }
        }
        if self.spec.breaker_open_breaches && w.breaker_state == 1 {
            out.push("breaker open".to_string());
        }
        if self.spec.stale_breaches && w.staleness == DriftVerdict::Stale.code() {
            out.push("model stale".to_string());
        }
        out
    }

    /// Feed one closed window through the machine. Returns the
    /// transition if the state changed.
    pub fn observe(&mut self, w: &WindowDelta) -> Option<SloTransition> {
        let events = w.counters.commits + w.counters.aborts_total() + w.counters.gate_total();
        if events < self.spec.min_events {
            return None;
        }
        self.windows_seen += 1;
        let breaches = self.breaches_of(w);
        let next = if breaches.is_empty() {
            self.breach_streak = 0;
            self.clean_streak += 1;
            if self.clean_streak >= self.spec.clear_after {
                match self.state {
                    SloState::Incident => SloState::Warn,
                    SloState::Warn => SloState::Ok,
                    SloState::Ok => SloState::Ok,
                }
            } else {
                self.state
            }
        } else {
            self.breached_windows += 1;
            self.last_breaches = breaches.clone();
            self.clean_streak = 0;
            self.breach_streak += 1;
            match self.state {
                SloState::Ok if self.breach_streak >= self.spec.warn_after => SloState::Warn,
                SloState::Warn if self.breach_streak >= self.spec.incident_after => {
                    SloState::Incident
                }
                s => s,
            }
        };
        if next == self.state {
            return None;
        }
        // Each transition restarts both streaks: escalating further (or
        // stepping down again) requires a fresh run of evidence.
        self.breach_streak = 0;
        self.clean_streak = 0;
        let tr = SloTransition {
            window: w.index,
            from: self.state,
            to: next,
            breaches,
        };
        self.state = next;
        self.timeline.push(tr.clone());
        Some(tr)
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// A recorded incident: the flight-recorder dump plus its identity.
#[derive(Clone, Debug)]
pub struct IncidentDump {
    /// Incident ordinal within the process (0-based).
    pub seq: u64,
    /// Window index that tripped it.
    pub window: u64,
    /// Caller-supplied stamp (wall clock in the harness; a fixed token
    /// in deterministic replays).
    pub stamp: String,
    /// The serialized artifact.
    pub json: String,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_strings(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|b| format!("\"{}\"", esc(b))).collect();
    format!("[{}]", quoted.join(", "))
}

/// One trace event as flat JSON **without** `ts_ns`: `seq` order is the
/// causal record, and omitting wall-clock noise is what lets a
/// chaos-seeded incident dump replay bit-identically.
fn trace_event_json(ev: &TraceEvent) -> String {
    let mut out = format!(
        "{{\"seq\":{},\"txn\":{},\"thread\":{}",
        ev.seq, ev.pair.txn.0, ev.pair.thread.0
    );
    match ev.kind {
        TraceKind::Begin => out.push_str(",\"kind\":\"begin\""),
        TraceKind::GateWait { wait_ns } => {
            let _ = write!(out, ",\"kind\":\"gate_wait\",\"wait_ns\":{wait_ns}");
        }
        TraceKind::Abort { cause, addr } => {
            let name = ABORT_CAUSE_NAMES[crate::telemetry::cause_index(cause)];
            let _ = write!(out, ",\"kind\":\"abort\",\"cause\":\"{name}\"");
            if let Some(t) = cause.conflicting_thread() {
                let _ = write!(out, ",\"conflict\":{}", t.0);
            }
            if addr != 0 {
                let _ = write!(out, ",\"addr\":{addr}");
            }
        }
        TraceKind::Commit { commit_ns, writes } => {
            let _ = write!(out, ",\"kind\":\"commit\",\"commit_ns\":{commit_ns},\"writes\":{writes}");
        }
        TraceKind::StateTransition { from, to } => {
            let _ = write!(out, ",\"kind\":\"state_transition\",\"from\":{from},\"to\":{to}");
        }
        TraceKind::ModelSwap { epoch, verdict } => {
            let _ = write!(out, ",\"kind\":\"model_swap\",\"epoch\":{epoch},\"verdict\":{verdict}");
        }
        TraceKind::Breaker { from, to, cause } => {
            let _ = write!(out, ",\"kind\":\"breaker\",\"from\":{from},\"to\":{to},\"cause\":{cause}");
        }
    }
    out.push('}');
    out
}

fn window_json(w: &WindowDelta) -> String {
    let mut out = format!(
        "{{\"index\":{},\"commits\":{},\"aborts\":{}",
        w.index,
        w.counters.commits,
        w.counters.aborts_total()
    );
    let _ = write!(out, ",\"aborts_by_cause\":{{");
    for (i, (name, v)) in ABORT_CAUSE_NAMES.iter().zip(&w.counters.aborts).enumerate() {
        let _ = write!(out, "{}\"{name}\":{v}", if i == 0 { "" } else { "," });
    }
    let _ = write!(
        out,
        "}},\"gate_passed\":{},\"gate_waited\":{},\"gate_released\":{}",
        w.counters.gate_passed, w.counters.gate_waited, w.counters.gate_released
    );
    let _ = write!(
        out,
        ",\"trace_dropped\":{},\"commit_count\":{},\"commit_p50_ns\":{},\"commit_p99_ns\":{}",
        w.counters.trace_dropped, w.counters.commit_count, w.commit_p50_ns, w.commit_p99_ns
    );
    let _ = write!(
        out,
        ",\"abort_ratio_pct\":{:.3},\"released_pct\":{:.3}",
        w.abort_ratio_pct, w.released_pct
    );
    match w.off_model_pct {
        Some(v) => {
            let _ = write!(out, ",\"off_model_pct\":{v:.3}");
        }
        None => out.push_str(",\"off_model_pct\":null"),
    }
    let _ = write!(
        out,
        ",\"staleness\":{},\"breaker_state\":{}",
        w.staleness, w.breaker_state
    );
    out.push_str(",\"hot_addrs\":[");
    for (i, (addr, count)) in w.hot_addrs.iter().enumerate() {
        let _ = write!(out, "{}{{\"addr\":{addr},\"count\":{count}}}", if i == 0 { "" } else { "," });
    }
    out.push_str("]}");
    out
}

fn transition_json(t: &SloTransition) -> String {
    format!(
        "{{\"window\":{},\"from\":\"{}\",\"to\":\"{}\",\"breaches\":{}}}",
        t.window,
        t.from.label(),
        t.to.label(),
        json_strings(&t.breaches)
    )
}

/// Serialize a flight-recorder dump: the tripping transition, the full
/// transition timeline, the last `windows`, the evicted rollup, the
/// cumulative counters, breaker/drift/contention verdicts, and a
/// trace-ring drain (without `ts_ns` — see [`trace_event_json`]).
#[allow(clippy::too_many_arguments)]
pub fn render_incident_json(
    seq: u64,
    stamp: &str,
    trip: &SloTransition,
    timeline: &[SloTransition],
    windows: &[&WindowDelta],
    evicted: (&WindowCounters, u64),
    snap: &TelemetrySnapshot,
    trace: &[TraceEvent],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"kind\": \"gstm_incident\",");
    let _ = writeln!(out, "  \"version\": \"{}\",", esc(BUILD_VERSION));
    let _ = writeln!(out, "  \"stamp\": \"{}\",", esc(stamp));
    let _ = writeln!(out, "  \"seq\": {seq},");
    let _ = writeln!(out, "  \"tripped_window\": {},", trip.window);
    let _ = writeln!(out, "  \"state\": \"{}\",", trip.to.label());
    let _ = writeln!(out, "  \"breaches\": {},", json_strings(&trip.breaches));
    let _ = writeln!(out, "  \"timeline\": [");
    for (i, t) in timeline.iter().enumerate() {
        let comma = if i + 1 == timeline.len() { "" } else { "," };
        let _ = writeln!(out, "    {}{comma}", transition_json(t));
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"windows\": [");
    for (i, w) in windows.iter().enumerate() {
        let comma = if i + 1 == windows.len() { "" } else { "," };
        let _ = writeln!(out, "    {}{comma}", window_json(w));
    }
    let _ = writeln!(out, "  ],");
    let (ev, ev_n) = evicted;
    let _ = writeln!(
        out,
        "  \"evicted\": {{\"windows\": {ev_n}, \"commits\": {}, \"aborts\": {}, \"gate\": {}}},",
        ev.commits,
        ev.aborts_total(),
        ev.gate_total()
    );
    let _ = writeln!(
        out,
        "  \"cumulative\": {{\"commits\": {}, \"aborts\": {}, \"gate_passed\": {}, \
         \"gate_waited\": {}, \"gate_released\": {}, \"trace_dropped\": {}, \
         \"model_swaps\": {}, \"guardian_restarts\": {}}},",
        snap.commits,
        snap.aborts_total(),
        snap.gate_passed,
        snap.gate_waited,
        snap.gate_released,
        snap.trace_dropped,
        snap.model_swaps,
        snap.guardian_restarts
    );
    let _ = writeln!(
        out,
        "  \"breaker\": {{\"state\": {}, \"trips\": {}, \"recloses\": {}, \"probes\": {}, \
         \"model_rejected\": {}}},",
        snap.breaker_state,
        snap.breaker_trips,
        snap.breaker_recloses,
        snap.breaker_probes,
        snap.breaker_model_rejected
    );
    match &snap.model_drift {
        Some(d) => {
            let _ = writeln!(
                out,
                "  \"drift\": {{\"verdict\": \"{}\", \"off_model_pct\": {:.3}, \
                 \"mean_kl_nats\": {:.6}, \"max_kl_nats\": {:.6}}},",
                d.verdict.label(),
                d.off_model_pct,
                d.mean_kl_nats,
                d.max_kl_nats
            );
        }
        None => {
            let _ = writeln!(out, "  \"drift\": null,");
        }
    }
    match &snap.contention {
        Some(c) => {
            let mut top = String::new();
            for (i, h) in c.top.iter().take(WINDOW_HOT_ADDRS).enumerate() {
                let _ = write!(
                    top,
                    "{}{{\"addr\": {}, \"count\": {}, \"err\": {}}}",
                    if i == 0 { "" } else { ", " },
                    h.addr,
                    h.count,
                    h.err
                );
            }
            let _ = writeln!(
                out,
                "  \"contention\": {{\"attributed\": {}, \"unattributed\": {}, \
                 \"residual\": {}, \"top\": [{top}]}},",
                c.attributed, c.unattributed, c.residual
            );
        }
        None => {
            let _ = writeln!(out, "  \"contention\": null,");
        }
    }
    let _ = writeln!(out, "  \"trace\": [");
    for (i, ev) in trace.iter().enumerate() {
        let comma = if i + 1 == trace.len() { "" } else { "," };
        let _ = writeln!(out, "    {}{comma}", trace_event_json(ev));
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Ops plane
// ---------------------------------------------------------------------------

struct OpsInner {
    windows: WindowedTelemetry,
    watchdog: SloWatchdog,
    incidents: Vec<IncidentDump>,
    frozen: Option<String>,
    server: Option<Arc<dyn ServerSource>>,
}

/// The shared live-ops state: aggregator + watchdog + incident store,
/// behind one mutex, exported by the HTTP service thread.
///
/// [`freeze`] closes the final window and pins the `/metrics` body, so
/// a scrape after campaign end is byte-identical to the exported
/// `ops.prom` artifact.
///
/// [`freeze`]: OpsPlane::freeze
pub struct OpsPlane {
    inner: Mutex<OpsInner>,
}

impl OpsPlane {
    /// A plane with the given spec and the default window ring.
    pub fn new(spec: SloSpec) -> Self {
        Self::with_ring(spec, DEFAULT_WINDOW_RING)
    }

    /// A plane retaining at most `ring` windows.
    pub fn with_ring(spec: SloSpec, ring: usize) -> Self {
        OpsPlane {
            inner: Mutex::new(OpsInner {
                windows: WindowedTelemetry::new(ring),
                watchdog: SloWatchdog::new(spec),
                incidents: Vec::new(),
                frozen: None,
                server: None,
            }),
        }
    }

    /// Switch the live collector (see [`WindowedTelemetry::attach`]).
    pub fn attach(&self, tel: &Arc<Telemetry>) {
        self.inner.lock().windows.attach(Arc::clone(tel));
    }

    /// Register a network server: every roll drains one
    /// [`ServerWindow`] from it (annotating the closed window for SLO
    /// judging) and `/metrics` gains its `gstm_server_*` families.
    pub fn set_server_source(&self, src: Arc<dyn ServerSource>) {
        self.inner.lock().server = Some(src);
    }

    /// Close a window with a wall-clock stamp (the timer driver's
    /// entry point).
    pub fn roll(&self) -> Option<SloTransition> {
        self.roll_stamped(&wall_stamp())
    }

    /// Close a window, feed it to the watchdog, and — when the
    /// transition enters Incident — trip the flight recorder, stamping
    /// the dump with `stamp`. Deterministic replays pass a fixed stamp;
    /// the harness passes wall time.
    pub fn roll_stamped(&self, stamp: &str) -> Option<SloTransition> {
        let mut g = self.inner.lock();
        let inner = &mut *g;
        let mut w = inner.windows.roll()?;
        if let Some(src) = &inner.server {
            let sw = src.window();
            inner.windows.annotate_server(sw.clone());
            w.server = Some(sw);
        }
        let tr = inner.watchdog.observe(&w)?;
        if tr.to == SloState::Incident {
            let snap = inner.windows.cumulative();
            let trace = inner.windows.current_trace();
            let n = inner.watchdog.spec().dump_windows;
            let ring = inner.windows.windows();
            let windows: Vec<&WindowDelta> =
                ring.iter().skip(ring.len().saturating_sub(n)).collect();
            let seq = inner.incidents.len() as u64;
            let json = render_incident_json(
                seq,
                stamp,
                &tr,
                inner.watchdog.timeline(),
                &windows,
                inner.windows.evicted(),
                &snap,
                &trace,
            );
            inner.incidents.push(IncidentDump {
                seq,
                window: tr.window,
                stamp: stamp.to_string(),
                json,
            });
        }
        Some(tr)
    }

    /// Close the final (possibly partial) window, render the exposition
    /// one last time, and pin it: every later `/metrics` scrape returns
    /// this exact body. Returns the pinned body.
    pub fn freeze(&self) -> String {
        self.freeze_stamped(&wall_stamp())
    }

    /// [`freeze`](OpsPlane::freeze) with an explicit stamp for the final
    /// roll (deterministic replays).
    pub fn freeze_stamped(&self, stamp: &str) -> String {
        drop(self.roll_stamped(stamp));
        let mut g = self.inner.lock();
        let inner = &mut *g;
        let body = render_metrics(
            &inner.windows,
            &inner.watchdog,
            inner.incidents.len(),
            inner.server.as_deref(),
        );
        inner.frozen = Some(body.clone());
        body
    }

    /// The `/metrics` body: the cumulative Prometheus exposition plus
    /// the window/SLO families (or the frozen body after
    /// [`freeze`](OpsPlane::freeze)).
    pub fn metrics(&self) -> String {
        let g = self.inner.lock();
        if let Some(f) = &g.frozen {
            return f.clone();
        }
        render_metrics(&g.windows, &g.watchdog, g.incidents.len(), g.server.as_deref())
    }

    /// The `/health` body and whether the plane is healthy (false only
    /// in Incident, which maps to HTTP 503).
    pub fn health_json(&self) -> (bool, String) {
        let g = self.inner.lock();
        let snap = g.windows.cumulative();
        let state = g.watchdog.state();
        let drift = snap
            .model_drift
            .as_ref()
            .map(|d| d.verdict.label())
            .unwrap_or("none");
        let body = format!(
            "{{\"schema\":{SCHEMA_VERSION},\"state\":\"{}\",\"windows_closed\":{},\
             \"windows_judged\":{},\"breached_windows\":{},\"incidents\":{},\
             \"trace_dropped\":{},\"guardian_restarts\":{},\"breaker_state\":{},\
             \"drift\":\"{}\",\"last_breaches\":{}}}",
            state.label(),
            g.windows.closed(),
            g.watchdog.windows_seen(),
            g.watchdog.breached_windows(),
            g.incidents.len(),
            snap.trace_dropped,
            snap.guardian_restarts,
            snap.breaker_state,
            drift,
            json_strings(g.watchdog.last_breaches()),
        );
        (state != SloState::Incident, body)
    }

    /// The `/vars` body: a full cumulative snapshot as JSON.
    pub fn vars_json(&self) -> String {
        let g = self.inner.lock();
        let snap = g.windows.cumulative();
        let mut aborts = String::new();
        for (i, (name, v)) in ABORT_CAUSE_NAMES.iter().zip(&snap.aborts).enumerate() {
            let _ = write!(aborts, "{}\"{name}\":{v}", if i == 0 { "" } else { "," });
        }
        let drift = match &snap.model_drift {
            Some(d) => format!(
                "{{\"verdict\":\"{}\",\"off_model_pct\":{:.3}}}",
                d.verdict.label(),
                d.off_model_pct
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"schema\":{SCHEMA_VERSION},\"version\":\"{}\",\"commits\":{},\
             \"aborts\":{{{aborts}}},\"gate_passed\":{},\"gate_waited\":{},\
             \"gate_released\":{},\"commit_p50_ns\":{},\"commit_p99_ns\":{},\
             \"commit_mean_ns\":{:.1},\"trace_dropped\":{},\"model_swaps\":{},\
             \"breaker\":{{\"state\":{},\"trips\":{},\"recloses\":{},\"probes\":{}}},\
             \"guardian_restarts\":{},\"drift\":{drift},\
             \"slo\":{{\"state\":\"{}\",\"windows_closed\":{},\"retained\":{},\
             \"evicted_windows\":{},\"incidents\":{}}}}}",
            esc(BUILD_VERSION),
            snap.commits,
            snap.gate_passed,
            snap.gate_waited,
            snap.gate_released,
            snap.commit_ns.quantile_upper_bound(0.50),
            snap.commit_ns.quantile_upper_bound(0.99),
            snap.commit_ns.mean(),
            snap.trace_dropped,
            snap.model_swaps,
            snap.breaker_state,
            snap.breaker_trips,
            snap.breaker_recloses,
            snap.breaker_probes,
            snap.guardian_restarts,
            g.watchdog.state().label(),
            g.windows.closed(),
            g.windows.windows().len(),
            g.windows.evicted().1,
            g.incidents.len(),
        )
    }

    /// The `/incidents` body: a JSON array of flight-recorder dumps.
    pub fn incidents_json(&self) -> String {
        let g = self.inner.lock();
        let mut out = String::from("[");
        for (i, inc) in g.incidents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(inc.json.trim_end());
        }
        out.push_str("\n]\n");
        out
    }

    /// Copies of all recorded incidents.
    pub fn incidents(&self) -> Vec<IncidentDump> {
        self.inner.lock().incidents.clone()
    }

    /// Current watchdog state.
    pub fn state(&self) -> SloState {
        self.inner.lock().watchdog.state()
    }

    /// The watchdog's transition timeline.
    pub fn timeline(&self) -> Vec<SloTransition> {
        self.inner.lock().watchdog.timeline().to_vec()
    }

    /// Non-idle windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.inner.lock().windows.closed()
    }

    /// Judged windows that breached at least one SLO rule.
    pub fn breached_windows(&self) -> u64 {
        self.inner.lock().watchdog.breached_windows()
    }

    /// Re-verify Σ retained + evicted == cumulative-at-last-close.
    pub fn check_partition(&self) -> Result<(), String> {
        self.inner.lock().windows.check_partition()
    }
}

/// Seconds.millis since the Unix epoch, as an artifact stamp.
fn wall_stamp() -> String {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => format!("{}.{:03}", d.as_secs(), d.subsec_millis()),
        Err(_) => "0.000".to_string(),
    }
}

/// Render the full `/metrics` exposition: the cumulative snapshot's
/// families followed by the window partition and SLO families.
fn render_metrics(
    w: &WindowedTelemetry,
    dog: &SloWatchdog,
    incidents: usize,
    server: Option<&dyn ServerSource>,
) -> String {
    let mut out = w.cumulative().render_prometheus();
    let _ = writeln!(out, "# TYPE gstm_windows_closed_total counter");
    let _ = writeln!(out, "gstm_windows_closed_total {}", w.closed());
    let _ = writeln!(out, "# TYPE gstm_window_rolls_total counter");
    let _ = writeln!(out, "gstm_window_rolls_total {}", w.rolls());
    let (ev, ev_n) = w.evicted();
    let _ = writeln!(out, "# TYPE gstm_window_evicted_windows_total counter");
    let _ = writeln!(out, "gstm_window_evicted_windows_total {ev_n}");
    let _ = writeln!(out, "# TYPE gstm_window_evicted_total counter");
    for (name, v) in [
        ("commits", ev.commits),
        ("aborts", ev.aborts_total()),
        ("gate_passed", ev.gate_passed),
        ("gate_waited", ev.gate_waited),
        ("gate_released", ev.gate_released),
    ] {
        let _ = writeln!(out, "gstm_window_evicted_total{{counter=\"{name}\"}} {v}");
    }
    let ring = w.windows();
    let _ = writeln!(out, "# TYPE gstm_window_commits gauge");
    for win in ring {
        let _ = writeln!(out, "gstm_window_commits{{window=\"{}\"}} {}", win.index, win.counters.commits);
    }
    let _ = writeln!(out, "# TYPE gstm_window_aborts gauge");
    for win in ring {
        let _ = writeln!(
            out,
            "gstm_window_aborts{{window=\"{}\"}} {}",
            win.index,
            win.counters.aborts_total()
        );
    }
    let _ = writeln!(out, "# TYPE gstm_window_gate gauge");
    for win in ring {
        for (name, v) in [
            ("passed", win.counters.gate_passed),
            ("waited", win.counters.gate_waited),
            ("released", win.counters.gate_released),
        ] {
            let _ = writeln!(
                out,
                "gstm_window_gate{{window=\"{}\",outcome=\"{name}\"}} {v}",
                win.index
            );
        }
    }
    let _ = writeln!(out, "# TYPE gstm_window_commit_p50_ns gauge");
    for win in ring {
        let _ = writeln!(
            out,
            "gstm_window_commit_p50_ns{{window=\"{}\"}} {}",
            win.index, win.commit_p50_ns
        );
    }
    let _ = writeln!(out, "# TYPE gstm_window_commit_p99_ns gauge");
    for win in ring {
        let _ = writeln!(
            out,
            "gstm_window_commit_p99_ns{{window=\"{}\"}} {}",
            win.index, win.commit_p99_ns
        );
    }
    let _ = writeln!(out, "# TYPE gstm_window_abort_ratio_pct gauge");
    for win in ring {
        let _ = writeln!(
            out,
            "gstm_window_abort_ratio_pct{{window=\"{}\"}} {:.3}",
            win.index, win.abort_ratio_pct
        );
    }
    if ring.iter().any(|win| win.server.is_some()) {
        let _ = writeln!(out, "# TYPE gstm_window_frame_p99_ns gauge");
        for win in ring {
            if let Some(sw) = &win.server {
                let _ = writeln!(
                    out,
                    "gstm_window_frame_p99_ns{{window=\"{}\"}} {}",
                    win.index, sw.frame_p99_ns
                );
            }
        }
        let _ = writeln!(out, "# TYPE gstm_window_server_ladder gauge");
        for win in ring {
            if let Some(sw) = &win.server {
                let _ = writeln!(
                    out,
                    "gstm_window_server_ladder{{window=\"{}\"}} {}",
                    win.index, sw.ladder
                );
            }
        }
    }
    if let Some(src) = server {
        out.push_str(&src.render_prometheus());
    }
    let _ = writeln!(out, "# TYPE gstm_slo_state gauge");
    let _ = writeln!(out, "gstm_slo_state {}", dog.state().code());
    let _ = writeln!(out, "# TYPE gstm_slo_windows_total counter");
    let _ = writeln!(out, "gstm_slo_windows_total {}", dog.windows_seen());
    let _ = writeln!(out, "# TYPE gstm_slo_breached_windows_total counter");
    let _ = writeln!(out, "gstm_slo_breached_windows_total {}", dog.breached_windows());
    let _ = writeln!(out, "# TYPE gstm_slo_incidents_total counter");
    let _ = writeln!(out, "gstm_slo_incidents_total {incidents}");
    out
}

// ---------------------------------------------------------------------------
// Timer driver
// ---------------------------------------------------------------------------

/// Background thread rolling an [`OpsPlane`] on the spec's cadence.
/// Stops (and joins) on [`stop`](OpsRoller::stop) or drop.
pub struct OpsRoller {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Start a timer thread calling `plane.roll()` every `every`.
pub fn start_roller(plane: Arc<OpsPlane>, every: Duration) -> OpsRoller {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("gstm-ops-roll".to_string())
        .spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(every);
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                drop(plane.roll());
            }
        })
        .expect("spawn ops roller thread");
    OpsRoller {
        stop,
        handle: Some(handle),
    }
}

impl OpsRoller {
    /// Stop the timer and join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for OpsRoller {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// HTTP exporter
// ---------------------------------------------------------------------------

/// Cap on a buffered request head; anything larger is rejected rather
/// than buffered without bound.
const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// Result of parsing a (possibly still incomplete) HTTP/1.x request
/// head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpParse {
    /// A full request head was present.
    Complete {
        /// Request method, verbatim (e.g. `GET`).
        method: String,
        /// Request path with any query string stripped.
        path: String,
    },
    /// The head is not complete yet — read more bytes.
    Partial,
    /// The bytes cannot become a valid request.
    Invalid(&'static str),
}

/// Parse an HTTP/1.x request head from `buf`. Incremental: callers
/// re-invoke with a longer buffer after [`HttpParse::Partial`], which
/// is how the service loop survives requests arriving in fragments.
pub fn parse_http_request(buf: &[u8]) -> HttpParse {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let Some(head_end) = head_end else {
        return if buf.len() > MAX_REQUEST_BYTES {
            HttpParse::Invalid("request head too large")
        } else {
            HttpParse::Partial
        };
    };
    let head = &buf[..head_end];
    let line_end = head.windows(2).position(|w| w == b"\r\n").unwrap_or(head.len());
    let Ok(line) = std::str::from_utf8(&head[..line_end]) else {
        return HttpParse::Invalid("request line is not UTF-8");
    };
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return HttpParse::Invalid("malformed request line");
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return HttpParse::Invalid("malformed request line");
    }
    let path = target.split('?').next().unwrap_or(target);
    HttpParse::Complete {
        method: method.to_string(),
        path: path.to_string(),
    }
}

const CT_JSON: &str = "application/json";
const CT_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Route one request against the plane: `(status, content-type, body)`.
/// Unknown paths are 404, non-GET methods 405.
pub fn route(plane: &OpsPlane, method: &str, path: &str) -> (u16, &'static str, String) {
    if method != "GET" {
        return (405, CT_JSON, "{\"error\":\"method not allowed\"}".to_string());
    }
    match path {
        "/metrics" => (200, CT_PROM, plane.metrics()),
        "/health" => {
            let (ok, body) = plane.health_json();
            (if ok { 200 } else { 503 }, CT_JSON, body)
        }
        "/vars" => (200, CT_JSON, plane.vars_json()),
        "/incidents" => (200, CT_JSON, plane.incidents_json()),
        _ => (404, CT_JSON, "{\"error\":\"not found\"}".to_string()),
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "OK",
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    ctype: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn handle_conn(mut stream: TcpStream, plane: &OpsPlane) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match parse_http_request(&buf) {
            HttpParse::Partial => {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    // Peer closed before completing a request.
                    return Ok(());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            HttpParse::Invalid(why) => {
                return write_response(
                    &mut stream,
                    400,
                    CT_JSON,
                    &format!("{{\"error\":\"{}\"}}", esc(why)),
                );
            }
            HttpParse::Complete { method, path } => {
                let (status, ctype, body) = route(plane, &method, &path);
                return write_response(&mut stream, status, ctype, &body);
            }
        }
    }
}

/// Handle to the exporter service thread; stops (and joins) on
/// [`stop`](OpsServer::stop) or drop.
pub struct OpsServer {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Bind `addr` and serve the plane from one background thread. The
/// accept loop polls a nonblocking listener so the stop flag is honored
/// within a few milliseconds; each connection is then handled
/// synchronously (blocking reads with a timeout) — one service thread,
/// no dependencies, which is all a scrape endpoint needs.
pub fn serve(plane: Arc<OpsPlane>, addr: &str) -> std::io::Result<OpsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("gstm-ops-http".to_string())
        .spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = handle_conn(stream, &plane);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        })?;
    Ok(OpsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

impl OpsServer {
    /// Stop the service thread and join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::AbortCause;
    use crate::ids::{Pair, ThreadId, TxnId};

    fn pair(t: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(t))
    }

    fn window(commits: u64, aborts: u64) -> WindowDelta {
        let mut c = WindowCounters {
            commits,
            ..WindowCounters::default()
        };
        c.aborts[3] = aborts; // validation
        let attempts = commits + aborts;
        let ratio = if attempts == 0 {
            0.0
        } else {
            aborts as f64 / attempts as f64 * 100.0
        };
        WindowDelta {
            index: 0,
            counters: c,
            commit_p50_ns: 0,
            commit_p99_ns: 0,
            abort_ratio_pct: ratio,
            released_pct: 0.0,
            off_model_pct: None,
            staleness: 0,
            breaker_state: 0,
            hot_addrs: Vec::new(),
            server: None,
        }
    }

    #[test]
    fn sigma_windows_equals_cumulative_under_concurrent_load() {
        let tel = Arc::new(Telemetry::counters_only());
        let mut wt = WindowedTelemetry::new(8); // small ring: forces evictions
        wt.attach(Arc::clone(&tel));
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..4u16)
            .map(|t| {
                let tel = Arc::clone(&tel);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let who = pair(t);
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        tel.record_commit(who, i % 512);
                        if i % 3 == 0 {
                            tel.record_abort(who, AbortCause::Validation);
                        }
                        if i % 5 == 0 {
                            tel.record_gate_outcome(
                                who,
                                crate::telemetry::GateOutcome::Passed,
                            );
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..40 {
            std::thread::sleep(Duration::from_millis(1));
            drop(wt.roll());
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        drop(wt.roll()); // close the tail
        assert!(wt.evicted().1 > 0, "small ring must have evicted windows");
        wt.check_partition().expect("Σ windows + evicted == cumulative");
        // And the partition target really is the final cumulative state.
        let snap = tel.snapshot();
        let sum = wt.retained_sum();
        assert_eq!(sum.commits, snap.commits);
        assert_eq!(sum.aborts_total(), snap.aborts_total());
        assert_eq!(sum.gate_total(), snap.gate_total());
        assert_eq!(sum.commit_count, snap.commit_ns.count);
        assert_eq!(sum.commit_sum_ns, snap.commit_ns.sum);
    }

    #[test]
    fn partition_survives_collector_switches() {
        let mut wt = WindowedTelemetry::new(4);
        for run in 0..5u16 {
            let tel = Arc::new(Telemetry::counters_only());
            wt.attach(Arc::clone(&tel));
            for i in 0..30u64 {
                tel.record_commit(pair(run), i);
                if i % 4 == 0 {
                    tel.record_abort(pair(run), AbortCause::ReadVersion);
                }
            }
            drop(wt.roll());
        }
        wt.check_partition().expect("partition across collectors");
        let sum = wt.retained_sum();
        assert_eq!(sum.commits, 150);
        assert_eq!(sum.aborts_total(), 40);
        // Cumulative view is monotone: the merged snapshot matches too.
        assert_eq!(wt.cumulative().commits, 150);
    }

    #[test]
    fn idle_ticks_close_no_window() {
        let tel = Arc::new(Telemetry::counters_only());
        let mut wt = WindowedTelemetry::new(4);
        wt.attach(Arc::clone(&tel));
        assert!(wt.roll().is_none());
        assert!(wt.roll().is_none());
        assert_eq!(wt.closed(), 0);
        assert_eq!(wt.rolls(), 2);
        tel.record_commit(pair(0), 7);
        let w = wt.roll().expect("activity closes a window");
        assert_eq!(w.counters.commits, 1);
        assert_eq!(wt.closed(), 1);
        wt.check_partition().unwrap();
    }

    #[test]
    fn window_latency_quantiles_are_per_window() {
        let tel = Arc::new(Telemetry::counters_only());
        let mut wt = WindowedTelemetry::new(8);
        wt.attach(Arc::clone(&tel));
        for _ in 0..100 {
            tel.record_commit(pair(0), 10); // bucket [8,15]
        }
        let w1 = wt.roll().unwrap();
        for _ in 0..100 {
            tel.record_commit(pair(0), 10_000); // bucket [8192,16383]
        }
        let w2 = wt.roll().unwrap();
        assert!(w1.commit_p99_ns <= 15, "first window is all-fast");
        assert!(
            w2.commit_p50_ns >= 8192,
            "second window's median reflects only its own samples, got {}",
            w2.commit_p50_ns
        );
    }

    #[test]
    fn slo_spec_parses_and_rejects() {
        let s = SloSpec::parse("abort-ratio=30,released<=5,p99-ms=2,warn=2,incident=4,clear=6,window-ms=100")
            .unwrap();
        assert_eq!(s.max_abort_ratio_pct, Some(30.0));
        assert_eq!(s.max_released_pct, Some(5.0));
        assert_eq!(s.max_commit_p99_ns, Some(2_000_000));
        assert_eq!(s.warn_after, 2);
        assert_eq!(s.incident_after, 4);
        assert_eq!(s.clear_after, 6);
        assert_eq!(s.window_ms, 100);
        let s = SloSpec::parse("abort-ratio=none,breaker=off").unwrap();
        assert_eq!(s.max_abort_ratio_pct, None);
        assert!(!s.breaker_open_breaches);
        assert!(SloSpec::parse("nope=1").unwrap_err().contains("unknown SLO key"));
        assert!(SloSpec::parse("abort-ratio=x").is_err());
        assert!(SloSpec::parse("justaword").is_err());
    }

    #[test]
    fn watchdog_hysteresis_escalates_and_recovers() {
        let spec = SloSpec {
            max_abort_ratio_pct: Some(30.0),
            warn_after: 2,
            incident_after: 2,
            clear_after: 2,
            ..SloSpec::default()
        };
        let mut dog = SloWatchdog::new(spec);
        let bad = window(10, 90); // 90% abort ratio
        let good = window(100, 1);
        assert!(dog.observe(&bad).is_none(), "one breach is not enough");
        let tr = dog.observe(&bad).expect("second breach warns");
        assert_eq!((tr.from, tr.to), (SloState::Ok, SloState::Warn));
        assert!(!tr.breaches.is_empty());
        assert!(dog.observe(&bad).is_none(), "streak restarts after Warn");
        let tr = dog.observe(&bad).expect("two more breaches trip Incident");
        assert_eq!((tr.from, tr.to), (SloState::Warn, SloState::Incident));
        assert!(dog.observe(&good).is_none());
        let tr = dog.observe(&good).expect("two clean windows step down");
        assert_eq!((tr.from, tr.to), (SloState::Incident, SloState::Warn));
        assert!(dog.observe(&good).is_none());
        let tr = dog.observe(&good).expect("two more clean windows clear");
        assert_eq!((tr.from, tr.to), (SloState::Warn, SloState::Ok));
        assert_eq!(dog.timeline().len(), 4);
        assert_eq!(dog.breached_windows(), 4);
    }

    #[test]
    fn quiet_windows_do_not_move_the_machine() {
        let mut dog = SloWatchdog::new(SloSpec {
            max_abort_ratio_pct: Some(30.0),
            warn_after: 1,
            ..SloSpec::default()
        });
        let quiet = window(0, 0);
        assert!(dog.observe(&quiet).is_none());
        assert_eq!(dog.windows_seen(), 0);
        assert_eq!(dog.state(), SloState::Ok);
    }

    #[test]
    fn incident_trips_flight_recorder_with_schema_stamp() {
        let spec = SloSpec {
            max_abort_ratio_pct: Some(10.0),
            warn_after: 1,
            incident_after: 1,
            min_events: 1,
            ..SloSpec::default()
        };
        let plane = OpsPlane::with_ring(spec, 16);
        let tel = Arc::new(Telemetry::with_trace_capacity(64));
        plane.attach(&tel);
        for round in 0..2u64 {
            for i in 0..20u64 {
                tel.record_abort(pair(0), AbortCause::Validation);
                tel.trace(
                    pair(0),
                    TraceKind::Abort {
                        cause: AbortCause::Validation,
                        addr: (round * 100 + i) as usize,
                    },
                );
            }
            tel.record_commit(pair(0), 50);
            drop(plane.roll_stamped("test-stamp"));
        }
        assert_eq!(plane.state(), SloState::Incident);
        let incidents = plane.incidents();
        assert_eq!(incidents.len(), 1);
        let dump = &incidents[0].json;
        assert!(dump.contains("\"schema\": 1"));
        assert!(dump.contains("\"kind\": \"gstm_incident\""));
        assert!(dump.contains("\"stamp\": \"test-stamp\""));
        assert!(dump.contains("\"state\": \"incident\""));
        assert!(dump.contains("\"kind\":\"abort\""));
        assert!(!dump.contains("ts_ns"), "dump omits wall-clock noise");
        // The /incidents endpoint returns a JSON array holding the dump.
        let arr = plane.incidents_json();
        assert!(arr.starts_with('['));
        assert!(arr.contains("gstm_incident"));
    }

    #[test]
    fn frozen_metrics_are_stable_and_partitioned() {
        let plane = OpsPlane::with_ring(SloSpec::default(), 4);
        let tel = Arc::new(Telemetry::counters_only());
        plane.attach(&tel);
        for i in 0..10u64 {
            tel.record_commit(pair(0), i);
            drop(plane.roll_stamped("s"));
        }
        let frozen = plane.freeze_stamped("s");
        assert_eq!(plane.metrics(), frozen, "scrapes after freeze are pinned");
        tel.record_commit(pair(0), 1);
        assert_eq!(plane.metrics(), frozen, "even if counters move afterwards");
        assert!(frozen.contains("gstm_build_info{schema=\"1\""));
        assert!(frozen.contains("gstm_windows_closed_total 10"));
        assert!(frozen.contains("gstm_window_evicted_windows_total 6"));
        plane.check_partition().unwrap();
        // The exported partition adds up: evicted + retained == total.
        let evicted: u64 = frozen
            .lines()
            .find(|l| l.starts_with("gstm_window_evicted_total{counter=\"commits\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        let retained: u64 = frozen
            .lines()
            .filter(|l| l.starts_with("gstm_window_commits{"))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
            .sum();
        assert_eq!(evicted + retained, 10);
    }

    #[test]
    fn http_parser_handles_fragments_and_garbage() {
        assert_eq!(parse_http_request(b""), HttpParse::Partial);
        assert_eq!(parse_http_request(b"GET /met"), HttpParse::Partial);
        assert_eq!(
            parse_http_request(b"GET /metrics HTTP/1.1\r\nHost: x\r\n"),
            HttpParse::Partial
        );
        assert_eq!(
            parse_http_request(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            HttpParse::Complete {
                method: "GET".to_string(),
                path: "/metrics".to_string()
            }
        );
        assert_eq!(
            parse_http_request(b"GET /vars?pretty=1 HTTP/1.0\r\n\r\n"),
            HttpParse::Complete {
                method: "GET".to_string(),
                path: "/vars".to_string()
            }
        );
        assert!(matches!(
            parse_http_request(b"nonsense\r\n\r\n"),
            HttpParse::Invalid(_)
        ));
        assert!(matches!(
            parse_http_request(b"GET /x SPDY/9\r\n\r\n"),
            HttpParse::Invalid(_)
        ));
        let huge = vec![b'a'; MAX_REQUEST_BYTES + 1];
        assert!(matches!(parse_http_request(&huge), HttpParse::Invalid(_)));
    }

    #[test]
    fn routes_serve_and_unknown_paths_404() {
        let plane = OpsPlane::new(SloSpec::default());
        let tel = Arc::new(Telemetry::counters_only());
        plane.attach(&tel);
        tel.record_commit(pair(0), 5);
        let (status, _, body) = route(&plane, "GET", "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("gstm_commits_total 1"));
        let (status, _, body) = route(&plane, "GET", "/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\":\"ok\""));
        assert!(body.contains("\"trace_dropped\":0"));
        assert!(body.contains("\"guardian_restarts\":0"));
        let (status, _, _) = route(&plane, "GET", "/vars");
        assert_eq!(status, 200);
        let (status, _, _) = route(&plane, "GET", "/incidents");
        assert_eq!(status, 200);
        let (status, _, body) = route(&plane, "GET", "/nope");
        assert_eq!(status, 404);
        assert!(body.contains("not found"));
        let (status, _, _) = route(&plane, "POST", "/metrics");
        assert_eq!(status, 405);
    }

    #[test]
    fn health_is_503_in_incident() {
        let spec = SloSpec {
            max_abort_ratio_pct: Some(10.0),
            warn_after: 1,
            incident_after: 1,
            ..SloSpec::default()
        };
        let plane = OpsPlane::new(spec);
        let tel = Arc::new(Telemetry::counters_only());
        plane.attach(&tel);
        for _ in 0..2 {
            for _ in 0..20 {
                tel.record_abort(pair(0), AbortCause::Validation);
            }
            tel.record_commit(pair(0), 1);
            drop(plane.roll_stamped("s"));
        }
        let (status, _, body) = route(&plane, "GET", "/health");
        assert_eq!(status, 503);
        assert!(body.contains("\"state\":\"incident\""));
        assert!(body.contains("abort_ratio"));
    }

    #[test]
    fn server_round_trips_over_a_real_socket_with_partial_writes() {
        let plane = Arc::new(OpsPlane::new(SloSpec::default()));
        let tel = Arc::new(Telemetry::counters_only());
        plane.attach(&tel);
        tel.record_commit(pair(0), 9);
        let server = serve(Arc::clone(&plane), "127.0.0.1:0").expect("bind");
        let addr = server.addr;

        let fetch = |req_parts: &[&str]| -> String {
            let mut s = TcpStream::connect(addr).expect("connect");
            for part in req_parts {
                s.write_all(part.as_bytes()).unwrap();
                s.flush().unwrap();
                std::thread::sleep(Duration::from_millis(10));
            }
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };

        // Request split across writes exercises the Partial path.
        let resp = fetch(&["GET /met", "rics HTTP/1.1\r\nHost: t\r\n\r\n"]);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "got: {resp}");
        assert!(resp.contains("gstm_commits_total 1"));
        let resp = fetch(&["GET /unknown HTTP/1.1\r\n\r\n"]);
        assert!(resp.starts_with("HTTP/1.1 404"));
        let resp = fetch(&["GET /health HTTP/1.1\r\n\r\n"]);
        assert!(resp.starts_with("HTTP/1.1 200"));
        server.stop();
    }

    #[test]
    fn deterministic_rolls_produce_identical_dumps() {
        let run = || {
            let spec = SloSpec {
                max_abort_ratio_pct: Some(25.0),
                warn_after: 1,
                incident_after: 2,
                ..SloSpec::default()
            };
            let plane = OpsPlane::with_ring(spec, 8);
            let tel = Arc::new(Telemetry::with_trace_capacity(256));
            plane.attach(&tel);
            for step in 0..6u64 {
                for i in 0..10u64 {
                    if step < 4 {
                        tel.record_abort(pair((i % 2) as u16), AbortCause::Validation);
                        tel.trace(
                            pair((i % 2) as u16),
                            TraceKind::Abort {
                                cause: AbortCause::Validation,
                                addr: (step * 10 + i) as usize,
                            },
                        );
                    }
                    tel.record_commit(pair((i % 2) as u16), 100 + step);
                    tel.trace(
                        pair((i % 2) as u16),
                        TraceKind::Commit {
                            commit_ns: 100 + step,
                            writes: 1,
                        },
                    );
                }
                drop(plane.roll_stamped("fixed"));
            }
            let frozen = plane.freeze_stamped("fixed");
            (
                plane
                    .incidents()
                    .into_iter()
                    .map(|i| i.json)
                    .collect::<Vec<_>>(),
                frozen,
            )
        };
        let (a_dumps, a_frozen) = run();
        let (b_dumps, b_frozen) = run();
        assert!(!a_dumps.is_empty(), "scenario must trip an incident");
        assert_eq!(a_dumps, b_dumps, "flight dumps replay bit-identically");
        assert_eq!(a_frozen, b_frozen, "frozen exposition replays bit-identically");
    }
}
