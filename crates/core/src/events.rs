//! Raw transactional events and abort causes.
//!
//! The STM runtimes report three kinds of events to a
//! [`crate::guidance::GuidanceHook`]: transaction begin (the *gate*), abort,
//! and commit. This module defines the abort taxonomy shared by both STMs
//! and a totally ordered event log used by tests and offline analyses that
//! want to inspect raw interleavings rather than the online TSS stream.

use crate::ids::{Pair, ThreadId};
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a transaction attempt rolled back.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortCause {
    /// A location read was write-locked by another transaction.
    ReadLocked {
        /// The lock holder, when the lock word records one.
        owner: Option<ThreadId>,
    },
    /// A location's version exceeded the transaction's read version at read
    /// time (a conflicting commit happened since the transaction began).
    ReadVersion,
    /// Commit-time lock acquisition found a location locked by another
    /// transaction and gave up after bounded spinning.
    CommitLockBusy {
        /// The lock holder, when known.
        owner: Option<ThreadId>,
    },
    /// Commit-time read-set validation failed (a conflicting commit
    /// intervened between first read and commit).
    Validation,
    /// The transaction was doomed by a committing writer
    /// (LibTM's *abort-readers* conflict resolution).
    AbortedByWriter {
        /// The writer that doomed this reader, when known.
        writer: Option<ThreadId>,
    },
    /// The user function requested an explicit retry.
    Explicit,
}

impl AbortCause {
    /// The conflicting thread, when the STM knows it.
    pub fn conflicting_thread(&self) -> Option<ThreadId> {
        match *self {
            AbortCause::ReadLocked { owner } => owner,
            AbortCause::CommitLockBusy { owner } => owner,
            AbortCause::AbortedByWriter { writer } => writer,
            AbortCause::ReadVersion | AbortCause::Validation | AbortCause::Explicit => None,
        }
    }
}

/// The memory location a conflict was detected on.
///
/// [`AbortCause`] records *who* a transaction conflicted with but not
/// *where*; `ConflictSite` carries the contended location's stable
/// identity (its allocation address — the same key the read/write sets
/// use) alongside the cause. It rides the backends' abort structs rather
/// than the cause enum so existing cause matching and its trace schema
/// stay untouched; a zero address means the backend could not name a
/// location (explicit retries, doom flags observed without provenance),
/// which the contention sketch counts as *unattributed*.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ConflictSite {
    addr: usize,
}

impl ConflictSite {
    /// No known location (attribution counts this abort as unattributed).
    pub const UNKNOWN: ConflictSite = ConflictSite { addr: 0 };

    /// A conflict detected on the location with the given stable key.
    /// A zero key collapses to [`ConflictSite::UNKNOWN`] (allocation
    /// addresses are never null).
    pub fn at(addr: usize) -> Self {
        ConflictSite { addr }
    }

    /// The conflicting location's key, if one was recorded.
    pub fn addr(self) -> Option<usize> {
        (self.addr != 0).then_some(self.addr)
    }

    /// The raw key (0 = unknown) — the trace-schema encoding.
    pub fn raw(self) -> usize {
        self.addr
    }
}

/// One entry in the global event log.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxEvent {
    /// A transaction attempt began.
    Begin(Pair),
    /// A transaction attempt aborted for the given reason.
    Abort(Pair, AbortCause),
    /// A transaction committed; `wv` is the write version it installed
    /// (TL2's post-increment of the global version clock), or 0 for STMs
    /// without a global clock.
    Commit(Pair, u64),
}

impl TxEvent {
    /// The `<txn,thread>` pair this event concerns.
    pub fn pair(&self) -> Pair {
        match *self {
            TxEvent::Begin(p) | TxEvent::Abort(p, _) | TxEvent::Commit(p, _) => p,
        }
    }
}

/// Retained-entry bound used by [`EventLog::new`]: long harness runs keep
/// at most this many of the newest events instead of growing without
/// bound.
pub const DEFAULT_LOG_CAPACITY: usize = 1 << 20;

/// Ring state behind the log's lock: the entries plus the overwrite
/// cursor used once the capacity bound is reached.
#[derive(Default)]
struct LogInner {
    entries: Vec<(u64, TxEvent)>,
    next: usize,
    dropped: u64,
}

/// A totally ordered log of [`TxEvent`]s, bounded to the newest
/// `capacity` entries.
///
/// Each appended event receives a globally unique, monotonically increasing
/// sequence number. Once `capacity` events are retained, the oldest entry
/// is overwritten (ring semantics), so unbounded recording cannot exhaust
/// memory on long runs. The log is intended for tests, debugging, and
/// offline experiments; the production guidance path uses the cheaper
/// online tracker in [`crate::guidance`].
pub struct EventLog {
    seq: AtomicU64,
    capacity: usize,
    inner: Mutex<LogInner>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_LOG_CAPACITY)
    }
}

impl EventLog {
    /// Create an empty log retaining up to [`DEFAULT_LOG_CAPACITY`]
    /// events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty log retaining up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "EventLog capacity must be nonzero");
        EventLog {
            seq: AtomicU64::new(0),
            capacity,
            inner: Mutex::new(LogInner::default()),
        }
    }

    /// Append an event, returning its sequence number. Beyond the
    /// capacity bound the oldest retained event is overwritten.
    pub fn push(&self, ev: TxEvent) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if inner.entries.len() < self.capacity {
            inner.entries.push((seq, ev));
        } else {
            let i = inner.next;
            inner.entries[i] = (seq, ev);
            inner.next = (i + 1) % self.capacity;
            inner.dropped += 1;
        }
        seq
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the log was at capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Snapshot the retained events ordered by sequence number.
    ///
    /// The output buffer is preallocated *before* the lock is taken and
    /// the sort happens after it is released, so concurrent `push`es are
    /// blocked only for the memcpy of the entries.
    pub fn snapshot(&self) -> Vec<(u64, TxEvent)> {
        let mut out = Vec::with_capacity(self.len());
        {
            let inner = self.inner.lock();
            out.extend_from_slice(&inner.entries);
        }
        out.sort_unstable_by_key(|&(seq, _)| seq);
        out
    }

    /// Take the retained events (ordered by sequence number), leaving the
    /// log empty. The entries are moved out with an O(1) swap under the
    /// lock; no copy or allocation happens while it is held.
    pub fn drain(&self) -> Vec<(u64, TxEvent)> {
        let mut out = {
            let mut inner = self.inner.lock();
            inner.next = 0;
            std::mem::take(&mut inner.entries)
        };
        out.sort_unstable_by_key(|&(seq, _)| seq);
        out
    }

    /// Drop all recorded events (the sequence counter keeps advancing).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxnId};

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    #[test]
    fn log_orders_by_sequence() {
        let log = EventLog::new();
        log.push(TxEvent::Begin(p(0, 0)));
        log.push(TxEvent::Abort(p(0, 0), AbortCause::Validation));
        log.push(TxEvent::Commit(p(0, 1), 42));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(snap[2].1, TxEvent::Commit(p(0, 1), 42));
    }

    #[test]
    fn conflicting_thread_extraction() {
        assert_eq!(
            AbortCause::ReadLocked {
                owner: Some(ThreadId(3))
            }
            .conflicting_thread(),
            Some(ThreadId(3))
        );
        assert_eq!(AbortCause::Validation.conflicting_thread(), None);
        assert_eq!(
            AbortCause::AbortedByWriter {
                writer: Some(ThreadId(1))
            }
            .conflicting_thread(),
            Some(ThreadId(1))
        );
    }

    #[test]
    fn clear_preserves_monotonic_sequence() {
        let log = EventLog::new();
        let s0 = log.push(TxEvent::Begin(p(0, 0)));
        log.clear();
        assert!(log.is_empty());
        let s1 = log.push(TxEvent::Begin(p(0, 1)));
        assert!(s1 > s0);
    }

    #[test]
    fn capacity_bound_keeps_newest_events() {
        let log = EventLog::with_capacity(4);
        for i in 0..10u16 {
            log.push(TxEvent::Commit(p(i, 0), i as u64));
        }
        assert_eq!(log.len(), 4, "retention is bounded");
        assert_eq!(log.dropped(), 6);
        let snap = log.snapshot();
        let seqs: Vec<u64> = snap.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest events survive, ordered");
    }

    #[test]
    fn drain_takes_and_resets() {
        let log = EventLog::with_capacity(2);
        log.push(TxEvent::Begin(p(0, 0)));
        log.push(TxEvent::Begin(p(0, 1)));
        log.push(TxEvent::Begin(p(0, 2))); // overwrites seq 0
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(log.is_empty());
        // The ring cursor reset: the next pushes fill from scratch.
        let s = log.push(TxEvent::Begin(p(1, 0)));
        assert_eq!(log.len(), 1);
        assert!(s >= 3, "sequence numbers keep advancing");
    }

    #[test]
    fn concurrent_pushes_get_unique_sequences() {
        use std::sync::Arc;
        let log = Arc::new(EventLog::new());
        let mut handles = Vec::new();
        for th in 0..4u16 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u16 {
                    log.push(TxEvent::Commit(p(i % 8, th), 0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 400);
        let mut seqs: Vec<u64> = snap.iter().map(|&(s, _)| s).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "sequence numbers must be unique");
    }
}
