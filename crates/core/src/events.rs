//! Raw transactional events and abort causes.
//!
//! The STM runtimes report three kinds of events to a
//! [`crate::guidance::GuidanceHook`]: transaction begin (the *gate*), abort,
//! and commit. This module defines the abort taxonomy shared by both STMs
//! and a totally ordered event log used by tests and offline analyses that
//! want to inspect raw interleavings rather than the online TSS stream.

use crate::ids::{Pair, ThreadId};
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a transaction attempt rolled back.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortCause {
    /// A location read was write-locked by another transaction.
    ReadLocked {
        /// The lock holder, when the lock word records one.
        owner: Option<ThreadId>,
    },
    /// A location's version exceeded the transaction's read version at read
    /// time (a conflicting commit happened since the transaction began).
    ReadVersion,
    /// Commit-time lock acquisition found a location locked by another
    /// transaction and gave up after bounded spinning.
    CommitLockBusy {
        /// The lock holder, when known.
        owner: Option<ThreadId>,
    },
    /// Commit-time read-set validation failed (a conflicting commit
    /// intervened between first read and commit).
    Validation,
    /// The transaction was doomed by a committing writer
    /// (LibTM's *abort-readers* conflict resolution).
    AbortedByWriter {
        /// The writer that doomed this reader, when known.
        writer: Option<ThreadId>,
    },
    /// The user function requested an explicit retry.
    Explicit,
}

impl AbortCause {
    /// The conflicting thread, when the STM knows it.
    pub fn conflicting_thread(&self) -> Option<ThreadId> {
        match *self {
            AbortCause::ReadLocked { owner } => owner,
            AbortCause::CommitLockBusy { owner } => owner,
            AbortCause::AbortedByWriter { writer } => writer,
            AbortCause::ReadVersion | AbortCause::Validation | AbortCause::Explicit => None,
        }
    }
}

/// One entry in the global event log.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxEvent {
    /// A transaction attempt began.
    Begin(Pair),
    /// A transaction attempt aborted for the given reason.
    Abort(Pair, AbortCause),
    /// A transaction committed; `wv` is the write version it installed
    /// (TL2's post-increment of the global version clock), or 0 for STMs
    /// without a global clock.
    Commit(Pair, u64),
}

impl TxEvent {
    /// The `<txn,thread>` pair this event concerns.
    pub fn pair(&self) -> Pair {
        match *self {
            TxEvent::Begin(p) | TxEvent::Abort(p, _) | TxEvent::Commit(p, _) => p,
        }
    }
}

/// A totally ordered, append-only log of [`TxEvent`]s.
///
/// Each appended event receives a globally unique, monotonically increasing
/// sequence number. The log is intended for tests, debugging, and offline
/// experiments; the production guidance path uses the cheaper online
/// tracker in [`crate::guidance`].
#[derive(Default)]
pub struct EventLog {
    seq: AtomicU64,
    entries: Mutex<Vec<(u64, TxEvent)>>,
}

impl EventLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, returning its sequence number.
    pub fn push(&self, ev: TxEvent) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().push((seq, ev));
        seq
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the log contents ordered by sequence number.
    pub fn snapshot(&self) -> Vec<(u64, TxEvent)> {
        let mut v = self.entries.lock().clone();
        v.sort_by_key(|&(seq, _)| seq);
        v
    }

    /// Drop all recorded events (the sequence counter keeps advancing).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxnId};

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    #[test]
    fn log_orders_by_sequence() {
        let log = EventLog::new();
        log.push(TxEvent::Begin(p(0, 0)));
        log.push(TxEvent::Abort(p(0, 0), AbortCause::Validation));
        log.push(TxEvent::Commit(p(0, 1), 42));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(snap[2].1, TxEvent::Commit(p(0, 1), 42));
    }

    #[test]
    fn conflicting_thread_extraction() {
        assert_eq!(
            AbortCause::ReadLocked {
                owner: Some(ThreadId(3))
            }
            .conflicting_thread(),
            Some(ThreadId(3))
        );
        assert_eq!(AbortCause::Validation.conflicting_thread(), None);
        assert_eq!(
            AbortCause::AbortedByWriter {
                writer: Some(ThreadId(1))
            }
            .conflicting_thread(),
            Some(ThreadId(1))
        );
    }

    #[test]
    fn clear_preserves_monotonic_sequence() {
        let log = EventLog::new();
        let s0 = log.push(TxEvent::Begin(p(0, 0)));
        log.clear();
        assert!(log.is_empty());
        let s1 = log.push(TxEvent::Begin(p(0, 1)));
        assert!(s1 > s0);
    }

    #[test]
    fn concurrent_pushes_get_unique_sequences() {
        use std::sync::Arc;
        let log = Arc::new(EventLog::new());
        let mut handles = Vec::new();
        for th in 0..4u16 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u16 {
                    log.push(TxEvent::Commit(p(i % 8, th), 0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 400);
        let mut seqs: Vec<u64> = snap.iter().map(|&(s, _)| s).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "sequence numbers must be unique");
    }
}
