//! Measurement utilities: variance, abort-tail metric, non-determinism.
//!
//! These implement the paper's quantities exactly:
//!
//! * **Variance** of a thread's execution time is reported as the sample
//!   standard deviation over repeated runs (`N-1` denominator).
//! * **Non-determinism** of an execution is the number of *distinct* thread
//!   transactional states exercised.
//! * The **tail metric** of an abort distribution is `tail = Σ j²` over the
//!   distinct abort-counts `j` that occurred with non-zero frequency —
//!   squaring emphasises the tail (high abort counts), so shrinking the
//!   metric means the tail was cut.

use crate::tss::StateKey;
use std::collections::{BTreeMap, HashSet};

/// Sample mean of a series.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation with the `N-1` denominator, as defined in
/// Section II-B of the paper. Returns 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Percentage improvement of `new` over `base`: positive when `new < base`.
/// Returns 0 when the baseline is 0 (nothing to improve).
pub fn pct_improvement(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (base - new) / base
    }
}

/// Slowdown factor of `new` relative to `base` (1.0 = equal, 2.0 = twice as
/// slow). Returns 1.0 when the baseline is 0.
pub fn slowdown(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        1.0
    } else {
        new / base
    }
}

/// Number of distinct thread transactional states across a set of runs —
/// the paper's measure of non-determinism.
pub fn non_determinism<S: AsRef<[StateKey]>>(runs: &[S]) -> usize {
    let mut distinct: HashSet<&StateKey> = HashSet::new();
    for run in runs {
        for key in run.as_ref() {
            distinct.insert(key);
        }
    }
    distinct.len()
}

/// Histogram of "number of aborts before a successful commit".
///
/// Each completed transaction contributes one sample: the number of times
/// it rolled back before committing. `0:700` in the paper's artifact output
/// means 700 transactions committed first try.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct AbortHistogram {
    counts: BTreeMap<u32, u64>,
}

impl AbortHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one committed transaction that aborted `aborts` times first.
    pub fn record(&mut self, aborts: u32) {
        *self.counts.entry(aborts).or_insert(0) += 1;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &AbortHistogram) {
        for (&j, &f) in &other.counts {
            *self.counts.entry(j).or_insert(0) += f;
        }
    }

    /// `(abort_count, frequency)` pairs in increasing abort count.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&j, &f)| (j, f))
    }

    /// Total number of committed transactions recorded.
    pub fn total_commits(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total number of aborts across all recorded transactions.
    pub fn total_aborts(&self) -> u64 {
        self.counts.iter().map(|(&j, &f)| j as u64 * f).sum()
    }

    /// The largest abort count observed (tail length).
    pub fn max_aborts(&self) -> u32 {
        self.counts.keys().next_back().copied().unwrap_or(0)
    }

    /// The paper's tail metric: `Σ j²` over distinct abort counts `j` with
    /// non-zero frequency. A longer tail (more distinct high abort counts)
    /// yields a larger value.
    pub fn tail_metric(&self) -> u64 {
        self.counts
            .keys()
            .map(|&j| (j as u64) * (j as u64))
            .sum()
    }

    /// Abort ratio: aborts / (aborts + commits). 0 if nothing recorded.
    pub fn abort_ratio(&self) -> f64 {
        let commits = self.total_commits();
        let aborts = self.total_aborts();
        if commits + aborts == 0 {
            0.0
        } else {
            aborts as f64 / (aborts + commits) as f64
        }
    }
}

impl FromIterator<(u32, u64)> for AbortHistogram {
    fn from_iter<I: IntoIterator<Item = (u32, u64)>>(iter: I) -> Self {
        AbortHistogram {
            counts: iter.into_iter().filter(|&(_, f)| f > 0).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Pair, ThreadId, TxnId};

    #[test]
    fn std_dev_matches_hand_computation() {
        // Samples 2,4,4,4,5,5,7,9: mean 5, sample variance 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = std_dev(&xs);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn improvement_and_slowdown() {
        assert!((pct_improvement(2.0, 1.0) - 50.0).abs() < 1e-12);
        assert!((pct_improvement(1.0, 2.0) + 100.0).abs() < 1e-12);
        assert_eq!(pct_improvement(0.0, 5.0), 0.0);
        assert!((slowdown(2.0, 3.0) - 1.5).abs() < 1e-12);
        assert_eq!(slowdown(0.0, 3.0), 1.0);
    }

    #[test]
    fn non_determinism_counts_distinct_states() {
        let p = |t, th| Pair::new(TxnId(t), ThreadId(th));
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let runs = vec![vec![a.clone(), b.clone(), a.clone()], vec![b.clone()]];
        assert_eq!(non_determinism(&runs), 2);
        assert_eq!(non_determinism::<Vec<StateKey>>(&[]), 0);
    }

    #[test]
    fn tail_metric_squares_distinct_abort_counts() {
        let mut h = AbortHistogram::new();
        h.record(0);
        h.record(0);
        h.record(3);
        h.record(5);
        // Distinct abort counts: 0, 3, 5 → 0 + 9 + 25 = 34.
        assert_eq!(h.tail_metric(), 34);
        assert_eq!(h.max_aborts(), 5);
        assert_eq!(h.total_commits(), 4);
        assert_eq!(h.total_aborts(), 8);
    }

    #[test]
    fn tail_metric_shrinks_when_tail_is_cut() {
        let long: AbortHistogram = [(0, 100), (1, 10), (7, 1), (12, 1)].into_iter().collect();
        let cut: AbortHistogram = [(0, 108), (1, 12), (2, 1)].into_iter().collect();
        assert!(cut.tail_metric() < long.tail_metric());
    }

    #[test]
    fn merge_accumulates() {
        let mut a: AbortHistogram = [(0, 5), (2, 1)].into_iter().collect();
        let b: AbortHistogram = [(0, 3), (1, 2)].into_iter().collect();
        a.merge(&b);
        let expect: AbortHistogram = [(0, 8), (1, 2), (2, 1)].into_iter().collect();
        assert_eq!(a, expect);
    }

    #[test]
    fn abort_ratio() {
        let h: AbortHistogram = [(0, 50), (1, 50)].into_iter().collect();
        // 50 aborts, 100 commits → ratio 1/3.
        assert!((h.abort_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(AbortHistogram::new().abort_ratio(), 0.0);
    }
}
