//! Conflict provenance: lock-free hot-address contention sketches and a
//! thread×thread conflict matrix.
//!
//! The paper's thesis is that commit-time conflicts drive execution
//! variance, but counters alone say only *how many* aborts happened — not
//! *where*. This module attributes every abort to the memory location it
//! was detected on (when the backend knows one) and to the `(victim,
//! owner)` thread pair (when the abort cause carries an owner), so the
//! analyzer can rank hot addresses and the placement planner can build
//! its affinity matrix from measured conflicts instead of the TSA proxy.
//!
//! # Design
//!
//! A [`ContentionTracker`] holds [`CONTENTION_SHARDS`] cache-padded
//! cells, indexed by `thread.index() & (CONTENTION_SHARDS - 1)` — the
//! same sharding discipline as the telemetry counters: with at most
//! [`CONTENTION_SHARDS`] worker threads every cell has a single writer,
//! so the record path needs only relaxed atomics and never a lock or an
//! allocation. Each cell contains:
//!
//! * a **space-saving top-K sketch** (Metwally et al.) over conflict
//!   addresses: [`SKETCH_SLOTS`] `(addr, count, err)` slots. A recorded
//!   address that matches a slot increments it; a miss claims an empty
//!   slot; when the table is full the *minimum-count* slot is evicted and
//!   the newcomer inherits its count as an over-count bound (`err`).
//!   Every record performs exactly one `+1`, so **Σ slot counts == number
//!   of attributed records** — the conservation law the analyzer's
//!   `contention_partition` check relies on. The classic guarantee
//!   holds: any address with true frequency > N/K occupies a slot, and
//!   every slot over-counts by at most `err ≤ N/K`.
//! * a **conflict-matrix row**: `pairs[owner]` counts aborts this cell's
//!   thread (the victim) suffered at the hands of `owner`, harvested
//!   from [`AbortCause::ReadLocked`], [`AbortCause::CommitLockBusy`] and
//!   [`AbortCause::AbortedByWriter`]. Every other record — an
//!   owner-bearing cause whose owner was not observed, or an inherently
//!   ownerless cause (version/validation failure, explicit abort) —
//!   lands in `owner_unknown`, so the matrix plus `owner_unknown`
//!   partitions the recorded total exactly.
//! * `attributed` / `unattributed` totals: every recorded abort
//!   increments exactly one of the two, making
//!   `attributed + unattributed == total aborts` exact.
//!
//! Merging happens only on the cold snapshot path
//! ([`ContentionTracker::snapshot`]), like the PR 1 abort shards: per-cell
//! sketches are summed by address, ranked, and the mass beyond
//! [`EXPORT_TOP_K`] is folded into an explicit `residual` so
//! `Σ top counts + residual == attributed` stays exact after truncation.
//!
//! When disabled the backends hold `None` and the abort path pays one
//! predictable branch — the same zero-cost idiom as telemetry and fault
//! injection.

use crate::events::{AbortCause, ConflictSite};
use crate::ids::ThreadId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of per-thread cells. Power of two; thread ids are masked into
/// the cell space, so runs with more threads than cells share cells
/// (counts stay conserved — only per-thread attribution coarsens).
pub const CONTENTION_SHARDS: usize = 64;

/// Slots per space-saving sketch cell. The error bound on any reported
/// count is at most `attributed_in_cell / SKETCH_SLOTS`.
pub const SKETCH_SLOTS: usize = 32;

/// How many merged hot addresses a snapshot exports; the rest of the
/// sketch mass is folded into [`ContentionStats::residual`].
pub const EXPORT_TOP_K: usize = 16;

/// One thread's cache-padded contention cell: a space-saving sketch plus
/// a conflict-matrix row. Padded/aligned to 128 bytes so adjacent cells
/// never share a cache line (two-line prefetch granularity).
#[repr(align(128))]
struct Cell {
    /// Sketch slot addresses (0 = empty).
    slot_addr: [AtomicUsize; SKETCH_SLOTS],
    /// Sketch slot counts.
    slot_count: [AtomicU64; SKETCH_SLOTS],
    /// Sketch slot over-count bounds (count inherited at eviction).
    slot_err: [AtomicU64; SKETCH_SLOTS],
    /// Conflict-matrix row: aborts of this cell's thread by owner column
    /// (owner id masked into the cell space).
    pairs: [AtomicU64; CONTENTION_SHARDS],
    /// Aborts recorded with a known conflict address.
    attributed: AtomicU64,
    /// Aborts recorded without one.
    unattributed: AtomicU64,
    /// Space-saving evictions (sketch saturation signal).
    replacements: AtomicU64,
    /// Owner-bearing aborts whose owner was not observed.
    owner_unknown: AtomicU64,
}

impl Cell {
    fn new() -> Self {
        Cell {
            slot_addr: std::array::from_fn(|_| AtomicUsize::new(0)),
            slot_count: std::array::from_fn(|_| AtomicU64::new(0)),
            slot_err: std::array::from_fn(|_| AtomicU64::new(0)),
            pairs: std::array::from_fn(|_| AtomicU64::new(0)),
            attributed: AtomicU64::new(0),
            unattributed: AtomicU64::new(0),
            replacements: AtomicU64::new(0),
            owner_unknown: AtomicU64::new(0),
        }
    }

    /// The space-saving update. Single-writer per cell (threads are
    /// sharded), so plain relaxed loads/stores suffice; a concurrent
    /// snapshot may observe one update mid-flight, which is why
    /// [`ContentionTracker::snapshot`] is documented as quiesced-exact.
    fn record_addr(&self, addr: usize) {
        // One multiplicative hash picks the probe start; the scan wraps
        // over the whole (small) table tracking the match, the first
        // empty slot, and the minimum-count victim in a single pass.
        let start = (addr.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56) & (SKETCH_SLOTS - 1);
        let mut empty = None;
        let mut min_i = 0usize;
        let mut min_count = u64::MAX;
        for probe in 0..SKETCH_SLOTS {
            let i = (start + probe) & (SKETCH_SLOTS - 1);
            let a = self.slot_addr[i].load(Ordering::Relaxed);
            if a == addr {
                let c = self.slot_count[i].load(Ordering::Relaxed);
                self.slot_count[i].store(c + 1, Ordering::Relaxed);
                return;
            }
            if a == 0 {
                if empty.is_none() {
                    empty = Some(i);
                }
                // An empty slot counts as the cheapest eviction victim;
                // prefer it outright via the `empty` fast path below.
                continue;
            }
            let c = self.slot_count[i].load(Ordering::Relaxed);
            if c < min_count {
                min_count = c;
                min_i = i;
            }
        }
        if let Some(i) = empty {
            self.slot_addr[i].store(addr, Ordering::Relaxed);
            self.slot_count[i].store(1, Ordering::Relaxed);
            self.slot_err[i].store(0, Ordering::Relaxed);
            return;
        }
        // Full table: evict the minimum. The newcomer inherits the
        // victim's count (+1 for this record) and records it as its
        // over-count bound — the conservation-preserving classic move.
        self.replacements.fetch_add(1, Ordering::Relaxed);
        self.slot_addr[min_i].store(addr, Ordering::Relaxed);
        self.slot_err[min_i].store(min_count, Ordering::Relaxed);
        self.slot_count[min_i].store(min_count + 1, Ordering::Relaxed);
    }
}

/// Lock-free conflict-provenance recorder. See the module docs for the
/// layout; construct one per run and attach it to the backend (TL2's
/// [`StmBuilder::contention`] / LibTM's `with_observability`), then
/// [`snapshot`](ContentionTracker::snapshot) after the run quiesces.
pub struct ContentionTracker {
    cells: Box<[Cell]>,
}

impl Default for ContentionTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentionTracker {
    /// A fresh tracker with all-zero cells.
    pub fn new() -> Self {
        ContentionTracker {
            cells: (0..CONTENTION_SHARDS).map(|_| Cell::new()).collect(),
        }
    }

    /// Record one abort: `thread` is the victim, `cause` the abort cause
    /// (its owner, if any, feeds the conflict matrix), `site` the
    /// conflicting location (unknown sites count as unattributed).
    ///
    /// Hot path: one mask, one or two relaxed `fetch_add`s, and — for
    /// attributed aborts — one hash plus a bounded array probe. No
    /// allocation, no locks.
    #[inline]
    pub fn record(&self, thread: ThreadId, cause: AbortCause, site: ConflictSite) {
        let cell = &self.cells[thread.index() & (CONTENTION_SHARDS - 1)];
        match cause {
            AbortCause::ReadLocked { owner: Some(o) }
            | AbortCause::CommitLockBusy { owner: Some(o) }
            | AbortCause::AbortedByWriter { writer: Some(o) } => {
                cell.pairs[o.index() & (CONTENTION_SHARDS - 1)]
                    .fetch_add(1, Ordering::Relaxed);
            }
            // Owner-less records (version/validation failures see only a
            // stale version, never who wrote it; explicit aborts have no
            // adversary) still land in exactly one matrix bucket, so
            // `Σ pairs + owner_unknown` partitions the recorded total
            // the same way `attributed + unattributed` does.
            _ => {
                cell.owner_unknown.fetch_add(1, Ordering::Relaxed);
            }
        }
        match site.addr() {
            Some(addr) => {
                cell.attributed.fetch_add(1, Ordering::Relaxed);
                cell.record_addr(addr);
            }
            None => {
                cell.unattributed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Merge every cell into a [`ContentionStats`]. Exact once the
    /// recording threads have quiesced (the harness snapshots after the
    /// run joins); concurrent with recording it is a consistent-enough
    /// approximation, like the telemetry counter snapshots.
    pub fn snapshot(&self) -> ContentionStats {
        // BTreeMap for deterministic iteration: two snapshots of
        // identical cells must serialize identically (the chaos-replay
        // bit-identity contract).
        let mut by_addr: std::collections::BTreeMap<usize, (u64, u64)> =
            std::collections::BTreeMap::new();
        let mut attributed = 0u64;
        let mut unattributed = 0u64;
        let mut replacements = 0u64;
        let mut owner_unknown = 0u64;
        let mut occupied = 0u64;
        let mut pairs_acc = vec![0u64; CONTENTION_SHARDS * CONTENTION_SHARDS];
        for (victim, cell) in self.cells.iter().enumerate() {
            attributed += cell.attributed.load(Ordering::Relaxed);
            unattributed += cell.unattributed.load(Ordering::Relaxed);
            replacements += cell.replacements.load(Ordering::Relaxed);
            owner_unknown += cell.owner_unknown.load(Ordering::Relaxed);
            for i in 0..SKETCH_SLOTS {
                let addr = cell.slot_addr[i].load(Ordering::Relaxed);
                if addr == 0 {
                    continue;
                }
                occupied += 1;
                let e = by_addr.entry(addr).or_insert((0, 0));
                e.0 += cell.slot_count[i].load(Ordering::Relaxed);
                e.1 += cell.slot_err[i].load(Ordering::Relaxed);
            }
            for (owner, n) in cell.pairs.iter().enumerate() {
                pairs_acc[victim * CONTENTION_SHARDS + owner] += n.load(Ordering::Relaxed);
            }
        }
        let mut ranked: Vec<HotAddr> = by_addr
            .into_iter()
            .map(|(addr, (count, err))| HotAddr { addr, count, err })
            .collect();
        // Count descending, address ascending on ties — deterministic.
        ranked.sort_by(|a, b| b.count.cmp(&a.count).then(a.addr.cmp(&b.addr)));
        let residual: u64 = ranked.iter().skip(EXPORT_TOP_K).map(|h| h.count).sum();
        ranked.truncate(EXPORT_TOP_K);
        let pairs: Vec<PairConflict> = pairs_acc
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| PairConflict {
                victim: (i / CONTENTION_SHARDS) as u16,
                owner: (i % CONTENTION_SHARDS) as u16,
                count: n,
            })
            .collect();
        ContentionStats {
            attributed,
            unattributed,
            residual,
            replacements,
            occupied,
            capacity: (CONTENTION_SHARDS * SKETCH_SLOTS) as u64,
            top: ranked,
            pairs,
            owner_unknown,
        }
    }
}

/// One merged hot address: total sketch count and summed over-count
/// bound. The true frequency lies in `[count - err, count]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HotAddr {
    /// The conflicting location's stable identity (allocation address).
    pub addr: usize,
    /// Attributed aborts charged to this address (may over-count by at
    /// most `err`).
    pub count: u64,
    /// Space-saving over-count bound inherited at eviction.
    pub err: u64,
}

/// One nonzero conflict-matrix entry: `victim` aborted `count` times
/// while `owner` held the contended resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PairConflict {
    /// The aborting thread (masked into the cell space).
    pub victim: u16,
    /// The thread that held the lock / doomed the victim.
    pub owner: u16,
    /// Observed conflicts for the pair.
    pub count: u64,
}

/// A merged, export-ready view of a [`ContentionTracker`].
///
/// Invariants (exact when snapshotted quiesced):
/// * `Σ top[i].count + residual == attributed`
/// * `attributed + unattributed ==` total aborts recorded
/// * `Σ pairs[i].count + owner_unknown ==` total aborts recorded
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ContentionStats {
    /// Aborts recorded with a known conflict address.
    pub attributed: u64,
    /// Aborts recorded without one.
    pub unattributed: u64,
    /// Attributed mass beyond the exported top-K.
    pub residual: u64,
    /// Space-saving evictions across all cells.
    pub replacements: u64,
    /// Occupied sketch slots across all cells.
    pub occupied: u64,
    /// Total sketch slots (`CONTENTION_SHARDS * SKETCH_SLOTS`).
    pub capacity: u64,
    /// The merged top-K hot addresses, count-descending.
    pub top: Vec<HotAddr>,
    /// Nonzero conflict-matrix entries, (victim, owner)-ascending.
    pub pairs: Vec<PairConflict>,
    /// Records outside the matrix: owner-bearing aborts whose owner was
    /// not observed, plus inherently ownerless causes.
    pub owner_unknown: u64,
}

impl ContentionStats {
    /// Total aborts recorded.
    pub fn total(&self) -> u64 {
        self.attributed + self.unattributed
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Sketch saturation in [0, 1]: evictions per attributed record. 0
    /// means the top-K is exact (no eviction ever happened); values near
    /// 1 mean the address space churned far beyond the sketch width.
    pub fn saturation(&self) -> f64 {
        if self.attributed == 0 {
            0.0
        } else {
            self.replacements as f64 / self.attributed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(addr: usize) -> ConflictSite {
        ConflictSite::at(addr)
    }

    fn t(i: u16) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn counts_partition_attributed_and_unattributed() {
        let ct = ContentionTracker::new();
        for i in 0..10 {
            ct.record(t(0), AbortCause::Validation, site(0x1000 + i * 8));
        }
        for _ in 0..3 {
            ct.record(t(1), AbortCause::ReadVersion, ConflictSite::UNKNOWN);
        }
        let s = ct.snapshot();
        assert_eq!(s.attributed, 10);
        assert_eq!(s.unattributed, 3);
        assert_eq!(s.total(), 13);
        let top_sum: u64 = s.top.iter().map(|h| h.count).sum();
        assert_eq!(top_sum + s.residual, s.attributed);
    }

    #[test]
    fn heavy_hitter_dominates_the_report() {
        let ct = ContentionTracker::new();
        let hot = 0xdead_0000usize;
        for i in 0..500u64 {
            ct.record(t(0), AbortCause::Validation, site(hot));
            // Interleave cold addresses to stress the sketch.
            ct.record(t(0), AbortCause::Validation, site(0x10_0000 + (i as usize) * 8));
        }
        let s = ct.snapshot();
        assert_eq!(s.top[0].addr, hot, "heavy hitter must rank first");
        assert!(
            s.top[0].count >= 500,
            "space-saving never under-counts a resident address: {}",
            s.top[0].count
        );
        // Over-count bound: err ≤ N/K.
        assert!(
            s.top[0].err <= 1000 / SKETCH_SLOTS as u64,
            "error bound violated: err={} N/K={}",
            s.top[0].err,
            1000 / SKETCH_SLOTS as u64
        );
    }

    #[test]
    fn adversarial_stream_keeps_the_error_bound_and_conservation() {
        // An adversarial rotation designed to force constant eviction:
        // every address reappears just after it was most likely evicted.
        let ct = ContentionTracker::new();
        let n_addrs = SKETCH_SLOTS * 3;
        let rounds = 40u64;
        for r in 0..rounds {
            for a in 0..n_addrs {
                // Skew: address 0 shows up twice as often.
                ct.record(t(0), AbortCause::Validation, site(0x8000 + a * 16));
                if a == 0 && r % 2 == 0 {
                    ct.record(t(0), AbortCause::Validation, site(0x8000));
                }
            }
        }
        let s = ct.snapshot();
        let n = s.attributed;
        // Conservation survives arbitrary eviction pressure.
        let top_sum: u64 = s.top.iter().map(|h| h.count).sum();
        assert_eq!(top_sum + s.residual, n);
        // Every exported count over-counts by at most its err, and err is
        // bounded by N/K.
        for h in &s.top {
            assert!(h.err <= n / SKETCH_SLOTS as u64, "{h:?} vs N/K={}", n / SKETCH_SLOTS as u64);
            assert!(h.count >= h.err, "count bounds its own error: {h:?}");
        }
        assert!(s.replacements > 0, "the adversarial stream must evict");
        assert!(s.saturation() > 0.0 && s.saturation() < 1.0);
    }

    #[test]
    fn conflict_matrix_partitions_owner_bearing_causes() {
        let ct = ContentionTracker::new();
        // 5 with a known owner, 2 owner-bearing but unknown, 3 ownerless.
        for _ in 0..3 {
            ct.record(
                t(2),
                AbortCause::ReadLocked { owner: Some(t(5)) },
                site(0x100),
            );
        }
        for _ in 0..2 {
            ct.record(
                t(2),
                AbortCause::AbortedByWriter { writer: Some(t(7)) },
                ConflictSite::UNKNOWN,
            );
        }
        for _ in 0..2 {
            ct.record(t(3), AbortCause::CommitLockBusy { owner: None }, site(0x200));
        }
        for _ in 0..3 {
            ct.record(t(3), AbortCause::Validation, site(0x300));
        }
        let s = ct.snapshot();
        let pair_sum: u64 = s.pairs.iter().map(|p| p.count).sum();
        assert_eq!(pair_sum, 5);
        assert_eq!(s.owner_unknown, 5, "unknown owners and ownerless causes both land here");
        assert_eq!(pair_sum + s.owner_unknown, s.total(), "matrix partitions the total");
        assert!(s
            .pairs
            .contains(&PairConflict { victim: 2, owner: 5, count: 3 }));
        assert!(s
            .pairs
            .contains(&PairConflict { victim: 2, owner: 7, count: 2 }));
    }

    #[test]
    fn concurrent_recording_conserves_every_count() {
        // Randomized schedules: each thread records a seeded mix of
        // attributed/unattributed aborts; the merged totals must equal
        // the per-thread sums exactly (single-writer cells, no lost
        // updates).
        let ct = std::sync::Arc::new(ContentionTracker::new());
        let threads = 8u16;
        let per = 2000u64;
        let recorded: Vec<(u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|id| {
                    let ct = std::sync::Arc::clone(&ct);
                    s.spawn(move || {
                        let mut rng = 0x9e37_79b9u64
                            .wrapping_mul(id as u64 + 1)
                            .wrapping_add(12345);
                        let (mut attr, mut unattr) = (0u64, 0u64);
                        for _ in 0..per {
                            rng ^= rng << 13;
                            rng ^= rng >> 7;
                            rng ^= rng << 17;
                            if rng % 4 == 0 {
                                ct.record(t(id), AbortCause::ReadVersion, ConflictSite::UNKNOWN);
                                unattr += 1;
                            } else {
                                let addr = 0x4000 + ((rng >> 8) % 200) as usize * 8;
                                ct.record(
                                    t(id),
                                    AbortCause::ReadLocked { owner: Some(t((id + 1) % threads)) },
                                    site(addr),
                                );
                                attr += 1;
                            }
                            if rng % 16 == 0 {
                                std::thread::yield_now();
                            }
                        }
                        (attr, unattr)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let s = ct.snapshot();
        let attr: u64 = recorded.iter().map(|r| r.0).sum();
        let unattr: u64 = recorded.iter().map(|r| r.1).sum();
        assert_eq!(s.attributed, attr, "attributed conservation");
        assert_eq!(s.unattributed, unattr, "unattributed conservation");
        let top_sum: u64 = s.top.iter().map(|h| h.count).sum();
        assert_eq!(top_sum + s.residual, attr, "sketch conservation");
        let pair_sum: u64 = s.pairs.iter().map(|p| p.count).sum();
        assert_eq!(pair_sum + s.owner_unknown, attr + unattr, "matrix conservation");
        assert_eq!(s.owner_unknown, unattr, "only the ownerless records fall outside the matrix");
    }

    #[test]
    fn snapshots_of_identical_streams_are_bit_identical() {
        let run = |seed: u64| {
            let ct = ContentionTracker::new();
            let mut rng = seed | 1;
            for _ in 0..5000 {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let thread = t((rng % 4) as u16);
                let addr = 0x7000 + ((rng >> 16) % 300) as usize * 8;
                ct.record(
                    thread,
                    AbortCause::CommitLockBusy { owner: Some(t(((rng >> 3) % 4) as u16)) },
                    site(addr),
                );
            }
            ct.snapshot()
        };
        assert_eq!(run(42), run(42), "same stream, same snapshot");
        // `| 1` in the runner means consecutive even/odd seeds collide; pick
        // seeds that stay distinct after the low bit is forced on.
        assert_ne!(run(42), run(1096), "different streams differ");
    }

    #[test]
    fn empty_tracker_snapshot_is_empty() {
        let s = ContentionTracker::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.top.len(), 0);
        assert_eq!(s.pairs.len(), 0);
        assert_eq!(s.saturation(), 0.0);
        assert_eq!(s.capacity, (CONTENTION_SHARDS * SKETCH_SLOTS) as u64);
    }
}
