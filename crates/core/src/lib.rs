//! # gstm-core — model-driven commit optimization for STM
//!
//! This crate implements the primary contribution of *"Quantifying and
//! Reducing Execution Variance in STM via Model Driven Commit Optimization"*
//! (Mururu, Gavrilovska, Pande — PPoPP 2018): a pipeline that
//!
//! 1. **profiles** an STM application into a *transaction sequence* of
//!    [`StateKey`] tuples (*Thread Transactional States*, TSS),
//! 2. builds a probabilistic **Thread State Automaton** ([`Tsa`]),
//! 3. **analyzes** the automaton's bias with the *guidance metric*
//!    ([`analyzer`]), and
//! 4. **guides** subsequent executions by holding back transactions that
//!    would lead to low-probability states ([`guidance::GuidedHook`]).
//!
//! The crate is STM-agnostic: an STM integrates by invoking a
//! [`guidance::GuidanceHook`] at transaction begin, abort, and commit.
//! Both `gstm-tl2` and `gstm-libtm` do exactly that.
//!
//! ## Quick tour
//!
//! ```
//! use gstm_core::prelude::*;
//! use std::sync::Arc;
//!
//! // A profiled run is a sequence of thread transactional states.
//! let run = vec![
//!     StateKey::solo(Pair::new(TxnId(0), ThreadId(1))),
//!     StateKey::new(
//!         vec![Pair::new(TxnId(0), ThreadId(2))],
//!         Pair::new(TxnId(0), ThreadId(1)),
//!     ),
//! ];
//! let tsa = Tsa::from_runs(&[run]);
//! assert_eq!(tsa.num_states(), 2);
//!
//! // Derive the guided model (destination sets thresholded by Tfactor).
//! let model = Arc::new(GuidedModel::build(tsa, &GuidanceConfig::default()));
//! let report = gstm_core::analyzer::analyze(&model);
//! assert!(report.guidance_metric_pct <= 100.0);
//! ```

pub mod adapt;
pub mod analyzer;
pub mod breaker;
pub mod config;
pub mod contention;
pub mod drift;
pub mod events;
pub mod fastset;
pub mod faultinject;
pub mod guidance;
pub mod ids;
pub mod mck;
pub mod metrics;
pub mod model_io;
pub mod ops;
pub mod placement;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod telemetry;
pub mod tsa;
pub mod tseq;
pub mod tss;

/// Convenient re-exports of the types used by nearly every integration.
pub mod prelude {
    pub use crate::adapt::{AdaptConfig, EpochRef, ModelEpoch, ModelManager};
    pub use crate::analyzer::{analyze, AnalyzerReport, ModelVerdict};
    pub use crate::breaker::{Breaker, BreakerCause, BreakerConfig, BreakerState};
    pub use crate::config::{ExecMode, GuidanceConfig};
    pub use crate::faultinject::{FaultPlan, FaultSite};
    pub use crate::drift::{DriftConfig, DriftTracker, DriftVerdict, ModelDrift};
    pub use crate::contention::{ContentionStats, ContentionTracker, HotAddr, PairConflict};
    pub use crate::events::{AbortCause, ConflictSite};
    pub use crate::fastset::AddrSet;
    pub use crate::guidance::{GateStats, GuidanceHook, GuidedHook, NoopHook, RecorderHook};
    pub use crate::ids::{Pair, ThreadId, TxnId};
    pub use crate::metrics::AbortHistogram;
    pub use crate::ops::{
        OpsPlane, OpsRoller, OpsServer, SloSpec, SloState, SloTransition, SloWatchdog,
        WindowDelta, WindowedTelemetry,
    };
    pub use crate::placement::{AffinityMatrix, AffinitySource, PinPolicy, PlacementPlan};
    pub use crate::stats::ThreadStats;
    pub use crate::telemetry::{
        ClockStats, PlacementStats, ShardClockStats, Telemetry, TelemetrySnapshot, TraceEvent,
        TraceKind,
    };
    pub use crate::tsa::{GuidedModel, StateId, Tsa};
    pub use crate::tseq::{parse_causal, EventLogHook};
    pub use crate::tss::StateKey;
}

pub use prelude::*;
