//! Compact on-disk model format.
//!
//! The paper stores the trained model "in an efficient bitwise structure"
//! (average 118 KB at 8 threads, 1.3 MB at 16 threads). This module
//! implements a compact LEB128-varint encoding of a [`Tsa`]: state tuples
//! as packed `<txn,thread>` pairs and transitions as delta-free
//! `(destination, frequency)` lists.

use crate::ids::Pair;
use crate::tsa::{StateId, Tsa};
use crate::tss::StateKey;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GSTM";
const FORMAT_VERSION: u8 = 1;

/// Append an unsigned LEB128 varint.
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint.
fn get_varint(bytes: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "truncated varint")
        })?;
        *pos += 1;
        if shift >= 64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serialize an automaton to bytes.
pub fn encode(tsa: &Tsa) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.push(FORMAT_VERSION);
    put_varint(&mut buf, tsa.num_states() as u64);
    for key in tsa.states() {
        put_varint(&mut buf, key.aborts().len() as u64);
        for p in key.aborts() {
            put_varint(&mut buf, p.packed() as u64);
        }
        put_varint(&mut buf, key.commit().packed() as u64);
    }
    for id in tsa.state_ids() {
        let edges = tsa.outbound(id);
        put_varint(&mut buf, edges.len() as u64);
        for &(dst, f) in edges {
            put_varint(&mut buf, dst.0 as u64);
            put_varint(&mut buf, f);
        }
    }
    buf
}

/// Deserialize an automaton from bytes produced by [`encode`].
pub fn decode(bytes: &[u8]) -> io::Result<Tsa> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(bad("bad magic"));
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(bad("unsupported format version"));
    }
    let mut pos = 5usize;
    let n_states = get_varint(bytes, &mut pos)? as usize;
    let mut states = Vec::with_capacity(n_states);
    for _ in 0..n_states {
        let n_aborts = get_varint(bytes, &mut pos)? as usize;
        let mut aborts = Vec::with_capacity(n_aborts);
        for _ in 0..n_aborts {
            let raw = get_varint(bytes, &mut pos)?;
            aborts.push(Pair::from_packed(u32::try_from(raw).map_err(|_| bad("pair overflow"))?));
        }
        let raw = get_varint(bytes, &mut pos)?;
        let commit = Pair::from_packed(u32::try_from(raw).map_err(|_| bad("pair overflow"))?);
        states.push(StateKey::new(aborts, commit));
    }
    let mut transitions = Vec::with_capacity(n_states);
    for _ in 0..n_states {
        let n_edges = get_varint(bytes, &mut pos)? as usize;
        let mut edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            let dst = get_varint(bytes, &mut pos)? as u32;
            if dst as usize >= n_states {
                return Err(bad("edge destination out of range"));
            }
            let f = get_varint(bytes, &mut pos)?;
            edges.push((StateId(dst), f));
        }
        transitions.push(edges);
    }
    if pos != bytes.len() {
        return Err(bad("trailing bytes"));
    }
    Tsa::from_parts(states, transitions).map_err(|e| bad(&e))
}

/// Write a model to a file.
pub fn save<P: AsRef<Path>>(tsa: &Tsa, path: P) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode(tsa))
}

/// Read a model from a file.
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Tsa> {
    let mut f = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxnId};

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    fn sample_tsa() -> Tsa {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::new(vec![p(0, 1), p(1, 2)], p(2, 3));
        let c = StateKey::solo(p(3, 300));
        let run = vec![a.clone(), b.clone(), a.clone(), c, a, b];
        Tsa::from_runs(&[run])
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let tsa = sample_tsa();
        let bytes = encode(&tsa);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.num_states(), tsa.num_states());
        assert_eq!(back.num_edges(), tsa.num_edges());
        for id in tsa.state_ids() {
            assert_eq!(back.state(id), tsa.state(id));
            assert_eq!(back.outbound(id), tsa.outbound(id));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"").is_err());
        assert!(decode(b"NOPE\x01\x00").is_err());
        assert!(decode(b"GSTM\x63\x00").is_err(), "bad version");
        // Valid header then truncation.
        let tsa = sample_tsa();
        let bytes = encode(&tsa);
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode(&extra).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn file_round_trip() {
        let tsa = sample_tsa();
        let dir = std::env::temp_dir().join("gstm_model_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state_data.gstm");
        save(&tsa, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.num_states(), tsa.num_states());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn encoding_is_compact() {
        // A solo state costs ~3 bytes; make sure we are in that ballpark
        // rather than e.g. pulling in struct padding.
        let tsa = sample_tsa();
        let bytes = encode(&tsa);
        assert!(bytes.len() < 80, "encoded {} bytes", bytes.len());
    }
}
