//! Compact on-disk model format.
//!
//! The paper stores the trained model "in an efficient bitwise structure"
//! (average 118 KB at 8 threads, 1.3 MB at 16 threads). This module
//! implements a compact LEB128-varint encoding of a [`Tsa`]: state tuples
//! as packed `<txn,thread>` pairs and transitions as delta-free
//! `(destination, frequency)` lists.
//!
//! ## Integrity header (v2)
//!
//! A corrupt model file must degrade the run to unguided execution, never
//! crash it, so v2 prepends a self-validating header:
//!
//! ```text
//! "GSTM" | version=2 | varint thread_count | varint payload_len
//!        | fnv1a64(payload) as 8 LE bytes | payload (v1 body)
//! ```
//!
//! The checksum covers the payload only, keeping the three corruption
//! classes distinguishable at load: a bit flip fails the checksum, a
//! truncation fails the declared-length check, and a tampered
//! thread-count header fails the consistency check against the decoded
//! states.

use crate::ids::Pair;
use crate::tsa::{StateId, Tsa};
use crate::tss::StateKey;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GSTM";
const FORMAT_VERSION: u8 = 2;

/// FNV-1a 64-bit hash of `bytes`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Highest thread id referenced by any pair in `states`, plus one.
fn thread_count_of(states: &[StateKey]) -> u64 {
    states
        .iter()
        .flat_map(|k| k.aborts().iter().copied().chain(std::iter::once(k.commit())))
        .map(|p| p.thread.0 as u64 + 1)
        .max()
        .unwrap_or(0)
}

/// Append an unsigned LEB128 varint.
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint.
fn get_varint(bytes: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "truncated varint")
        })?;
        *pos += 1;
        if shift >= 64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serialize an automaton to bytes.
pub fn encode(tsa: &Tsa) -> Vec<u8> {
    let mut payload = Vec::new();
    put_varint(&mut payload, tsa.num_states() as u64);
    for key in tsa.states() {
        put_varint(&mut payload, key.aborts().len() as u64);
        for p in key.aborts() {
            put_varint(&mut payload, p.packed() as u64);
        }
        put_varint(&mut payload, key.commit().packed() as u64);
    }
    for id in tsa.state_ids() {
        let edges = tsa.outbound(id);
        put_varint(&mut payload, edges.len() as u64);
        for &(dst, f) in edges {
            put_varint(&mut payload, dst.0 as u64);
            put_varint(&mut payload, f);
        }
    }
    let mut buf = Vec::with_capacity(payload.len() + 20);
    buf.extend_from_slice(MAGIC);
    buf.push(FORMAT_VERSION);
    put_varint(&mut buf, thread_count_of(tsa.states()));
    put_varint(&mut buf, payload.len() as u64);
    buf.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    buf
}

/// Deserialize an automaton from bytes produced by [`encode`].
///
/// Every corruption class is rejected with a typed [`io::Error`] — bit
/// flips by the payload checksum, truncation and trailing garbage by the
/// declared payload length, and header tampering by the thread-count
/// consistency check — so callers can always fall back to unguided
/// execution instead of panicking on malformed input.
pub fn decode(bytes: &[u8]) -> io::Result<Tsa> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(bad("bad magic"));
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(bad("unsupported format version"));
    }
    let mut pos = 5usize;
    let thread_count = get_varint(bytes, &mut pos)?;
    let payload_len = get_varint(bytes, &mut pos)? as usize;
    let sum_end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| bad("truncated checksum"))?;
    let declared_sum = u64::from_le_bytes(bytes[pos..sum_end].try_into().unwrap());
    let payload = &bytes[sum_end..];
    if payload.len() != payload_len {
        return Err(bad("payload length mismatch"));
    }
    if fnv1a64(payload) != declared_sum {
        return Err(bad("checksum mismatch"));
    }
    let mut pos = 0usize;
    let n_states = get_varint(payload, &mut pos)? as usize;
    let mut states = Vec::with_capacity(n_states);
    for _ in 0..n_states {
        let n_aborts = get_varint(payload, &mut pos)? as usize;
        let mut aborts = Vec::with_capacity(n_aborts);
        for _ in 0..n_aborts {
            let raw = get_varint(payload, &mut pos)?;
            aborts.push(Pair::from_packed(u32::try_from(raw).map_err(|_| bad("pair overflow"))?));
        }
        let raw = get_varint(payload, &mut pos)?;
        let commit = Pair::from_packed(u32::try_from(raw).map_err(|_| bad("pair overflow"))?);
        states.push(StateKey::new(aborts, commit));
    }
    let mut transitions = Vec::with_capacity(n_states);
    for _ in 0..n_states {
        let n_edges = get_varint(payload, &mut pos)? as usize;
        let mut edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            let dst = get_varint(payload, &mut pos)? as u32;
            if dst as usize >= n_states {
                return Err(bad("edge destination out of range"));
            }
            let f = get_varint(payload, &mut pos)?;
            edges.push((StateId(dst), f));
        }
        transitions.push(edges);
    }
    if pos != payload.len() {
        return Err(bad("trailing bytes"));
    }
    if thread_count_of(&states) != thread_count {
        return Err(bad("thread count mismatch"));
    }
    Tsa::from_parts(states, transitions).map_err(|e| bad(&e))
}

/// Write a model to a file.
pub fn save<P: AsRef<Path>>(tsa: &Tsa, path: P) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode(tsa))
}

/// Read a model from a file.
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Tsa> {
    let mut f = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxnId};

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    fn sample_tsa() -> Tsa {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::new(vec![p(0, 1), p(1, 2)], p(2, 3));
        let c = StateKey::solo(p(3, 300));
        let run = vec![a.clone(), b.clone(), a.clone(), c, a, b];
        Tsa::from_runs(&[run])
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let tsa = sample_tsa();
        let bytes = encode(&tsa);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.num_states(), tsa.num_states());
        assert_eq!(back.num_edges(), tsa.num_edges());
        for id in tsa.state_ids() {
            assert_eq!(back.state(id), tsa.state(id));
            assert_eq!(back.outbound(id), tsa.outbound(id));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"").is_err());
        assert!(decode(b"NOPE\x01\x00").is_err());
        assert!(decode(b"GSTM\x63\x00").is_err(), "bad version");
        // Valid header then truncation.
        let tsa = sample_tsa();
        let bytes = encode(&tsa);
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode(&extra).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn file_round_trip() {
        let tsa = sample_tsa();
        let dir = std::env::temp_dir().join("gstm_model_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state_data.gstm");
        save(&tsa, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.num_states(), tsa.num_states());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn encoding_is_compact() {
        // A solo state costs ~3 bytes; make sure we are in that ballpark
        // rather than e.g. pulling in struct padding.
        let tsa = sample_tsa();
        let bytes = encode(&tsa);
        assert!(bytes.len() < 80, "encoded {} bytes", bytes.len());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode(&sample_tsa());
        for off in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[off] ^= 1 << bit;
                assert!(
                    decode(&corrupt).is_err(),
                    "flip of bit {bit} at offset {off} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode(&sample_tsa());
        for keep in 0..bytes.len() {
            assert!(decode(&bytes[..keep]).is_err(), "truncation to {keep} decoded");
        }
    }

    #[test]
    fn thread_count_tamper_is_rejected() {
        let mut bytes = encode(&sample_tsa());
        // Offset 5 is the first thread-count varint byte — exactly what
        // FaultPlan::corrupt_model's "thread-count" mode tampers with.
        bytes[5] = bytes[5].wrapping_add(1);
        let err = decode(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("thread count")
                || err.to_string().contains("varint")
                || err.to_string().contains("mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = encode(&sample_tsa());
        bytes[4] = 1; // pretend this is a pre-checksum v1 file
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "unexpected error: {err}");
    }

    #[test]
    fn fault_plan_corruption_always_fails_cleanly() {
        use crate::faultinject::{FaultPlan, FaultSite};
        let tsa = sample_tsa();
        let clean = encode(&tsa);
        let mut modes_seen = std::collections::BTreeSet::new();
        for seed in 0..200u64 {
            let plan = FaultPlan::parse_spec(&format!("{seed}:corrupt-model")).unwrap();
            let mut bytes = clean.clone();
            let mode = plan.corrupt_model(&mut bytes).expect("corrupt-model runs at 1000‰");
            modes_seen.insert(mode);
            assert!(decode(&bytes).is_err(), "seed {seed} mode {mode} decoded successfully");
            assert_eq!(plan.injected(FaultSite::ModelCorrupt), 1);
        }
        // All three corruption classes exercised across the seed sweep.
        assert!(modes_seen.contains("bit-flip"), "modes: {modes_seen:?}");
        assert!(modes_seen.contains("truncate"), "modes: {modes_seen:?}");
        assert!(modes_seen.contains("thread-count"), "modes: {modes_seen:?}");
    }
}
