//! Per-thread execution statistics.

use crate::events::AbortCause;
use crate::metrics::AbortHistogram;

/// Counters a worker thread accumulates over a run.
///
/// `abort_hist` holds the distribution the paper's tail figures are drawn
/// from: for each committed transaction, how many times it rolled back
/// before committing.
#[derive(Clone, Default, Debug)]
pub struct ThreadStats {
    /// Committed transactions.
    pub commits: u64,
    /// Rolled-back attempts (all causes).
    pub aborts: u64,
    /// Distribution of aborts-before-commit per transaction.
    pub abort_hist: AbortHistogram,
    /// Aborts because a read found a held lock.
    pub read_locked: u64,
    /// Aborts because a read found a too-new version.
    pub read_version: u64,
    /// Aborts because commit-time lock acquisition timed out.
    pub commit_busy: u64,
    /// Aborts because commit-time read-set validation failed.
    pub validation: u64,
    /// Aborts inflicted by a committing writer (LibTM abort-readers).
    pub doomed: u64,
    /// Explicit retries requested by the transaction body.
    pub explicit: u64,
}

impl ThreadStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a committed transaction that aborted `retries` times first.
    pub fn record_commit(&mut self, retries: u32) {
        self.commits += 1;
        self.abort_hist.record(retries);
    }

    /// Record one rolled-back attempt.
    pub fn record_abort(&mut self, cause: AbortCause) {
        self.aborts += 1;
        match cause {
            AbortCause::ReadLocked { .. } => self.read_locked += 1,
            AbortCause::ReadVersion => self.read_version += 1,
            AbortCause::CommitLockBusy { .. } => self.commit_busy += 1,
            AbortCause::Validation => self.validation += 1,
            AbortCause::AbortedByWriter { .. } => self.doomed += 1,
            AbortCause::Explicit => self.explicit += 1,
        }
    }

    /// Merge another thread's statistics into this one.
    pub fn merge(&mut self, other: &ThreadStats) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.abort_hist.merge(&other.abort_hist);
        self.read_locked += other.read_locked;
        self.read_version += other.read_version;
        self.commit_busy += other.commit_busy;
        self.validation += other.validation;
        self.doomed += other.doomed;
        self.explicit += other.explicit;
    }

    /// Aborts per commit; 0 when nothing committed.
    pub fn abort_rate(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ThreadId;

    #[test]
    fn commit_recording_builds_histogram() {
        let mut s = ThreadStats::new();
        s.record_commit(0);
        s.record_commit(0);
        s.record_commit(3);
        assert_eq!(s.commits, 3);
        assert_eq!(s.abort_hist.total_commits(), 3);
        assert_eq!(s.abort_hist.max_aborts(), 3);
    }

    #[test]
    fn abort_causes_are_bucketed() {
        let mut s = ThreadStats::new();
        s.record_abort(AbortCause::ReadLocked {
            owner: Some(ThreadId(1)),
        });
        s.record_abort(AbortCause::Validation);
        s.record_abort(AbortCause::Validation);
        assert_eq!(s.aborts, 3);
        assert_eq!(s.read_locked, 1);
        assert_eq!(s.validation, 2);
        assert_eq!(s.commit_busy, 0);
    }

    #[test]
    fn merge_and_abort_rate() {
        let mut a = ThreadStats::new();
        a.record_commit(1);
        a.record_abort(AbortCause::ReadVersion);
        let mut b = ThreadStats::new();
        b.record_commit(0);
        b.record_abort(AbortCause::Explicit);
        a.merge(&b);
        assert_eq!(a.commits, 2);
        assert_eq!(a.aborts, 2);
        assert_eq!(a.abort_rate(), 1.0);
        assert_eq!(ThreadStats::new().abort_rate(), 0.0);
    }
}
